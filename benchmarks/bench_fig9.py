"""Fig. 9 — output flip probability vs challenge minimum distance."""

from repro.experiments import fig9


def test_fig9_flip_probability(once):
    table = once(
        fig9.run,
        n=40,
        l=8,
        distances=(1, 2, 4, 8, 16),
        instances=3,
        trials=30,
        seed=2016,
    )
    table.show()
    probabilities = dict(zip(table.column("distance"), table.column("flip_probability")))
    assert probabilities[1] < 0.25
    # Paper: approaches the ideal 0.5 by d = 16.
    assert probabilities[16] > 0.3
    assert probabilities[16] > probabilities[1]
