"""Extension — matching key exchange: correctness and modeled advantage."""

import numpy as np
import pytest

from repro.ppuf import Ppuf
from repro.ppuf.esg import ESGModel, PowerLawFit
from repro.protocols import KeyExchange, KeyExchangeParameters


@pytest.fixture(scope="module")
def exchange():
    device = Ppuf.create(16, 4, np.random.default_rng(2016))
    return KeyExchange(
        device, KeyExchangeParameters(num_challenges=24, chain_length=16), b"bench"
    )


def test_key_exchange_roundtrip(benchmark, exchange):
    rng = np.random.default_rng(7)

    def roundtrip():
        index, digest = exchange.initiator_pick(rng)
        recovered = exchange.holder_find(digest, rng)
        assert recovered == index
        return exchange.shared_secret(recovered)

    secret = benchmark(roundtrip)
    assert len(secret) == 32


def test_eavesdropper_advantage(once, exchange):
    model = ESGModel(
        simulation=PowerLawFit(coefficient=2.4e-8, exponent=3.1),
        execution=PowerLawFit(coefficient=6.7e-9, exponent=0.9),
    )
    costs = once(exchange.modeled_costs, model)
    print(
        f"initiator {costs.initiator_seconds:.3g}s (offline), "
        f"holder {costs.holder_seconds:.3g}s, "
        f"eavesdropper {costs.eavesdropper_seconds:.3g}s, "
        f"advantage {costs.advantage_ratio:,.0f}x"
    )
    assert costs.advantage_ratio > 100
