"""Fig. 3 — building-block I-V curves and bias calibration."""

from repro.experiments import fig3


def test_fig3_iv_curves(once):
    table_a, table_b = once(fig3.run, points=41)
    table_a.show()
    table_b.show()
    drifts = table_a.column("relative_drift")
    assert drifts[0] > drifts[1] > drifts[2]
