"""Ablation — execution-delay estimators (transient vs bound vs linearised)."""

from repro.experiments.delay_models import run


def test_delay_model_validation(once):
    table = once(run, sizes=(8, 12, 16, 24), seed=2016)
    table.show()
    transients = table.column("transient_s")
    bounds = table.column("lin_mead_bound_s")
    # Both physics measurements grow with n; the analytic bound stays an
    # upper bound on the current-settling transient at every size.
    assert all(b > a for a, b in zip(transients, transients[1:]))
    assert all(bound >= transient for bound, transient in zip(bounds, transients))
