"""Requirement 2 — variation amplitude vs SCE drift Monte Carlo."""

from repro.experiments import req2


def test_req2_monte_carlo(once):
    table, ablation = once(req2.run, samples=2000, seed=2016)
    table.show()
    ablation.show()
    values = dict(zip(table.column("quantity"), table.column("value")))
    # Paper reports ~130x; anything comfortably above 10x supports the
    # Requirement-2 sufficiency argument on this device model.
    assert values["ratio"] > 20
    drifts = dict(zip(ablation.column("design"), ablation.column("relative_drift")))
    assert drifts["bare"] > drifts["sd1"] > drifts["sd2"]
