"""Fleet-pack economics: one mmap'd file versus a directory of ``.npz``.

Standalone publisher (not a pytest benchmark): builds a 1000-device pack,
then records into ``benchmarks/BENCH_pack.json``

* **enrollment throughput** — devices/second streamed through
  :func:`repro.ppuf.pack.build_pack` (append-only, one fsync at close),
  against the same fleet written as per-device ``save_compiled`` files;
* **cold-claim latency** — p50/p99 of resolve-artifact + residual-graph
  ``verify_compact`` for a cold device, pack row slice versus ``.npz``
  load, at fleet sizes 10/100/1000;
* **open-FD count vs device count** — the pack must hold O(1)
  descriptors no matter how many devices it serves.

Every served response is asserted bit-exact against the live device
before a number is published.

Run with ``PYTHONPATH=src python benchmarks/bench_pack.py``.
"""

import json
import os
import tempfile
import time

import numpy as np

from repro.ppuf import Ppuf
from repro.ppuf.pack import ArtifactPack, build_pack
from repro.ppuf.io import load_compiled, save_compiled
from repro.ppuf.verification import PpufProver, PpufVerifier

NODES = 6
GRID = 2
FLEET = 1000
SIZES = (10, 100, 1000)
CLAIM_SAMPLES = 64  # cold claims timed per fleet size
SEED = 2026


def _fd_count():
    return len(os.listdir("/proc/self/fd"))


def _percentiles(seconds):
    arr = np.asarray(seconds, dtype=np.float64) * 1e3
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
    }


def _cold_claims(resolve, sample_ids, claims):
    """Time resolve(device_id) + verify_compact per cold device."""
    timings = []
    for device_id in sample_ids:
        start = time.perf_counter()
        served = resolve(device_id)
        accepted = PpufVerifier(served.network_a).verify_compact(claims[device_id])
        timings.append(time.perf_counter() - start)
        assert accepted, f"claim rejected for {device_id}"
    return _percentiles(timings)


def main(out_dir=None):
    out_dir = out_dir or os.path.dirname(os.path.abspath(__file__))
    with tempfile.TemporaryDirectory(prefix="bench_pack_") as work:
        report = _run(work)
    out_path = os.path.join(out_dir, "BENCH_pack.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    return report


def _run(work):
    rng = np.random.default_rng(SEED)
    print(f"fabricating {FLEET} devices (n={NODES}, grid={GRID}) ...")
    fleet = [Ppuf.create(NODES, GRID, rng) for _ in range(FLEET)]
    compiled = [device.compile(include_circuit=False) for device in fleet]
    by_id = {c.device_id: (d, c) for d, c in zip(fleet, compiled)}

    report = {
        "nodes": NODES,
        "grid": GRID,
        "fleet": FLEET,
        "claim_samples": CLAIM_SAMPLES,
        "sizes": {},
    }

    challenge_rng = np.random.default_rng(7)
    sample_rng = np.random.default_rng(11)

    for size in SIZES:
        subset = compiled[:size]
        pack_path = os.path.join(work, f"fleet_{size}.pack")
        npz_dir = os.path.join(work, f"npz_{size}")
        os.makedirs(npz_dir, exist_ok=True)

        start = time.perf_counter()
        build_pack(pack_path, subset)
        pack_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for artifact in subset:
            save_compiled(
                artifact, os.path.join(npz_dir, f"{artifact.device_id}.npz")
            )
        npz_seconds = time.perf_counter() - start

        sample_ids = [
            subset[i].device_id
            for i in sample_rng.choice(
                size, size=min(CLAIM_SAMPLES, size), replace=False
            )
        ]
        claims = {}
        for device_id in sample_ids:
            device, _ = by_id[device_id]
            challenge = device.challenge_space().random(challenge_rng)
            claims[device_id] = PpufProver(device.network_a).answer_compact(challenge)

        fd_before = _fd_count()
        pack = ArtifactPack(pack_path)
        pack_cold = _cold_claims(pack.device, sample_ids, claims)
        fd_after_pack = _fd_count()

        npz_cold = _cold_claims(
            lambda device_id: load_compiled(
                os.path.join(npz_dir, f"{device_id}.npz")
            ),
            sample_ids,
            claims,
        )

        # bit-exactness: pack row vs npz vs live device, on a fresh batch
        for device_id in sample_ids[:8]:
            device, _ = by_id[device_id]
            challenges = device.challenge_space().random_batch(16, challenge_rng)
            live = device.response_bits(challenges)
            assert np.array_equal(pack.device(device_id).response_bits(challenges), live)
            from_npz = load_compiled(os.path.join(npz_dir, f"{device_id}.npz"))
            assert np.array_equal(from_npz.response_bits(challenges), live)

        row = {
            "pack_enroll_devices_per_s": round(size / pack_seconds, 1),
            "npz_enroll_devices_per_s": round(size / npz_seconds, 1),
            "pack_bytes": os.path.getsize(pack_path),
            "npz_bytes": sum(
                os.path.getsize(os.path.join(npz_dir, name))
                for name in os.listdir(npz_dir)
            ),
            "pack_cold_claim": pack_cold,
            "npz_cold_claim": npz_cold,
            "pack_open_fds_delta": fd_after_pack - fd_before,
        }
        report["sizes"][str(size)] = row
        print(
            f"{size:>5} devices  enroll pack {row['pack_enroll_devices_per_s']:>8} dev/s"
            f"  npz {row['npz_enroll_devices_per_s']:>8} dev/s"
            f"  cold-claim p50 pack {pack_cold['p50_ms']} ms / npz {npz_cold['p50_ms']} ms"
            f"  fds +{row['pack_open_fds_delta']}"
        )
        assert row["pack_open_fds_delta"] <= 1, "pack leaked file descriptors"

    return report


if __name__ == "__main__":
    main()
