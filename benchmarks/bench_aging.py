"""Extension — aging reliability over operating lifetime."""

from repro.experiments.aging_reliability import run


def test_aging_reliability(once):
    table = once(run)
    table.show()
    drifts = table.column("mean_drift")
    assert drifts[0] == 0.0
    assert all(b >= a for a, b in zip(drifts, drifts[1:]))
    # Aged silicon must remain closer to itself than to a stranger (0.5).
    assert drifts[-1] < 0.4
