"""Extension — Section 2's solve-vs-verify asymmetry table."""

from repro.experiments.verification_asymmetry import run


def test_verification_asymmetry(once):
    table = once(run, sizes=(10, 20, 40, 60), repeats=3, seed=2016)
    table.show()
    ratios = table.column("measured_ratio")
    assert ratios[-1] > ratios[0] > 1.0
