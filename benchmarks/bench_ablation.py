"""Ablations — placement, comparator noise, solver consistency."""

from repro.experiments.ablation import (
    comparator_noise_ablation,
    placement_ablation,
    solver_consistency_ablation,
)


def test_placement_ablation(once):
    table = once(placement_ablation)
    table.show()
    rows = {row["layout"]: row for row in table.rows}
    assert rows["separate"]["uniformity_std"] > rows["side_by_side"]["uniformity_std"]


def test_comparator_noise_ablation(once):
    table = once(comparator_noise_ablation)
    table.show()
    rows = {
        (row["noise_sigma_A"], row["votes"]): row["error_rate"] for row in table.rows
    }
    assert rows[(0.0, 1)] == 0.0
    assert rows[(2e-8, 7)] <= rows[(2e-8, 1)]


def test_solver_consistency(once):
    table = once(solver_consistency_ablation)
    table.show()
    assert all(row["agreement_with_dinic"] for row in table.rows)
