"""Extension — hardware-cost inventory (Section 4.2's motivation)."""

from repro.experiments.hardware_cost import run


def test_hardware_cost(once):
    table = once(run)
    table.show()
    reductions = table.column("reduction")
    assert all(b > a for a, b in zip(reductions, reductions[1:]))
