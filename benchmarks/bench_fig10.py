"""Fig. 10 — model-building attack resilience vs the arbiter PUF."""

from repro.experiments import fig10


def test_fig10_attack_resilience(once):
    table = once(
        fig10.run,
        ppuf_sizes=((40, 8),),
        train_sizes=(100, 1000, 3000, 10000),
        test_count=600,
        seed=2016,
    )
    table.show()
    rows = {(row["target"], row["num_crps"]): row["best_error"] for row in table.rows}
    # At the paper's 10^4 observed CRPs the PPUF holds an order-of-magnitude
    # error margin over the learned-to-death arbiter.
    ppuf_error = rows[("ppuf_40n", 10000)]
    arbiter_error = rows[("arbiter", 10000)]
    assert ppuf_error > 0.15
    assert arbiter_error < 0.05
    assert ppuf_error / max(arbiter_error, 1e-3) > 5.0
