"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table/figure of the paper: it runs
the corresponding :mod:`repro.experiments` driver once inside
``benchmark.pedantic`` (the drivers are full experiments, not micro-kernels)
and prints the regenerated rows so ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction report.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
