"""Fleet scaling: sessions/sec and verify latency versus shard count.

Standalone publisher (not a pytest benchmark): builds a device pack, then
for each shard count spawns the real production topology — ``repro fleet
serve`` (supervisor + N ``repro serve`` shard subprocesses + router front
door) — drives it with the load-generation harness, and records into
``benchmarks/BENCH_service.json``

* **sessions/sec** — end-to-end authenticated sessions through the
  router (each session: fresh connection, HELLO → CHALLENGE → CLAIM →
  VERDICT per round);
* **p50/p99 session latency** — wall-clock per session as the prover
  sees it, solve time included.

Shard counts are 1 and 2, plus 4 where the host has ≥4 CPUs; the report
records ``cpus`` because parallel verify scaling cannot exceed the cores
physically present — on a 1-CPU host the shard sweep measures routing
overhead, not parallelism.  The prover's max-flow solve is the expensive
side of the paper's asymmetry, so the load generator fans out across
processes (where cores allow) to keep the fleet verify-bound instead of
loadgen-bound.

Run with ``PYTHONPATH=src python benchmarks/bench_fleet.py [--smoke]``.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.ppuf import Ppuf, build_pack
from repro.service.fleet import generate_load

NODES = 8
GRID = 2
DEVICES = 16
SEED = 2026

#: Wall-clock budget [s] for the fleet to report its listening event.
STARTUP_TIMEOUT = 120.0


def _shard_counts(cpus):
    counts = [1, 2]
    if cpus >= 4:
        counts.append(4)
    return counts


def _spawn_fleet(pack_path, shards):
    """Start ``repro fleet serve`` and return (process, router_port)."""
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "serve",
            "--shards",
            str(shards),
            "--pack",
            pack_path,
            "--port",
            "0",
            "--rounds",
            "1",
            "--seed",
            "5",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while True:
        if time.monotonic() > deadline:
            process.kill()
            process.wait()
            raise RuntimeError(f"fleet ({shards} shards) never reported a port")
        line = process.stdout.readline()
        if not line:
            process.wait()
            raise RuntimeError(
                f"fleet ({shards} shards) exited with {process.returncode} "
                "before listening"
            )
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict) and event.get("event") == "listening":
            return process, int(event["port"])


def _stop_fleet(process):
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()


def _drive(port, pack_path, *, clients, duration, processes):
    report = generate_load(
        "127.0.0.1",
        port,
        pack=pack_path,
        clients=clients,
        duration_seconds=duration,
        rounds=1,
        processes=processes,
        timeout=60.0,
    )
    assert report.sessions > 0, "load run completed no sessions"
    assert report.errors == 0, f"{report.errors} session errors under load"
    return report


def main(out_dir=None, *, smoke=False):
    out_dir = out_dir or os.path.dirname(os.path.abspath(__file__))
    cpus = os.cpu_count() or 1
    clients = 8 if smoke else 32
    duration = 2.0 if smoke else 6.0
    loadgen_processes = 1 if smoke else max(1, min(2, cpus - 1))

    report = {
        "nodes": NODES,
        "grid": GRID,
        "devices": DEVICES,
        "clients": clients,
        "duration_seconds": duration,
        "loadgen_processes": loadgen_processes,
        "cpus": cpus,
        "smoke": smoke,
        "shards": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_fleet_") as work:
        pack_path = os.path.join(work, "fleet.pack")
        rng = np.random.default_rng(SEED)
        print(f"fabricating {DEVICES} devices (n={NODES}, grid={GRID}) ...")
        build_pack(
            pack_path,
            [
                Ppuf.create(NODES, GRID, rng).compile(include_circuit=False)
                for _ in range(DEVICES)
            ],
        )

        for shards in _shard_counts(cpus):
            print(f"--- {shards} shard(s): starting fleet ...")
            process, port = _spawn_fleet(pack_path, shards)
            try:
                # One warmup beat so every shard has imported + mapped.
                _drive(
                    port,
                    pack_path,
                    clients=min(4, clients),
                    duration=0.5,
                    processes=1,
                )
                load = _drive(
                    port,
                    pack_path,
                    clients=clients,
                    duration=duration,
                    processes=loadgen_processes,
                )
            finally:
                _stop_fleet(process)
            row = load.to_dict()
            del row["hostile_sessions"], row["hostile_rejected"]
            report["shards"][str(shards)] = row
            print(
                f"    {shards} shard(s): {row['sessions_per_second']:>8} sessions/s"
                f"  p50 {row['latency_ms']['p50']} ms"
                f"  p99 {row['latency_ms']['p99']} ms"
                f"  ({row['sessions']} sessions, {row['errors']} errors)"
            )

    out_path = os.path.join(out_dir, "BENCH_service.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run: fewer clients, 2 s per shard count",
    )
    arguments = parser.parse_args()
    main(smoke=arguments.smoke)
