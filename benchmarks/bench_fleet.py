"""Fleet scaling: sessions/sec and verify latency versus shard count.

Standalone publisher (not a pytest benchmark): builds a device pack, then
for each shard count spawns the real production topology — ``repro fleet
serve`` (supervisor + N ``repro serve`` shard subprocesses + router front
door) — drives it with the load-generation harness, and records into
``benchmarks/BENCH_service.json``

* **sessions/sec** — end-to-end authenticated sessions through the
  router (each session: fresh connection, HELLO → CHALLENGE → CLAIM →
  VERDICT per round);
* **p50/p99 session latency** — wall-clock per session as the prover
  sees it, solve time included.

Shard counts are 1 and 2, plus 4 where the host has ≥4 CPUs; the report
records ``cpus`` because parallel verify scaling cannot exceed the cores
physically present — on a 1-CPU host the shard sweep measures routing
overhead, not parallelism.  The prover's max-flow solve is the expensive
side of the paper's asymmetry, so the load generator fans out across
processes (where cores allow) to keep the fleet verify-bound instead of
loadgen-bound.

A final **reconfiguration** phase measures the hot-scale path under live
load: with traffic flowing through the router, ``fleet scale`` grows the
fleet by one shard (command → new shard serving) and then shrinks it back
(command → drained shard settled and removed from the map).  Both
latencies land in the report; like the shard sweep they are bounded by
``cpus`` — on a saturated host the new shard's boot and the drain's
settle both queue behind verify work.

Run with ``PYTHONPATH=src python benchmarks/bench_fleet.py [--smoke]``.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from repro.ppuf import Ppuf, build_pack
from repro.service.fleet import generate_load

NODES = 8
GRID = 2
DEVICES = 16
SEED = 2026

#: Wall-clock budget [s] for the fleet to report its listening event.
STARTUP_TIMEOUT = 120.0


def _shard_counts(cpus):
    counts = [1, 2]
    if cpus >= 4:
        counts.append(4)
    return counts


def _cli_env():
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def _spawn_fleet(pack_path, shards, *, map_file=None, probe_interval=None):
    """Start ``repro fleet serve`` and return (process, router_port)."""
    command = [
        sys.executable,
        "-m",
        "repro",
        "fleet",
        "serve",
        "--shards",
        str(shards),
        "--pack",
        pack_path,
        "--port",
        "0",
        "--rounds",
        "1",
        "--seed",
        "5",
    ]
    if map_file is not None:
        command += ["--map-file", map_file]
    if probe_interval is not None:
        command += ["--probe-interval", str(probe_interval)]
    process = subprocess.Popen(
        command,
        env=_cli_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while True:
        if time.monotonic() > deadline:
            process.kill()
            process.wait()
            raise RuntimeError(f"fleet ({shards} shards) never reported a port")
        line = process.stdout.readline()
        if not line:
            process.wait()
            raise RuntimeError(
                f"fleet ({shards} shards) exited with {process.returncode} "
                "before listening"
            )
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict) and event.get("event") == "listening":
            return process, int(event["port"])


def _stop_fleet(process):
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()


def _drive(port, pack_path, *, clients, duration, processes):
    report = generate_load(
        "127.0.0.1",
        port,
        pack=pack_path,
        clients=clients,
        duration_seconds=duration,
        rounds=1,
        processes=processes,
        timeout=60.0,
    )
    assert report.sessions > 0, "load run completed no sessions"
    assert report.errors == 0, f"{report.errors} session errors under load"
    return report


def _scale_fleet(map_path, shards):
    """Run ``repro fleet scale`` against a live fleet's map file."""
    subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "scale",
            "--map-file",
            map_path,
            "--shards",
            str(shards),
        ],
        env=_cli_env(),
        check=True,
        stdout=subprocess.DEVNULL,
    )


def _await_map(map_path, predicate, *, timeout=90.0):
    """Poll the shard-map file until ``predicate(shard_map)`` holds."""
    from repro.service.fleet import ShardMapFile

    map_file = ShardMapFile(map_path)
    deadline = time.monotonic() + timeout
    while True:
        shard_map, _ = map_file.load()
        if predicate(shard_map):
            return
        if time.monotonic() > deadline:
            raise RuntimeError(
                "shard map never reached the expected state: "
                + ", ".join(
                    f"{s.name}@{s.port}:{s.state}" for s in shard_map.shards()
                )
            )
        time.sleep(0.05)


def _measure_reconfiguration(work, pack_path, *, smoke):
    """Scale-up and drain-to-settle latency with load flowing (satellite row).

    Starts a 2-shard fleet publishing its map file, keeps a background
    load run going through the router, then times two map mutations:
    ``scale 3`` (command → third shard serving) and ``scale 2`` (command →
    drained shard settled and gone from the map, sessions intact).
    """
    from repro.service.fleet import ACTIVE

    map_path = os.path.join(work, "shards.map")
    load_clients = 4 if smoke else 8
    load_duration = 8.0 if smoke else 15.0

    print("--- reconfiguration: starting 2-shard fleet under load ...")
    process, port = _spawn_fleet(
        pack_path, 2, map_file=map_path, probe_interval=0.2
    )
    outcome = {}

    def _background_load():
        outcome["load"] = generate_load(
            "127.0.0.1",
            port,
            pack=pack_path,
            clients=load_clients,
            duration_seconds=load_duration,
            rounds=1,
            processes=1,
            timeout=60.0,
        )

    loader = threading.Thread(target=_background_load)
    try:
        loader.start()
        time.sleep(0.5)  # let the load ramp before mutating the fleet

        def _serving(shard_map, count):
            shards = shard_map.shards()
            return len(shards) == count and all(
                s.state == ACTIVE and s.port != 0 for s in shards
            )

        started = time.perf_counter()
        _scale_fleet(map_path, 3)
        _await_map(map_path, lambda shard_map: _serving(shard_map, 3))
        scale_up_seconds = time.perf_counter() - started

        started = time.perf_counter()
        _scale_fleet(map_path, 2)
        _await_map(map_path, lambda shard_map: _serving(shard_map, 2))
        drain_seconds = time.perf_counter() - started
    finally:
        loader.join()
        _stop_fleet(process)

    load = outcome["load"]
    assert load.sessions > 0, "reconfiguration load completed no sessions"
    row = {
        "scale_up_seconds": round(scale_up_seconds, 3),
        "drain_to_settle_seconds": round(drain_seconds, 3),
        "shards": 2,
        "load_clients": load_clients,
        "sessions_during": load.sessions,
        "errors_during": load.errors,
    }
    print(
        f"    scale-up {row['scale_up_seconds']} s"
        f"  drain-to-settle {row['drain_to_settle_seconds']} s"
        f"  ({load.sessions} sessions, {load.errors} errors during)"
    )
    return row


def main(out_dir=None, *, smoke=False):
    out_dir = out_dir or os.path.dirname(os.path.abspath(__file__))
    cpus = os.cpu_count() or 1
    clients = 8 if smoke else 32
    duration = 2.0 if smoke else 6.0
    loadgen_processes = 1 if smoke else max(1, min(2, cpus - 1))

    report = {
        "nodes": NODES,
        "grid": GRID,
        "devices": DEVICES,
        "clients": clients,
        "duration_seconds": duration,
        "loadgen_processes": loadgen_processes,
        "cpus": cpus,
        "smoke": smoke,
        "shards": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_fleet_") as work:
        pack_path = os.path.join(work, "fleet.pack")
        rng = np.random.default_rng(SEED)
        print(f"fabricating {DEVICES} devices (n={NODES}, grid={GRID}) ...")
        build_pack(
            pack_path,
            [
                Ppuf.create(NODES, GRID, rng).compile(include_circuit=False)
                for _ in range(DEVICES)
            ],
        )

        for shards in _shard_counts(cpus):
            print(f"--- {shards} shard(s): starting fleet ...")
            process, port = _spawn_fleet(pack_path, shards)
            try:
                # One warmup beat so every shard has imported + mapped.
                _drive(
                    port,
                    pack_path,
                    clients=min(4, clients),
                    duration=0.5,
                    processes=1,
                )
                load = _drive(
                    port,
                    pack_path,
                    clients=clients,
                    duration=duration,
                    processes=loadgen_processes,
                )
            finally:
                _stop_fleet(process)
            row = load.to_dict()
            del row["hostile_sessions"], row["hostile_rejected"]
            report["shards"][str(shards)] = row
            print(
                f"    {shards} shard(s): {row['sessions_per_second']:>8} sessions/s"
                f"  p50 {row['latency_ms']['p50']} ms"
                f"  p99 {row['latency_ms']['p99']} ms"
                f"  ({row['sessions']} sessions, {row['errors']} errors)"
            )

        report["reconfiguration"] = _measure_reconfiguration(
            work, pack_path, smoke=smoke
        )

    out_path = os.path.join(out_dir, "BENCH_service.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run: fewer clients, 2 s per shard count",
    )
    arguments = parser.parse_args()
    main(smoke=arguments.smoke)
