"""Fig. 6 — simulation-model inaccuracy (circuit vs max-flow engines)."""

from repro.experiments import fig6


def test_fig6_simulation_accuracy(once):
    table = once(fig6.run, sizes=(10, 20, 40, 60), trials=6, seed=2016)
    table.show()
    for row in table.rows:
        assert row["mean_inaccuracy"] < 0.01
        assert row["current_rel_std"] > row["mean_inaccuracy"]


def test_fig6_paper_scale_100_nodes(once):
    """The paper's largest Fig. 6 size, spot-checked with fewer trials."""
    table = once(fig6.run, sizes=(100,), trials=2, seed=2016)
    table.show()
    assert table.rows[0]["mean_inaccuracy"] < 0.01
