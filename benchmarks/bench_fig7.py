"""Fig. 7 — execution/simulation scaling and the ESG crossovers."""

from repro.experiments import fig7


def test_fig7_esg_scaling(once):
    table_a, table_b = once(
        fig7.run, sizes=(10, 20, 30, 40, 60, 80), repeats=2, seed=2016
    )
    table_a.show()
    table_b.show()
    # Execution delay is monotone ~O(n); simulation is polynomially steeper.
    execution = table_a.column("execution_delay_s")
    assert all(b > a for a, b in zip(execution, execution[1:]))
    crossovers = dict(zip(table_b.column("variant"), table_b.column("crossover_nodes")))
    no_feedback = crossovers["calibrated to paper axis, no feedback"]
    feedback = crossovers["calibrated to paper axis, feedback k=n"]
    # Paper: 900 and 190 nodes; same order of magnitude expected here.
    assert 200 < no_feedback < 10_000
    assert 50 < feedback < 2_000
    assert feedback < no_feedback
