"""Fig. 8 — output measurability and the Section-5 power budget."""

from repro.experiments import fig8


def test_fig8_measurability(once):
    table, summary = once(
        fig8.run, sizes=(10, 20, 30, 40, 60), instances=4, challenges=4, seed=2016
    )
    table.show()
    summary.show()
    currents = table.column("avg_current_A")
    assert currents == sorted(currents)  # linear growth
    values = dict(zip(summary.column("quantity"), summary.column("value")))
    # Same order of magnitude as the paper's 900-node estimates.
    assert 3e-6 < values["avg current [A]"] < 3e-4
    assert 1e-8 < values["current difference [A]"] < 1e-5
    assert 1e-11 < values["energy per evaluation [J]"] < 1e-8
