"""Ablation — max-flow solver choice (same responses, different cost).

Not a paper figure: DESIGN.md calls this ablation out because the maxflow
engine lets the user pick the solver, and the pick must not change any
response bit.
"""

import numpy as np
import pytest

from repro.flow import random_complete_network, solve_max_flow

SIZE = 60


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(2016)
    return random_complete_network(SIZE, rng, relative_sigma=0.4)


@pytest.mark.parametrize(
    "algorithm",
    ["edmonds_karp", "dinic", "push_relabel", "highest_label", "capacity_scaling"],
)
def test_solver_cost(benchmark, instance, algorithm):
    result = benchmark(
        lambda: solve_max_flow(instance.copy(), 0, SIZE - 1, algorithm=algorithm)
    )
    reference = solve_max_flow(instance.copy(), 0, SIZE - 1, algorithm="dinic")
    assert result.value == pytest.approx(reference.value, rel=1e-9)
