"""Batched CRP throughput versus the looped single-challenge baseline.

The acceptance bar for the batched pipeline (repro.ppuf.batch): on the
paper-scale 16-node crossbar, evaluating 256 challenges through the
vectorised lockstep solver must be at least 5x faster than looping
``Ppuf.response`` — with identical response bits, or the speed is
meaningless.

Run with ``pytest benchmarks/bench_batch.py --benchmark-only -s``.
"""

import time

import numpy as np
import pytest

from repro.ppuf import BatchEvaluator, Ppuf

NODES = 16
GRID = 4
CHALLENGES = 256
REQUIRED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(NODES, GRID, np.random.default_rng(2016))


@pytest.fixture(scope="module")
def challenges(device):
    return device.challenge_space().random_batch(
        CHALLENGES, np.random.default_rng(7)
    )


def test_batched_throughput_at_least_5x(benchmark, device, challenges):
    # Warm the per-bit capacity caches so both paths start from the same
    # state and neither pays the one-off table build inside its timing.
    device.response(challenges[0])
    evaluator = BatchEvaluator(device)
    evaluator.evaluate(challenges[:2])

    start = time.perf_counter()
    looped = np.array(
        [device.response(c) for c in challenges], dtype=np.uint8
    )
    looped_seconds = time.perf_counter() - start

    batched, report = benchmark.pedantic(
        evaluator.evaluate, args=(challenges,), rounds=1, iterations=1
    )

    speedup = looped_seconds / report.total_seconds
    print(
        f"\nlooped: {looped_seconds:.3f} s  "
        f"batched: {report.total_seconds:.3f} s "
        f"(prepare {report.prepare_seconds:.3f} / solve "
        f"{report.solve_seconds:.3f} / compare {report.compare_seconds:.3f})  "
        f"speedup: {speedup:.1f}x  throughput: {report.throughput:.0f}/s"
    )
    stats = report.stats
    print(
        f"solve stats [{stats.algorithm}]: {stats.solves} solves, "
        f"{stats.operations} operations, phases "
        + ", ".join(
            f"{name}={seconds:.3f}s"
            for name, seconds in sorted(stats.phase_seconds.items())
        )
    )
    assert np.array_equal(batched, looped)
    assert speedup >= REQUIRED_SPEEDUP
