"""Table 1 — statistical PUF metrics for 40-node PPUFs."""

from repro.experiments import table1


def test_table1_statistics(once):
    table = once(table1.run, sizes=((40, 8),), instances=6, challenges=40, seed=2016)
    table.show()
    rows = {row["metric"]: row for row in table.rows}
    assert abs(rows["inter_class_hd"]["mean"] - 0.5) < 0.15
    assert rows["intra_class_hd"]["mean"] < 0.15
    assert abs(rows["uniformity"]["mean"] - 0.5) < 0.2
    assert abs(rows["randomness"]["mean"] - 0.5) < 0.2
