"""Ablation — prover/verifier asymmetry (Section 2's O(n^3) vs O(n^2)).

Benchmarks the two halves of the authentication protocol on the same
instance: producing a maximal flow (the attacker/simulation side) and
verifying one (the verifier side).  The measured gap is the software
incarnation of the verification asymmetry the PPUF protocol exploits.
"""

import numpy as np
import pytest

from repro.ppuf import Ppuf, PpufProver, PpufVerifier


@pytest.fixture(scope="module")
def protocol():
    rng = np.random.default_rng(2016)
    ppuf = Ppuf.create(40, 8, rng)
    challenge = ppuf.challenge_space().random(rng)
    prover = PpufProver(ppuf.network_a)
    verifier = PpufVerifier(ppuf.network_a)
    claim = prover.answer(challenge)  # warm capacity cache
    return prover, verifier, challenge, claim


def test_prover_solve_cost(benchmark, protocol):
    prover, _, challenge, _ = protocol
    claim = benchmark(lambda: prover.answer(challenge))
    assert claim.value > 0


def test_verifier_check_cost(benchmark, protocol):
    _, verifier, _, claim = protocol
    accepted = benchmark(lambda: verifier.verify(claim))
    assert accepted
