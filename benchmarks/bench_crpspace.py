"""Section 4.2 — CRP-space lower bound (N_CRP >= 6.53e35)."""

import pytest

from repro.experiments import crpspace


def test_crp_space_bounds(once):
    table = once(crpspace.run)
    table.show()
    row = table.rows[0]
    assert row["n_crp_bound"] == pytest.approx(6.53e35, rel=0.01)
