"""Tensorized verify hot path: edge-array rows/sec + claim micro-batch latency.

Standalone publisher (not a pytest benchmark) for ISSUE 8's acceptance
numbers, recorded into ``benchmarks/BENCH_flow.json``:

* **rows/sec** — challenge rows per second through :class:`BatchEvaluator`
  on the same device, once with the dense lockstep solver (``batched``,
  ``(B, n, n)`` stacks) and once with the edge-array batched Dinic
  (``batched_dinic``, one shared CSR + a ``(B, E)`` capacity table).  The
  two paths must agree bit for bit; the report records both rates and the
  edge/dense speedup.
* **claim p50/p99** — per-session wall-clock against a real loopback
  ``PpufAuthServer`` under concurrent sessions, with claim micro-batching
  on (``claim_batch_size=16``, 2 ms linger) and off
  (``claim_batch_size=1``), plus sessions/sec for each.  Micro-batching
  trades at most the linger on a lone claim for one pool round trip per
  coalesced batch under load.

Run with ``PYTHONPATH=src python benchmarks/bench_flow.py [--smoke]``.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.ppuf import BatchEvaluator, Ppuf, build_pack
from repro.service.client import fetch_stats
from repro.service.fleet import generate_load

NODES = 10
GRID = 3
SEED = 2026

#: Wall-clock budget [s] for the server subprocess to report its port.
STARTUP_TIMEOUT = 60.0


def bench_rows(ppuf, rng, *, rows, repeats):
    """Rows/sec through BatchEvaluator: dense lockstep vs edge-array."""
    challenges = ppuf.challenge_space().random_batch(rows, rng)
    results = {}
    bits_by_path = {}
    for label, algorithm in (("dense", "batched"), ("edge", "batched_dinic")):
        evaluator = BatchEvaluator(ppuf, algorithm=algorithm)
        bits, _ = evaluator.evaluate(challenges)  # warm buffers + caches
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            bits, report = evaluator.evaluate(challenges)
            best = min(best, time.perf_counter() - start)
        bits_by_path[label] = bits
        results[label] = {
            "algorithm": algorithm,
            "rows": rows,
            "best_seconds": best,
            "rows_per_sec": rows / best,
        }
    if not np.array_equal(bits_by_path["dense"], bits_by_path["edge"]):
        raise AssertionError("dense and edge paths disagree on response bits")
    results["speedup_edge_over_dense"] = (
        results["edge"]["rows_per_sec"] / results["dense"]["rows_per_sec"]
    )
    return results


def _spawn_server(pack_path, *, batch_size, linger):
    """Start ``repro serve`` in its own process; return (process, port).

    The server must not share a Python process (or GIL) with the provers:
    in-process clients block the event loop with their max-flow solves,
    which convoys claims behind prover compute and makes any batching
    measurement meaningless.
    """
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--pack",
            pack_path,
            "--port",
            "0",
            "--workers",
            "0",
            "--rounds",
            "1",
            "--seed",
            "5",
            "--claim-batch",
            str(batch_size),
            "--claim-linger",
            str(linger),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while True:
        if time.monotonic() > deadline:
            process.kill()
            process.wait()
            raise RuntimeError("server never reported a port")
        line = process.stdout.readline()
        if not line:
            process.wait()
            raise RuntimeError(f"server exited with {process.returncode}")
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict) and event.get("event") == "listening":
            return process, int(event["port"])


def bench_claims(pack_path, *, clients, duration, processes, batch_size):
    """Claim latency/throughput against a real server subprocess."""
    process, port = _spawn_server(
        pack_path, batch_size=batch_size, linger=0.002
    )
    try:
        report = generate_load(
            "127.0.0.1",
            port,
            pack=pack_path,
            clients=clients,
            duration_seconds=duration,
            rounds=1,
            processes=processes,
            timeout=60.0,
        )
        assert report.sessions > 0, "load run completed no sessions"
        assert report.errors == 0, f"{report.errors} session errors under load"
        snapshot = fetch_stats("127.0.0.1", port)
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    return {
        "clients": clients,
        "duration_seconds": duration,
        "claim_batch_size": batch_size,
        "sessions": report.sessions,
        "sessions_per_sec": report.sessions_per_second,
        "p50_ms": report.percentile_ms(50),
        "p99_ms": report.percentile_ms(99),
        "claims_verified": snapshot["claims_verified"],
        "claim_batches": snapshot["claim_batches"],
        "claims_batched": snapshot["claims_batched"],
        "mean_batch_occupancy": (
            snapshot["claims_batched"] / snapshot["claim_batches"]
            if snapshot["claim_batches"]
            else 0.0
        ),
    }


def main(out_dir=None, *, smoke=False):
    out_dir = out_dir or os.path.dirname(os.path.abspath(__file__))
    cpus = os.cpu_count() or 1
    rows = 64 if smoke else 512
    repeats = 2 if smoke else 5
    clients = 8 if smoke else 32
    duration = 2.0 if smoke else 6.0
    loadgen_processes = 1 if smoke else max(1, min(4, cpus - 1))
    rng = np.random.default_rng(SEED)
    ppuf = Ppuf.create(NODES, GRID, rng)

    print(f"rows/sec sweep: {rows} rows x {repeats} repeats (n={NODES}) ...")
    rows_report = bench_rows(ppuf, rng, rows=rows, repeats=repeats)
    print(
        f"  dense {rows_report['dense']['rows_per_sec']:.0f} rows/s, "
        f"edge {rows_report['edge']['rows_per_sec']:.0f} rows/s "
        f"({rows_report['speedup_edge_over_dense']:.2f}x)"
    )

    print(f"claim sweep: {clients} concurrent clients x {duration:.0f} s ...")
    with tempfile.TemporaryDirectory(prefix="bench_flow_") as work:
        pack_path = os.path.join(work, "device.pack")
        build_pack(pack_path, [ppuf.compile(include_circuit=False)])
        claims_report = {
            "microbatched": bench_claims(
                pack_path,
                clients=clients,
                duration=duration,
                processes=loadgen_processes,
                batch_size=16,
            ),
            "solo": bench_claims(
                pack_path,
                clients=clients,
                duration=duration,
                processes=loadgen_processes,
                batch_size=1,
            ),
        }
    for label, entry in claims_report.items():
        print(
            f"  {label}: {entry['sessions_per_sec']:.0f} sessions/s, "
            f"p50 {entry['p50_ms']:.1f} ms, p99 {entry['p99_ms']:.1f} ms, "
            f"occupancy {entry['mean_batch_occupancy']:.1f}"
        )

    report = {
        "nodes": NODES,
        "grid": GRID,
        "smoke": smoke,
        "cpus": cpus,
        "loadgen_processes": loadgen_processes,
        "batch_rows": rows_report,
        "claims": claims_report,
    }
    out_path = os.path.join(out_dir, "BENCH_flow.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fast run for CI smoke (numbers not representative)",
    )
    main(smoke=parser.parse_args().smoke)
