"""Ablation — response-engine cost: circuit (execution) vs maxflow
(simulation) on the same PPUF instance.

The wall-clock ratio here is the software analogue of the ESG: the
nonlinear circuit solve stands in for the device physics and is the slow
path *in software*, while on silicon it is the fast path.
"""

import numpy as np
import pytest

from repro.ppuf import Ppuf


@pytest.fixture(scope="module")
def prepared():
    rng = np.random.default_rng(2016)
    ppuf = Ppuf.create(20, 4, rng)
    challenge = ppuf.challenge_space().random(rng)
    # Warm both caches so the benchmark measures per-challenge evaluation.
    ppuf.response(challenge, engine="maxflow")
    ppuf.response(challenge, engine="circuit")
    return ppuf, challenge


def test_maxflow_engine(benchmark, prepared):
    ppuf, challenge = prepared
    bit = benchmark(lambda: ppuf.response(challenge, engine="maxflow"))
    assert bit in (0, 1)


def test_circuit_engine(benchmark, prepared):
    ppuf, challenge = prepared
    bit = benchmark.pedantic(
        lambda: ppuf.response(challenge, engine="circuit"), rounds=3, iterations=1
    )
    assert bit == ppuf.response(challenge, engine="maxflow")
