"""Compiled artifacts versus the rebuild-everything legacy paths.

Two wins the compiled pipeline (repro.ppuf.compiled) must deliver, both
measured here on the paper-scale 16-node crossbar:

* **Cold-claim verification** — a verifier starting from the enrolled
  description pays ``ppuf_from_dict`` plus the lazy per-edge capacity
  derivation before its first residual check; one starting from a
  persisted artifact (``<device_id>.npz``) just maps flat arrays.
* **Multi-process fan-out** — pool workers receiving the device as a
  shared-memory artifact map the tables (zero copies, kilobyte manifest
  pickle) instead of unpickling a device and re-deriving caches per
  worker.

Identical bits are asserted in both comparisons; the conformance suite
(tests/ppuf/test_compiled_conformance.py) pins the equivalence at scale.

Run with ``pytest benchmarks/bench_compiled.py --benchmark-only -s``.
"""

import pickle
import time

import numpy as np
import pytest

from repro.ppuf import BatchEvaluator, Ppuf
from repro.ppuf.compiled import attach_compiled, share_compiled
from repro.ppuf.io import load_compiled, ppuf_from_dict, ppuf_to_dict, save_compiled
from repro.ppuf.verification import PpufProver, PpufVerifier

NODES = 16
GRID = 4
CHALLENGES = 256
WORKERS = 2


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(NODES, GRID, np.random.default_rng(2016))


@pytest.fixture(scope="module")
def challenges(device):
    return device.challenge_space().random_batch(
        CHALLENGES, np.random.default_rng(7)
    )


def test_cold_claim_verify_faster_from_artifact(benchmark, device, challenges, tmp_path):
    public = ppuf_to_dict(device)
    artifact_path = str(tmp_path / "device.npz")
    save_compiled(device.compile(include_circuit=False), artifact_path)
    claim = PpufProver(device.network_a).answer_compact(challenges[0])

    def cold_verify_legacy():
        # What a verification worker pays on a cache miss today: rebuild
        # from the public dict, then derive both per-bit capacity caches
        # on the way to the residual check.
        rebuilt = ppuf_from_dict(public)
        return PpufVerifier(rebuilt.network_a).verify_compact(claim)

    def cold_verify_compiled():
        loaded = load_compiled(artifact_path)
        return PpufVerifier(loaded.network_a).verify_compact(claim)

    start = time.perf_counter()
    assert cold_verify_legacy()
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    assert cold_verify_compiled()
    compiled_seconds = time.perf_counter() - start

    benchmark.pedantic(cold_verify_compiled, rounds=3, iterations=1)
    print(
        f"\ncold-claim verify  legacy (dict + cache derivation): "
        f"{legacy_seconds * 1e3:.1f} ms   compiled (npz map): "
        f"{compiled_seconds * 1e3:.1f} ms   "
        f"speedup: {legacy_seconds / compiled_seconds:.1f}x"
    )
    assert compiled_seconds < legacy_seconds


def test_worker_fanout_faster_over_shared_memory(device, challenges):
    # Cold start on a larger crossbar, where the per-edge cache derivation
    # each legacy worker repeats is substantive.  The legacy device is
    # rebuilt from its public dict per repetition: under the fork start
    # method a warmed parent would smuggle its caches into the children
    # for free, hiding exactly the cost the artifact removes — a fresh
    # CLI or service invocation has no such warm parent.
    big = Ppuf.create(32, 4, np.random.default_rng(2032))
    public = ppuf_to_dict(big)
    fanout_challenges = big.challenge_space().random_batch(
        128, np.random.default_rng(8)
    )
    compiled = big.compile(include_circuit=False)
    inline_bits, _ = BatchEvaluator(big).evaluate(fanout_challenges)

    def best_of(make, reps=3):
        best, bits = float("inf"), None
        for _ in range(reps):
            start = time.perf_counter()
            bits, _ = make().evaluate(fanout_challenges)
            best = min(best, time.perf_counter() - start)
        return best, bits

    pickle_seconds, pickle_bits = best_of(
        lambda: BatchEvaluator(
            ppuf_from_dict(public),
            workers=WORKERS,
            chunk_size=32,
            share_memory=False,
        )
    )
    shm_seconds, shm_bits = best_of(
        lambda: BatchEvaluator(compiled, workers=WORKERS, chunk_size=32)
    )

    device_pickle = len(pickle.dumps(big))
    artifact_pickle = len(pickle.dumps(compiled))
    print(
        f"\n{WORKERS}-worker cold fan-out (n=32, 128 challenges, min of 3)  "
        f"legacy pickle transport: {pickle_seconds:.3f} s   "
        f"shared-memory transport: {shm_seconds:.3f} s   "
        f"speedup: {pickle_seconds / shm_seconds:.2f}x"
    )
    print(
        f"wire weight  device pickle: {device_pickle} B   "
        f"compiled artifact pickle: {artifact_pickle} B   "
        f"shm manifest: header + offsets only"
    )
    assert np.array_equal(pickle_bits, inline_bits)
    assert np.array_equal(shm_bits, inline_bits)
    assert shm_seconds < pickle_seconds


def test_shared_tables_are_mapped_not_copied(device):
    compiled = device.compile(include_circuit=False)
    shm, manifest = share_compiled(compiled)
    try:
        attached, worker_shm = attach_compiled(shm.name, manifest)
        try:
            block = np.frombuffer(worker_shm.buf, dtype=np.uint8)
            assert np.shares_memory(attached.cap0, block)
            assert np.shares_memory(attached.cap1, block)
            print(
                f"\nshared block: {shm.size} B for "
                f"{compiled.num_edges} edges x 2 networks x 2 bit tables "
                f"(+ index arrays); worker views alias it, no copies"
            )
        finally:
            del attached, block
            worker_shm.close()
    finally:
        shm.close()
        shm.unlink()
