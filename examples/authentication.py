"""Time-bounded authentication with the PPUF (the paper's target protocol).

The verifier holds only the *public* simulation model.  The prover claims to
hold the physical device.  Authentication works because of two asymmetries:

1. execution vs simulation — the device settles in O(n) time while any
   simulator needs Ω(n²) (the ESG), so only the device holder can answer
   within the time bound;
2. solving vs verifying — the verifier checks a claimed flow with one
   residual-graph BFS (O(n²/p)) instead of solving max-flow.

This example runs the honest protocol, a cheating prover, and the
feedback-loop amplification of Section 3.3.

Run:  python examples/authentication.py
"""

import time

import numpy as np

from repro import Ppuf, PpufProver, PpufVerifier
from repro.ppuf.delay import lin_mead_delay_bound
from repro.ppuf.feedback import run_feedback_chain
from repro.ppuf.verification import FlowClaim


def main():
    rng = np.random.default_rng(7)
    ppuf = Ppuf.create(n=30, l=6, rng=rng)
    challenge = ppuf.challenge_space().random(rng)

    prover = PpufProver(ppuf.network_a)
    verifier = PpufVerifier(ppuf.network_a)

    # --- honest round ---------------------------------------------------
    claim = prover.answer(challenge)
    accepted, verify_seconds = verifier.timed_verify(claim)
    device_delay = lin_mead_delay_bound(ppuf.n)
    print("honest prover:")
    print(f"  claimed max-flow value: {claim.value:.6g} A")
    print(f"  physical device would settle in ~{device_delay*1e6:.2f} us")
    print(f"  software solve took {claim.elapsed_seconds*1e3:.2f} ms "
          "(the attacker's cost, growing ~n^3)")
    print(f"  verifier checked in {verify_seconds*1e3:.2f} ms -> "
          f"{'ACCEPT' if accepted else 'REJECT'}")

    # --- cheating prover ------------------------------------------------
    print("cheating prover (claims a padded value with a lazy flow):")
    cheat = FlowClaim(
        challenge=challenge,
        flow=claim.flow * 0.5,
        value=claim.value,
        elapsed_seconds=0.0,
    )
    try:
        verdict = verifier.verify(cheat)
    except Exception as error:  # infeasible flows raise VerificationError
        verdict = f"rejected ({type(error).__name__})"
    print(f"  verifier verdict: {verdict}")

    # --- feedback-loop amplification -------------------------------------
    k = ppuf.n  # the paper sets the loop count equal to the node count
    start = time.perf_counter()
    chain = run_feedback_chain(ppuf, challenge, k=k)
    elapsed = time.perf_counter() - start
    print(f"feedback chain of k={k} rounds:")
    print(f"  final response: {chain.final_response}")
    print(f"  derivations check out: {chain.verify_derivations(ppuf.n)}")
    print(f"  simulation cost grew ~{k}x (measured {elapsed*1e3:.1f} ms for "
          f"{k} sequential rounds); device cost grows only k*O(n) -> "
          f"ESG amplified {k}x")


if __name__ == "__main__":
    main()
