"""Device-bound key derivation: stable bits from noisy analog silicon.

Derives a 256-bit digest from seed-derived challenges, then shows the two
reliability mechanisms working together under comparator noise:

* *dark-bit masking* — bits whose current margin is below the comparator
  resolution are dropped before hashing (the mask is public);
* *majority voting* — each kept bit is decided by repeated noisy samples.

Because the PPUF's model is public, the derived value is a device-bound
identity (anyone can recompute it from the model) — what binds it to the
physical device in a protocol is the time-bounded evaluation, not secrecy.

Run:  python examples/key_derivation.py
"""

import numpy as np

from repro.ppuf import CurrentComparator, Ppuf, derive_key, key_agreement_rate


def main():
    rng = np.random.default_rng(9)
    ppuf = Ppuf.create(n=16, l=4, rng=rng)

    material = derive_key(ppuf, b"door-controller-7", num_bits=96)
    print(f"noise-free derivation: key = {material.key.hex()}")
    print(f"  retained {material.retained}/96 bits "
          "(margins below the comparator resolution are masked)")

    again = derive_key(ppuf, b"door-controller-7", num_bits=96)
    print(f"  reproducible: {material.key == again.key}")
    other = derive_key(ppuf, b"door-controller-8", num_bits=96)
    print(f"  seed-sensitive: {material.key != other.key}")

    print("reliability under comparator noise (sigma = 10 nA):")
    for resolution, votes in ((0.0, 1), (0.0, 9), (4e-8, 9)):
        noisy = Ppuf(
            crossbar=ppuf.crossbar,
            network_a=ppuf.network_a,
            network_b=ppuf.network_b,
            comparator=CurrentComparator(noise_sigma=1e-8, resolution=resolution),
        )
        rate, reference = key_agreement_rate(
            noisy, b"door-controller-7", 12, rng, num_bits=96, votes=votes
        )
        print(f"  masking={'on ' if resolution else 'off'} votes={votes}: "
              f"key agreement {rate:.2f} "
              f"({reference.retained}/96 bits retained)")
    print("-> masking + voting turns a flaky analog readout into a stable key")


if __name__ == "__main__":
    main()
