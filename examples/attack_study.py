"""Model-building attack study (the Fig. 10 scenario, interactively sized).

An attacker observes CRPs of a deployed PPUF and trains LS-SVM (RBF and
linear kernels) plus KNN models to predict unseen responses.  The same
attack suite demolishes an arbiter PUF of equal input length — the contrast
that motivates Requirement 3's nonlinear response boundary.

Run:  python examples/attack_study.py
"""

import numpy as np

from repro.attacks import (
    attack_curve,
    build_attack_dataset,
    build_ppuf_attack_dataset,
)
from repro.baselines import ArbiterPuf
from repro.ppuf import Ppuf


def main():
    rng = np.random.default_rng(2016)
    train_sizes = (100, 300, 1000)
    test_count = 400

    print("building a 24-node PPUF and observing CRPs...")
    ppuf = Ppuf.create(n=24, l=6, rng=rng)
    ppuf_data = build_ppuf_attack_dataset(ppuf, max(train_sizes), test_count, rng)

    print("attacking the PPUF (SVM best-kernel + KNN sweep K=1..21):")
    for point in attack_curve(ppuf_data, train_sizes):
        print(f"  {point.num_crps:>5} CRPs: svm={point.svm_error:.3f} "
              f"knn={point.knn_error:.3f} best={point.best_error:.3f}")

    stages = ppuf.crossbar.num_control_bits
    print(f"attacking an arbiter PUF with the same input length ({stages} bits):")
    arbiter = ArbiterPuf(stages, rng)
    arbiter_data = build_attack_dataset(
        arbiter.respond,
        stages,
        max(train_sizes),
        test_count,
        rng,
        feature_map=ArbiterPuf.parity_features,
    )
    arbiter_points = attack_curve(arbiter_data, train_sizes)
    for point in arbiter_points:
        print(f"  {point.num_crps:>5} CRPs: svm={point.svm_error:.3f} "
              f"knn={point.knn_error:.3f} best={point.best_error:.3f}")

    # The ablation DESIGN.md calls out: pinning the type-A terminals makes
    # the PPUF much easier to learn, because the response then depends on a
    # fixed cut of the graph.
    print("ablation: PPUF attacked with *fixed* terminals (easier target):")
    fixed_data = build_ppuf_attack_dataset(
        ppuf, max(train_sizes), test_count, rng, fixed_terminals=True
    )
    for point in attack_curve(fixed_data, train_sizes):
        print(f"  {point.num_crps:>5} CRPs: best={point.best_error:.3f}")


if __name__ == "__main__":
    main()
