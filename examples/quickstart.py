"""Quickstart: fabricate a PPUF, evaluate a challenge, check the public model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Ppuf

def main():
    rng = np.random.default_rng(42)

    # "Fabricate" a 20-node PPUF with a 4x4 control grid: two nominally
    # identical crossbar networks that differ only through process variation.
    ppuf = Ppuf.create(n=20, l=4, rng=rng)
    print(f"PPUF with {ppuf.n} nodes, {ppuf.crossbar.num_edges} edge blocks, "
          f"{ppuf.crossbar.num_control_bits} control bits")

    # A challenge = type-A terminal selection + type-B control word.
    challenge = ppuf.challenge_space().random(rng)
    print(f"challenge: source={challenge.source} sink={challenge.sink} "
          f"bits={challenge.bits.tolist()}")

    # The *public simulation model*: max-flow on the complete graph with
    # capacities equal to the edge saturation currents.
    current_a, current_b = ppuf.currents(challenge, engine="maxflow")
    print(f"simulated currents: A={current_a:.4g} A, B={current_b:.4g} A")

    # The *execution*: a nonlinear DC solve of the analog crossbars (the
    # software stand-in for applying V(s)=2V and reading the source current).
    exec_a, exec_b = ppuf.currents(challenge, engine="circuit")
    print(f"executed currents:  A={exec_a:.4g} A, B={exec_b:.4g} A")
    print(f"model inaccuracy:   A={abs(current_a-exec_a)/exec_a:.3%}, "
          f"B={abs(current_b-exec_b)/exec_b:.3%}  (paper: < 1%)")

    # The response bit is the comparator's verdict on the two currents.
    print(f"response bit: {ppuf.response(challenge)}")

    # Any solver from the registry computes the same bit; a SolveStats
    # records what the solve cost (per-phase seconds, operation counts).
    from repro.flow import SolveStats, solver_names

    print(f"registered solvers: {', '.join(solver_names())}")
    for algorithm in ("dinic", "push_relabel"):
        stats = SolveStats()
        bit = ppuf.response(challenge, algorithm=algorithm, stats=stats)
        print(f"  {algorithm}: bit={bit} solves={stats.solves} "
              f"operations={stats.operations} "
              f"({stats.total_seconds*1e3:.2f} ms)")

    # Responses are reproducible on the same silicon...
    assert ppuf.response(challenge) == ppuf.response(challenge)
    # ...but another die answers differently (with high probability over
    # many challenges).
    other = Ppuf.create(n=20, l=4, rng=rng)
    challenges = ppuf.challenge_space().random_batch(20, rng)
    ours = ppuf.response_bits(challenges)
    theirs = other.response_bits(challenges)
    print(f"inter-device response distance over 20 challenges: "
          f"{np.mean(ours != theirs):.2f} (ideal 0.5)")


if __name__ == "__main__":
    main()
