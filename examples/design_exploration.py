"""Design-space exploration: sizing a PPUF for a target security level.

Walks the design decisions of Sections 3-5 end to end:

1. calibrate the bit-0/bit-1 gate biases for equal nominal currents;
2. verify Requirement 2 (variation must dominate SCE drift) and the
   SD-level ablation behind it;
3. measure solver scaling, fit the ESG model, and size the node count for
   a 1-second gap (with and without feedback loops);
4. size the control grid for a target CRP-space and check comparator
   requirements and the energy budget at the chosen design point.

Run:  python examples/design_exploration.py
"""

import numpy as np

from repro import NOMINAL_CONDITIONS, PTM32
from repro.analysis.codes import crp_space_lower_bound
from repro.analysis.montecarlo import requirement2_ratio, sd_level_drift
from repro.analysis.power import estimate_power
from repro.blocks.calibration import balance_bias, block_saturation_current
from repro.flow import random_complete_network, time_solver
from repro.ppuf.delay import lin_mead_delay_bound
from repro.ppuf.esg import ESGModel, PowerLawFit, fit_power_law


def main():
    rng = np.random.default_rng(1)

    # 1. bias calibration -------------------------------------------------
    balanced = balance_bias(PTM32, NOMINAL_CONDITIONS)
    nominal = block_saturation_current(NOMINAL_CONDITIONS.vgs_bit1, PTM32, NOMINAL_CONDITIONS)
    print(f"1. bias calibration: bit-1 @ {NOMINAL_CONDITIONS.vgs_bit1} V pairs "
          f"with bit-0 @ {balanced:.3f} V (equal Isat = {nominal:.3g} A)")

    # 2. requirement 2 ----------------------------------------------------
    result = requirement2_ratio(rng, samples=1500)
    print(f"2. requirement 2: variation {result.variation_amplitude:.3g} A vs "
          f"SCE drift {result.sce_change:.3g} A -> ratio {result.ratio:.0f}x "
          "(paper: ~130x)")
    for name, drift in sd_level_drift().items():
        print(f"   {name}: relative saturation drift {drift:.2%}")

    # 3. ESG sizing --------------------------------------------------------
    sizes = (10, 20, 30, 40, 60)
    samples = time_solver(
        "edmonds_karp",  # any name from the solver registry works here
        lambda n: random_complete_network(n, rng, relative_sigma=0.3),
        sizes,
        repeats=2,
    )
    ops_fit = fit_power_law(sizes, [s.mean_operations for s in samples])
    sim_fit = PowerLawFit(
        coefficient=samples[-1].mean_seconds / sizes[-1] ** ops_fit.exponent,
        exponent=ops_fit.exponent,
    )
    exe_fit = fit_power_law(sizes, [lin_mead_delay_bound(n) for n in sizes])
    model = ESGModel(simulation=sim_fit, execution=exe_fit)
    plain = model.crossover_nodes(1.0)
    feedback = model.with_feedback(lambda n: n).crossover_nodes(1.0)
    print(f"3. ESG sizing: T_sim ~ n^{sim_fit.exponent:.2f}, "
          f"T_exe ~ n^{exe_fit.exponent:.2f}")
    print(f"   1-second ESG at ~{plain:.0f} nodes "
          f"(paper: 900), or ~{feedback:.0f} with feedback k=n (paper: 190)")

    # 4. CRP space, comparator and energy at the design point --------------
    n = int(round(feedback / 10) * 10)
    l, d = 15, 30
    bound = crp_space_lower_bound(n, l, d)
    print(f"4. design point n={n}, l={l}, d={d}: "
          f"N_CRP >= {float(bound):.3g}")
    delay = lin_mead_delay_bound(n)
    # Average current grows ~ (n-1) x the per-edge nominal current.
    average_current = (n - 1) * nominal
    budget = estimate_power(average_current, NOMINAL_CONDITIONS.v_supply, delay)
    print(f"   execution delay {delay*1e6:.2f} us, "
          f"avg current {average_current*1e6:.2f} uA, "
          f"energy/evaluation {budget.energy_per_evaluation*1e12:.1f} pJ")


if __name__ == "__main__":
    main()
