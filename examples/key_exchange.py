"""PPUF key exchange: agreeing on a secret with no pre-shared key.

The Beckmann–Potkonjak matching protocol on top of the PPUF:

* Alice (initiator) has only the *public model*.  Offline, she simulates
  the feedback chain for one secretly chosen challenge and sends its hash.
* Bob (holder) has the physical device.  Online, he executes chains at
  device speed until one matches, recovering Alice's choice.
* Eve sees the hash and the public model — to find the match she must
  simulate chains too, paying the full ESG per try.

Run:  python examples/key_exchange.py
"""

import numpy as np

from repro.ppuf import Ppuf
from repro.ppuf.esg import ESGModel, PowerLawFit
from repro.protocols import KeyExchange, KeyExchangeParameters


def main():
    rng = np.random.default_rng(13)
    device = Ppuf.create(n=16, l=4, rng=rng)
    parameters = KeyExchangeParameters(num_challenges=24, chain_length=16)
    exchange = KeyExchange(device, parameters, seed=b"session-2026-07-04")
    print(f"public setup: {parameters.num_challenges} challenges, "
          f"{parameters.chain_length}-round feedback chains")

    # --- Alice (offline simulation, online: one short message) ----------
    secret_index, digest = exchange.initiator_pick(rng)
    print(f"Alice picks secret challenge #{secret_index}, "
          f"sends digest {digest.hex()[:16]}...")

    # --- Bob (device holder, online search at device speed) -------------
    recovered = exchange.holder_find(digest, rng)
    print(f"Bob's device recovers index {recovered}")
    assert recovered == secret_index

    key_alice = exchange.shared_secret(secret_index)
    key_bob = exchange.shared_secret(recovered)
    print(f"shared secret established: {key_alice.hex()[:32]}... "
          f"(match: {key_alice == key_bob})")

    # --- Eve's bill ------------------------------------------------------
    # A representative ESG model (the fig7 experiment fits one from data;
    # here use round numbers for the illustration).
    model = ESGModel(
        simulation=PowerLawFit(coefficient=2.4e-8, exponent=3.1),
        execution=PowerLawFit(coefficient=6.7e-9, exponent=0.9),
    )
    costs = exchange.modeled_costs(model)
    print("modeled costs at this device size:")
    print(f"  Alice (offline simulation of 1 chain): {costs.initiator_seconds*1e3:.2f} ms")
    print(f"  Bob   (online device search):          {costs.holder_seconds*1e6:.2f} us")
    print(f"  Eve   (online simulation search):      {costs.eavesdropper_seconds*1e3:.2f} ms")
    print(f"  -> Eve is {costs.advantage_ratio:,.0f}x slower than Bob; the gap "
          "grows ~n^2 with device size (the ESG)")


if __name__ == "__main__":
    main()
