"""Technology sweep: how device knobs move the security metrics.

Two sweeps a silicon designer would run before committing a PPUF tape-out:

1. channel-length modulation λ — worse short-channel behaviour erodes the
   Requirement-2 margin (the whole reason two-level SD exists);
2. threshold-variation σ_Vt — more mismatch means more uniqueness, up to
   the point where devices start shutting off.

Run:  python examples/technology_sweep.py
"""

from repro.analysis.sweeps import (
    requirement2_metric,
    sweep_technology,
    uniqueness_metric,
)


def main():
    print("sweep 1: channel-length modulation lambda vs Requirement-2 ratio")
    sweep = sweep_technology(
        "lam",
        [0.05, 0.12, 0.25, 0.5],
        requirement2_metric(samples=400, seed=1),
    )
    for value, ratio, drift in zip(
        sweep.values, sweep.metric("req2_ratio"), sweep.metric("sce_change")
    ):
        print(f"  lambda={value:.2f}: ratio={ratio:7.1f}x  sce_drift={drift:.3g} A")
    print("  -> larger lambda = more SCE drift = thinner simulation-accuracy margin")

    print("sweep 2: threshold-variation sigma vs population uniqueness")
    sweep = sweep_technology(
        "sigma_vt",
        [0.005, 0.015, 0.035, 0.070],
        uniqueness_metric(instances=5, challenges=25, seed=1),
    )
    for value, hd in zip(sweep.values, sweep.metric("inter_class_hd")):
        print(f"  sigma_vt={value*1000:4.0f} mV: inter-class HD = {hd:.3f}")
    print("  -> more mismatch pushes uniqueness toward the ideal 0.5 "
          "(ITRS gives 35 mV at 32 nm)")


if __name__ == "__main__":
    main()
