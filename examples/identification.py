"""Enrollment-free device identification with public models.

A fleet of PPUF devices ships; the manufacturer publishes each device's
model (the variation data — public by design).  A field verifier holding
only the registry identifies which physical device it is talking to by
comparing a measured response word against the registry's *simulated*
words.  No CRP database is ever enrolled or stored — the property the
paper's introduction sells over classical PUFs.

The last section shows the structural attacker: it predicts responses
perfectly (the model is public!) but pays the simulation latency on every
query — the reason the protocol is time-bounded.

Run:  python examples/identification.py
"""

import numpy as np

from repro.attacks import StructuralSimulator
from repro.ppuf import Ppuf, PublicRegistry, expected_match_separation
from repro.ppuf.delay import lin_mead_delay_bound


def main():
    rng = np.random.default_rng(5)
    fleet_size = 5
    word_length = 64

    print(f"fabricating a fleet of {fleet_size} 16-node PPUFs...")
    fleet = {f"device_{i}": Ppuf.create(16, 4, rng) for i in range(fleet_size)}

    # A public challenge set (any fresh random set works; nothing secret).
    space = next(iter(fleet.values())).challenge_space()
    challenges = [space.random(rng) for _ in range(word_length)]

    registry = PublicRegistry(challenges=challenges)
    for name, device in fleet.items():
        registry.register(name, device)

    same, cross = expected_match_separation(list(fleet.values()), challenges)
    print(f"separation over {word_length}-bit words: same-device distance "
          f"{same:.2f}, closest cross-device distance {cross:.2f}")

    # Identify each physical device by measuring its response word.
    print("identification round:")
    for name, device in fleet.items():
        measured = device.response_bits(challenges)
        matched, distance = registry.identify(measured)
        status = "OK " if matched == name else "FAIL"
        print(f"  {status} measured {name} -> matched {matched} "
              f"(distance {distance:.3f})")

    # A counterfeit device (not in the registry) must not match anyone.
    counterfeit = Ppuf.create(16, 4, rng)
    matched, distance = registry.identify(counterfeit.response_bits(challenges))
    print(f"counterfeit device -> matched {matched} (distance {distance:.3f}; "
          "None means correctly rejected)")

    # The structural attacker: perfect accuracy, hopeless latency.
    victim = fleet["device_0"]
    attacker = StructuralSimulator(victim)
    references = victim.response_bits(challenges[:16])
    error = attacker.prediction_error(challenges[:16], references)
    device_delay = lin_mead_delay_bound(victim.n)
    print(f"structural attacker: prediction error {error:.3f} "
          f"(the model is public), but each answer took "
          f"{attacker.mean_query_seconds*1e3:.2f} ms vs the device's "
          f"{device_delay*1e6:.2f} us -> {attacker.latency_ratio(device_delay):,.0f}x "
          "too slow for a time-bounded verifier")


if __name__ == "__main__":
    main()
