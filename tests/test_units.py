"""Units and constants."""

import pytest

from repro import units


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert units.thermal_voltage(300.0) == pytest.approx(0.02585, abs=1e-5)

    def test_scales_linearly(self):
        assert units.thermal_voltage(600.0) == pytest.approx(
            2 * units.thermal_voltage(300.0)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)


class TestConversions:
    def test_celsius(self):
        assert units.celsius(0.0) == pytest.approx(273.15)
        assert units.celsius(-20.0) == pytest.approx(253.15)

    def test_prefixes(self):
        assert units.milli(35.0) == pytest.approx(0.035)
        assert units.micro(2.0) == pytest.approx(2e-6)
        assert units.nano(5.0) == pytest.approx(5e-9)
        assert units.pico(1.5) == pytest.approx(1.5e-12)
        assert units.femto(0.6) == pytest.approx(6e-16)

    def test_room_temperature_is_27c(self):
        assert units.ROOM_TEMPERATURE == pytest.approx(units.celsius(27.0))
