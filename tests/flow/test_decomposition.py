"""Flow decomposition into path flows."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import FlowError
from repro.flow import (
    cancel_cycles,
    decompose_flow,
    decomposition_value,
    dinic,
    push_relabel,
    random_complete_network,
    random_sparse_network,
    recompose_flow,
)


class TestDecompose:
    def test_single_path(self):
        flow = np.zeros((3, 3))
        flow[0, 1] = 2.0
        flow[1, 2] = 2.0
        paths = decompose_flow(flow, 0, 2)
        assert len(paths) == 1
        assert paths[0].vertices == (0, 1, 2)
        assert paths[0].value == pytest.approx(2.0)

    def test_two_parallel_paths(self):
        flow = np.zeros((4, 4))
        flow[0, 1] = 1.0
        flow[1, 3] = 1.0
        flow[0, 2] = 2.0
        flow[2, 3] = 2.0
        paths = decompose_flow(flow, 0, 3)
        assert decomposition_value(paths) == pytest.approx(3.0)
        assert len(paths) == 2

    def test_zero_flow_empty_decomposition(self):
        assert decompose_flow(np.zeros((3, 3)), 0, 2) == []

    def test_conservation_violation_detected(self):
        flow = np.zeros((3, 3))
        flow[0, 1] = 2.0  # vanishes at vertex 1
        with pytest.raises(FlowError, match="dead-ends|conservation"):
            decompose_flow(flow, 0, 2)

    def test_cycle_detected(self):
        flow = np.zeros((4, 4))
        flow[0, 1] = 1.0
        # cycle 1 -> 2 -> 1 rides on top of nothing reaching the sink
        flow[1, 2] = 5.0
        flow[2, 1] = 4.0
        flow[1, 3] = 1.0
        with pytest.raises(FlowError):
            decompose_flow(flow, 0, 3)

    def test_nonsquare_rejected(self):
        with pytest.raises(FlowError):
            decompose_flow(np.zeros((2, 3)), 0, 1)


class TestCancelCycles:
    def test_removes_pure_cycle(self):
        flow = np.zeros((4, 4))
        flow[0, 1] = 1.0
        flow[1, 3] = 1.0
        flow[1, 2] = 4.0  # cycle 1 -> 2 -> 1 rides on top of the s-t path
        flow[2, 1] = 4.0
        cleaned = cancel_cycles(flow)
        assert cleaned[1, 2] == 0.0
        assert cleaned[2, 1] == 0.0
        paths = decompose_flow(cleaned, 0, 3)
        assert decomposition_value(paths) == pytest.approx(1.0)

    def test_acyclic_flow_unchanged(self, rng):
        network = random_sparse_network(10, rng, density=0.4)
        result = dinic(network, 0, 9)
        assert np.allclose(cancel_cycles(result.flow), result.flow, atol=1e-12)

    def test_push_relabel_flow_decomposes_after_cancel(self, rng):
        # Push-relabel legitimately returns max flows with cycles; after
        # cancellation they decompose with the full value intact.
        for _ in range(5):
            network = random_complete_network(10, rng, relative_sigma=0.3)
            result = push_relabel(network, 0, 9)
            paths = decompose_flow(cancel_cycles(result.flow), 0, 9)
            assert decomposition_value(paths) == pytest.approx(
                result.value, abs=1e-9
            )

    def test_nonsquare_rejected(self):
        with pytest.raises(FlowError):
            cancel_cycles(np.zeros((2, 3)))


class TestRecompose:
    def test_roundtrip_on_solver_output(self, rng):
        for _ in range(5):
            network = random_sparse_network(10, rng, density=0.35)
            result = dinic(network, 0, 9)
            paths = decompose_flow(result.flow, 0, 9)
            rebuilt = recompose_flow(paths, 10)
            assert np.allclose(rebuilt, result.flow, atol=1e-9)
            assert decomposition_value(paths) == pytest.approx(result.value, abs=1e-9)

    def test_path_count_bounded_by_edges(self, rng):
        network = random_sparse_network(12, rng, density=0.5)
        result = dinic(network, 0, 11)
        paths = decompose_flow(result.flow, 0, 11)
        assert len(paths) <= network.num_edges

    def test_invalid_paths_rejected(self):
        from repro.flow.decomposition import PathFlow

        with pytest.raises(FlowError):
            recompose_flow([PathFlow(vertices=(0, 5), value=1.0)], 3)
        with pytest.raises(FlowError):
            recompose_flow([PathFlow(vertices=(0, 1), value=-1.0)], 3)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_decomposition_roundtrip(seed):
    """Solver flows always decompose and recompose exactly."""
    rng = np.random.default_rng(seed)
    network = random_sparse_network(9, rng, density=0.4)
    result = dinic(network, 0, 8)
    paths = decompose_flow(result.flow, 0, 8)
    rebuilt = recompose_flow(paths, 9)
    assert np.allclose(rebuilt, result.flow, atol=1e-9)
    for path in paths:
        assert path.vertices[0] == 0
        assert path.vertices[-1] == 8
        assert path.value > 0
