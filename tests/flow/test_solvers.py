"""Cross-solver correctness: all three algorithms against networkx and
against hand-computed instances; min-cut duality; flow feasibility."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.flow import (
    FlowNetwork,
    dinic,
    edmonds_karp,
    min_cut,
    push_relabel,
    random_complete_network,
    random_sparse_network,
    solve_max_flow,
)

SOLVERS = [edmonds_karp, dinic, push_relabel]


def classic_diamond():
    """The textbook diamond: max flow 2 through two unit paths."""
    network = FlowNetwork(4)
    network.add_edge(0, 1, 1.0)
    network.add_edge(0, 2, 1.0)
    network.add_edge(1, 3, 1.0)
    network.add_edge(2, 3, 1.0)
    network.add_edge(1, 2, 1.0)
    return network


def bottleneck_chain():
    """Chain with a strict bottleneck in the middle."""
    network = FlowNetwork(4)
    network.add_edge(0, 1, 10.0)
    network.add_edge(1, 2, 3.0)
    network.add_edge(2, 3, 10.0)
    return network


@pytest.mark.parametrize("solver", SOLVERS)
class TestKnownInstances:
    def test_diamond(self, solver):
        result = solver(classic_diamond(), 0, 3)
        assert result.value == pytest.approx(2.0)

    def test_bottleneck(self, solver):
        result = solver(bottleneck_chain(), 0, 3)
        assert result.value == pytest.approx(3.0)

    def test_disconnected_sink_gives_zero(self, solver):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 5.0)
        result = solver(network, 0, 3)
        assert result.value == 0.0

    def test_single_edge(self, solver):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 7.5)
        result = solver(network, 0, 1)
        assert result.value == pytest.approx(7.5)

    def test_antiparallel_edges(self, solver):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 4.0)
        network.add_edge(1, 0, 9.0)
        network.add_edge(1, 2, 3.0)
        result = solver(network, 0, 2)
        assert result.value == pytest.approx(3.0)

    def test_rejects_equal_terminals(self, solver):
        with pytest.raises(GraphError):
            solver(classic_diamond(), 1, 1)

    def test_flow_state_written_to_network(self, solver):
        network = classic_diamond()
        solver(network, 0, 3)
        assert network.flow_value(0) == pytest.approx(2.0)
        network.check_flow(0, 3)


@pytest.mark.parametrize("solver", SOLVERS)
class TestAgainstNetworkx:
    def test_random_sparse(self, solver, rng):
        for _ in range(10):
            network = random_sparse_network(14, rng, density=0.3)
            reference = nx.maximum_flow_value(network.to_networkx(), 0, 13)
            result = solver(network.copy(), 0, 13)
            assert result.value == pytest.approx(reference, rel=1e-9, abs=1e-12)

    def test_random_complete(self, solver, rng):
        for n in (4, 8, 12):
            network = random_complete_network(n, rng, relative_sigma=0.4)
            reference = nx.maximum_flow_value(network.to_networkx(), 0, n - 1)
            result = solver(network.copy(), 0, n - 1)
            assert result.value == pytest.approx(reference, rel=1e-9)

    def test_flow_is_feasible(self, solver, rng):
        for _ in range(5):
            network = random_sparse_network(12, rng, density=0.4)
            solver(network, 0, 11)
            network.check_flow(0, 11)


@pytest.mark.parametrize("solver", SOLVERS)
class TestMinCutDuality:
    def test_cut_capacity_equals_flow_value(self, solver, rng):
        for _ in range(5):
            network = random_sparse_network(12, rng, density=0.35)
            result = solver(network.copy(), 0, 11)
            source_side, sink_side, cut = min_cut(network, result.flow, 0)
            assert 0 in source_side
            assert 11 in sink_side
            assert cut == pytest.approx(result.value, rel=1e-9, abs=1e-12)


class TestDispatch:
    def test_named_dispatch(self, rng):
        network = random_complete_network(6, rng)
        values = {
            name: solve_max_flow(network.copy(), 0, 5, algorithm=name).value
            for name in ("edmonds_karp", "dinic", "push_relabel")
        }
        assert len(set(round(v, 15) for v in values.values())) == 1

    def test_unknown_algorithm_rejected(self, rng):
        from repro.errors import SolverError

        network = random_complete_network(4, rng)
        with pytest.raises(SolverError, match="unknown algorithm"):
            solve_max_flow(network, 0, 3, algorithm="simplex")


class TestStats:
    def test_edmonds_karp_counts_augmentations(self):
        result = edmonds_karp(classic_diamond(), 0, 3)
        assert result.stats["augmentations"] >= 2

    def test_dinic_counts_phases(self):
        result = dinic(bottleneck_chain(), 0, 3)
        assert result.stats["phases"] >= 1

    def test_push_relabel_counts_work(self):
        result = push_relabel(classic_diamond(), 0, 3)
        assert result.stats["pushes"] > 0
        assert result.stats["edge_inspections"] > 0
