"""Edge-array batched Dinic (ISSUE 8 tentpole): CSR invariants + exactness.

The batched solver must be *bit-exact* in the properties that matter to
verification: every per-instance value equals a scalar exact solve, the
shipped flows are maximum feasible flows of the dense network, and the
answer for an instance never depends on which other instances share its
batch (chunking invariance — the property claim micro-batching relies on).
"""

import io

import numpy as np
import pytest

from repro.errors import GraphError, SolverError
from repro.flow import (
    SolveStats,
    get_solver,
    random_complete_network,
    random_sparse_network,
    read_dimacs,
    solve_max_flow,
)
from repro.flow.batched_dinic import batched_dinic_edges
from repro.flow.csr import (
    CsrTopology,
    complete_topology,
    segment_reduce,
    topology_from_matrix,
)
from repro.flow.residual import verify_max_flow


def complete_capacities(networks, topology):
    """Stack dense complete networks into one ``(B, E)`` capacity table."""
    return np.ascontiguousarray(
        np.stack(
            [net.capacity[topology.edge_src, topology.edge_dst] for net in networks]
        )
    )


def dense_flows(flows, topology):
    """Scatter ``(B, E)`` edge flows back into dense ``(B, n, n)`` matrices."""
    batch = flows.shape[0]
    out = np.zeros((batch, topology.n, topology.n))
    out[:, topology.edge_src, topology.edge_dst] = flows
    return out


class TestCsrTopology:
    def test_complete_topology_is_cached_and_frozen(self):
        topology = complete_topology(6)
        assert complete_topology(6) is topology
        assert topology.num_edges == 30
        for array in (topology.edge_src, topology.edge_dst, topology.opp):
            assert not array.flags.writeable

    def test_complete_topology_matches_crossbar_edge_order(self):
        # CompiledDevice.csr() relies on this: the CSR edge order IS the
        # crossbar's artifact edge order, so (B, E) capacity tables slot
        # straight in with no permutation.
        from repro.ppuf.crossbar import Crossbar

        crossbar = Crossbar(7, 3)
        src, dst = crossbar.edge_endpoints()
        topology = complete_topology(7)
        assert np.array_equal(topology.edge_src, src)
        assert np.array_equal(topology.edge_dst, dst)

    def test_opp_maps_every_edge_to_its_reverse(self):
        topology = complete_topology(5)
        assert np.array_equal(
            topology.edge_src[topology.opp], topology.edge_dst
        )
        assert np.array_equal(
            topology.edge_dst[topology.opp], topology.edge_src
        )
        # opp is an involution on a complete graph.
        assert np.array_equal(topology.opp[topology.opp], np.arange(topology.num_edges))

    def test_edge_sums_match_dense(self, rng):
        topology = complete_topology(6)
        flows = rng.random((4, topology.num_edges))
        out_sum, in_sum = topology.edge_sums(flows)
        dense = dense_flows(flows, topology)
        assert np.allclose(out_sum, dense.sum(axis=2))
        assert np.allclose(in_sum, dense.sum(axis=1))

    def test_segment_reduce_fills_empty_segments(self):
        data = np.array([[1.0, 2.0, 3.0]])
        ptr = np.array([0, 1, 1, 3])  # middle segment is empty
        reduced = segment_reduce(np.add, data, ptr, empty=0.0)
        assert np.array_equal(reduced, [[1.0, 0.0, 5.0]])

    def test_topology_from_matrix_drops_zero_and_diagonal(self):
        capacity = np.array([[5.0, 2.0, 0.0], [0.0, 0.0, 3.0], [0.0, 0.0, 0.0]])
        topology, caps = topology_from_matrix(capacity)
        assert topology.num_edges == 2
        assert np.array_equal(caps, [2.0, 3.0])
        with pytest.raises(GraphError, match="square"):
            topology_from_matrix(np.zeros((2, 3)))

    def test_build_rejects_bad_endpoints(self):
        with pytest.raises(GraphError):
            CsrTopology.build(3, np.array([0, 1]), np.array([1, 3]))


class TestExactness:
    @pytest.mark.parametrize("n,batch", [(5, 3), (8, 7), (11, 4)])
    def test_values_match_scalar_dinic_on_complete_graphs(self, n, batch):
        rng = np.random.default_rng(n * 13 + batch)
        networks = [
            random_complete_network(n, rng, relative_sigma=0.3) for _ in range(batch)
        ]
        topology = complete_topology(n)
        caps = complete_capacities(networks, topology)
        sinks = rng.integers(1, n, size=batch)
        result = batched_dinic_edges(topology, caps, np.zeros(batch, np.int64), sinks)
        for index, network in enumerate(networks):
            expected = solve_max_flow(
                network.copy(), 0, int(sinks[index]), algorithm="dinic"
            ).value
            assert result.values[index] == pytest.approx(expected, rel=1e-9), index

    @pytest.mark.parametrize("n,batch", [(5, 3), (8, 7), (11, 4)])
    def test_flows_are_maximum_feasible_flows(self, n, batch):
        rng = np.random.default_rng(n * 17 + batch)
        networks = [
            random_complete_network(n, rng, relative_sigma=0.3) for _ in range(batch)
        ]
        topology = complete_topology(n)
        caps = complete_capacities(networks, topology)
        result = batched_dinic_edges(topology, caps, 0, n - 1)
        dense = dense_flows(result.flows, topology)
        for index, network in enumerate(networks):
            assert verify_max_flow(network, dense[index], [0], [n - 1]), index

    def test_sparse_instances_via_topology_from_matrix(self, rng):
        for seed in range(5):
            local = np.random.default_rng(seed)
            network = random_sparse_network(10, local, density=0.35)
            topology, caps = topology_from_matrix(network.capacity)
            result = batched_dinic_edges(topology, caps[None, :], 0, 9)
            expected = solve_max_flow(network.copy(), 0, 9, algorithm="dinic").value
            assert result.values[0] == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_dimacs_fixtures(self):
        from tests.flow.test_registry_conformance import (
            DIMACS_BOTTLENECK,
            DIMACS_DIAMOND,
        )

        for text, expected in ((DIMACS_DIAMOND, 5.0), (DIMACS_BOTTLENECK, 2.5)):
            network, source, sink = read_dimacs(io.StringIO(text))
            topology, caps = topology_from_matrix(network.capacity)
            result = batched_dinic_edges(topology, caps[None, :], source, sink)
            assert result.values[0] == pytest.approx(expected, rel=1e-12)

    def test_zero_capacity_batch(self):
        topology = complete_topology(4)
        caps = np.zeros((2, topology.num_edges))
        result = batched_dinic_edges(topology, caps, 0, 3)
        assert np.array_equal(result.values, [0.0, 0.0])
        assert not result.flows.any()


class TestChunkingInvariance:
    def test_values_and_flows_are_bitwise_chunk_invariant(self):
        # The batched-verification contract: an instance's answer must not
        # depend on its batch neighbours.  Solve 12 instances together,
        # in 5+7, and one at a time — all three must agree bit for bit.
        n, batch = 9, 12
        rng = np.random.default_rng(2024)
        networks = [
            random_complete_network(n, rng, relative_sigma=0.3) for _ in range(batch)
        ]
        topology = complete_topology(n)
        caps = complete_capacities(networks, topology)
        sources = rng.integers(0, n // 2, size=batch)
        sinks = rng.integers(n // 2, n, size=batch)

        whole = batched_dinic_edges(topology, caps, sources, sinks)
        for chunks in ([(0, 5), (5, 12)], [(i, i + 1) for i in range(batch)]):
            values = np.concatenate(
                [
                    batched_dinic_edges(
                        topology, caps[lo:hi], sources[lo:hi], sinks[lo:hi]
                    ).values
                    for lo, hi in chunks
                ]
            )
            flows = np.concatenate(
                [
                    batched_dinic_edges(
                        topology, caps[lo:hi], sources[lo:hi], sinks[lo:hi]
                    ).flows
                    for lo, hi in chunks
                ]
            )
            assert np.array_equal(values, whole.values)
            assert np.array_equal(flows, whole.flows)


class TestValidation:
    def test_rejects_non_contiguous_residual_out(self):
        topology = complete_topology(4)
        caps = np.ones((2, topology.num_edges))
        bad = np.empty((2 * topology.num_edges + 1, 2)).T
        with pytest.raises(GraphError, match="C-contiguous"):
            batched_dinic_edges(topology, caps, 0, 3, residual_out=bad)

    def test_rejects_wrong_residual_shape_and_dtype(self):
        topology = complete_topology(4)
        caps = np.ones((2, topology.num_edges))
        with pytest.raises(GraphError):
            batched_dinic_edges(
                topology, caps, 0, 3, residual_out=np.empty((2, 5))
            )
        with pytest.raises(GraphError):
            batched_dinic_edges(
                topology,
                caps,
                0,
                3,
                residual_out=np.empty(
                    (2, 2 * topology.num_edges + 1), dtype=np.float32
                ),
            )

    def test_residual_out_is_written_in_place(self):
        topology = complete_topology(5)
        rng = np.random.default_rng(3)
        caps = np.ascontiguousarray(rng.random((3, topology.num_edges)))
        buffer = np.empty((3, 2 * topology.num_edges + 1))
        result = batched_dinic_edges(topology, caps, 0, 4, residual_out=buffer)
        assert result.residual is buffer

    def test_rejects_bad_terminals_and_capacities(self):
        topology = complete_topology(4)
        caps = np.ones((2, topology.num_edges))
        with pytest.raises(GraphError):
            batched_dinic_edges(topology, caps, 0, 7)
        with pytest.raises(GraphError):
            batched_dinic_edges(topology, caps, 2, 2)
        with pytest.raises(GraphError):
            batched_dinic_edges(topology, -caps, 0, 3)
        with pytest.raises(GraphError):
            batched_dinic_edges(topology, np.ones((2, 3)), 0, 3)


class TestRegistryIntegration:
    def test_spec_ships_the_edge_tensor_capability(self):
        spec = get_solver("batched_dinic")
        assert spec.kind == "exact"
        assert spec.tensor_edge_fn is batched_dinic_edges
        assert "edge" in spec.tensor_kind
        assert spec.capabilities()["tensor"] == spec.tensor_kind

    def test_solve_tensor_edges_records_stats(self):
        spec = get_solver("batched_dinic")
        topology = complete_topology(6)
        rng = np.random.default_rng(9)
        caps = np.ascontiguousarray(rng.random((4, topology.num_edges)) + 0.1)
        stats = SolveStats()
        result = spec.solve_tensor_edges(topology, caps, 0, 5, stats=stats)
        assert len(result.values) == 4
        assert stats.solves == 4
        assert stats.total_seconds >= 0

    def test_solvers_without_edge_path_refuse(self):
        spec = get_solver("dinic")
        if spec.tensor_edge_fn is not None:
            pytest.skip("dinic grew an edge path; nothing to refuse")
        topology = complete_topology(4)
        with pytest.raises(SolverError, match="edge-array"):
            spec.solve_tensor_edges(topology, np.ones((1, topology.num_edges)), 0, 3)
