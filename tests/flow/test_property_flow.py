"""Property-based tests over the max-flow substrate (hypothesis).

Invariants checked on arbitrary random instances:

* all three solvers agree with each other and with networkx;
* the produced flow is always feasible;
* max-flow/min-cut duality holds;
* the verifier accepts exactly the solver's output and rejects scaled-down
  versions of it;
* monotonicity: raising any capacity never lowers the max-flow value.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flow import (
    FlowNetwork,
    dinic,
    edmonds_karp,
    min_cut,
    push_relabel,
    verify_max_flow,
)

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def flow_instances(draw):
    """Random instances: size 3..9, random density, capacities in [0, 10]."""
    n = draw(st.integers(min_value=3, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    density = draw(st.floats(min_value=0.2, max_value=1.0))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    capacities = np.where(mask, rng.uniform(0.0, 10.0, size=(n, n)), 0.0)
    np.fill_diagonal(capacities, 0.0)
    return FlowNetwork.from_capacity_matrix(capacities)


@given(flow_instances())
@settings(**SETTINGS)
def test_solvers_agree_with_networkx(network):
    reference = nx.maximum_flow_value(network.to_networkx(), 0, network.n - 1)
    for solver in (edmonds_karp, dinic, push_relabel):
        value = solver(network.copy(), 0, network.n - 1).value
        assert value == pytest.approx(reference, rel=1e-9, abs=1e-9)


@given(flow_instances())
@settings(**SETTINGS)
def test_flows_are_feasible(network):
    for solver in (edmonds_karp, dinic, push_relabel):
        candidate = network.copy()
        solver(candidate, 0, network.n - 1)
        candidate.check_flow(0, network.n - 1)


@given(flow_instances())
@settings(**SETTINGS)
def test_min_cut_duality(network):
    result = dinic(network.copy(), 0, network.n - 1)
    _, _, cut = min_cut(network, result.flow, 0)
    assert cut == pytest.approx(result.value, rel=1e-9, abs=1e-9)


@given(flow_instances())
@settings(**SETTINGS)
def test_verifier_accepts_optimal_rejects_scaled(network):
    sink = network.n - 1
    result = dinic(network.copy(), 0, sink)
    assert verify_max_flow(network, result.flow, [0], [sink])
    if result.value > 1e-9:
        # A feasible but strictly smaller flow must be rejected.
        assert not verify_max_flow(network, result.flow * 0.5, [0], [sink])


@given(flow_instances(), st.integers(min_value=0, max_value=2**31))
@settings(**SETTINGS)
def test_capacity_monotonicity(network, seed):
    sink = network.n - 1
    base = dinic(network.copy(), 0, sink).value
    rng = np.random.default_rng(seed)
    boosted = network.copy()
    edges = list(boosted.edges())
    if edges:
        u, v = edges[rng.integers(len(edges))]
        boosted.add_edge(u, v, boosted.capacity[u, v] + rng.uniform(0.1, 5.0))
    higher = dinic(boosted, 0, sink).value
    assert higher >= base - 1e-9
