"""Regression: Dinic on deep augmenting paths.

The blocking-flow search used to recurse once per path vertex, so a chain
of ~1200 nodes overflowed Python's default recursion limit (1000).  The
search now walks an explicit stack; these tests pin a level graph five
times deeper than the old crash threshold, with the recursion limit forced
down to the default so an accidental return to recursion fails loudly.
"""

import sys

import numpy as np
import pytest

from repro.flow import blocking_flow, dinic, long_path_network

DEFAULT_RECURSION_LIMIT = 1000


@pytest.fixture
def default_recursion_limit():
    """Run the test body under CPython's default recursion limit."""
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(DEFAULT_RECURSION_LIMIT)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


class TestDeepChain:
    def test_5000_node_chain_at_default_recursion_limit(
        self, default_recursion_limit
    ):
        length = 5000
        network = long_path_network(length, capacity=1.0)
        result = dinic(network, 0, length)
        assert result.value == pytest.approx(1.0)
        # One level-graph build finds the single path; one augmentation
        # saturates it end to end.
        assert result.stats["phases"] == 1
        assert result.stats["augmentations"] == 1

    def test_deep_chain_flow_saturates_every_edge(self, default_recursion_limit):
        length = 1500  # past the old ~1200-node crash threshold
        network = long_path_network(length, capacity=2.5)
        result = dinic(network, 0, length)
        assert result.value == pytest.approx(2.5)
        chain = np.arange(length)
        assert np.allclose(result.flow[chain, chain + 1], 2.5)

    def test_blocking_flow_core_runs_in_place(self):
        network = long_path_network(64, capacity=3.0)
        residual = network.capacity.copy()
        stats = blocking_flow(residual, 0, 64)
        assert stats["phases"] == 1
        assert stats["augmentations"] == 1
        flow = np.clip(network.capacity - residual, 0.0, network.capacity)
        assert flow[0].sum() - flow[:, 0].sum() == pytest.approx(3.0)
