"""Timing instrumentation and the SolveStats telemetry spine."""

import numpy as np
import pytest

from repro.flow import (
    SolveStats,
    dinic,
    get_solver,
    random_complete_network,
    time_solver,
)


class TestSolveStats:
    def test_count_accumulates(self):
        stats = SolveStats()
        stats.count("pushes", 3)
        stats.count("relabels")
        stats.add_counters({"pushes": 2, "gap_events": 5})
        assert stats.counters == {"pushes": 5, "relabels": 1, "gap_events": 5}
        assert stats.operations == 11

    def test_empty_stats(self):
        stats = SolveStats()
        assert stats.operations == 0
        assert stats.total_seconds == 0.0
        assert stats.phase_total() == 0.0

    def test_phase_records_elapsed(self):
        stats = SolveStats()
        with stats.phase("prepare"):
            pass
        with stats.phase("prepare"):
            pass
        with stats.phase("solve"):
            pass
        assert set(stats.phase_seconds) == {"prepare", "solve"}
        assert all(seconds >= 0 for seconds in stats.phase_seconds.values())
        assert stats.phase_total() == pytest.approx(
            sum(stats.phase_seconds.values())
        )

    def test_merge_combines_and_flags_mixed_algorithms(self):
        left = SolveStats(algorithm="dinic", solves=2, total_seconds=1.0)
        left.count("augmentations", 4)
        right = SolveStats(algorithm="push_relabel", solves=1, total_seconds=0.5)
        right.count("pushes", 7)
        left.merge(right)
        assert left.algorithm == "mixed"
        assert left.solves == 3
        assert left.total_seconds == pytest.approx(1.5)
        assert left.counters == {"augmentations": 4, "pushes": 7}

    def test_to_dict_roundtrips_fields(self):
        stats = SolveStats(algorithm="dinic", solves=1, total_seconds=0.25)
        stats.count("augmentations", 2)
        payload = stats.to_dict()
        assert payload["algorithm"] == "dinic"
        assert payload["solves"] == 1
        assert payload["counters"] == {"augmentations": 2}


class TestTimeSolver:
    def test_collects_samples_per_size(self):
        rng = np.random.default_rng(0)

        def make(n):
            return random_complete_network(n, rng)

        samples = time_solver(dinic, make, sizes=(4, 8), repeats=2)
        assert [s.n for s in samples] == [4, 8]
        for sample in samples:
            assert len(sample.seconds) == 2
            assert all(t >= 0 for t in sample.seconds)
            assert all(ops > 0 for ops in sample.operations)
            assert sample.mean_seconds >= 0
            assert sample.mean_operations > 0

    def test_accepts_registry_names_and_specs(self):
        rng = np.random.default_rng(2)

        def make(n):
            return random_complete_network(n, rng)

        by_name = time_solver("dinic", make, sizes=(4,), repeats=1)
        by_spec = time_solver(get_solver("dinic"), make, sizes=(4,), repeats=1)
        assert by_name[0].n == by_spec[0].n == 4
        assert by_name[0].mean_operations > 0
        assert by_spec[0].mean_operations > 0

    def test_operations_grow_with_size(self):
        rng = np.random.default_rng(1)

        def make(n):
            return random_complete_network(n, rng)

        samples = time_solver(dinic, make, sizes=(4, 16), repeats=2)
        assert samples[1].mean_operations > samples[0].mean_operations
