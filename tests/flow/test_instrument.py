"""Timing/operation instrumentation."""

import numpy as np

from repro.flow import (
    OperationCounter,
    dinic,
    random_complete_network,
    time_solver,
)


class TestOperationCounter:
    def test_accumulates_across_runs(self):
        counter = OperationCounter()
        counter.add({"pushes": 3, "relabels": 1})
        counter.add({"pushes": 2, "gap_events": 5})
        assert counter.counts == {"pushes": 5, "relabels": 1, "gap_events": 5}
        assert counter.total() == 11

    def test_empty_counter_total(self):
        assert OperationCounter().total() == 0


class TestTimeSolver:
    def test_collects_samples_per_size(self):
        rng = np.random.default_rng(0)

        def make(n):
            return random_complete_network(n, rng)

        samples = time_solver(dinic, make, sizes=(4, 8), repeats=2)
        assert [s.n for s in samples] == [4, 8]
        for sample in samples:
            assert len(sample.seconds) == 2
            assert all(t >= 0 for t in sample.seconds)
            assert all(ops > 0 for ops in sample.operations)
            assert sample.mean_seconds >= 0
            assert sample.mean_operations > 0

    def test_operations_grow_with_size(self):
        rng = np.random.default_rng(1)

        def make(n):
            return random_complete_network(n, rng)

        samples = time_solver(dinic, make, sizes=(4, 16), repeats=2)
        assert samples[1].mean_operations > samples[0].mean_operations
