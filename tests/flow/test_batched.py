"""Batched lockstep max-flow against the exact per-instance solvers."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.flow import (
    batched_max_flow,
    dinic,
    long_path_network,
    random_complete_network,
    random_sparse_network,
    verify_max_flow,
)


def stacked(networks):
    return np.stack([network.capacity for network in networks])


def dinic_values(networks, sources, sinks):
    return np.array(
        [
            dinic(network, int(s), int(t)).value
            for network, s, t in zip(networks, sources, sinks)
        ]
    )


class TestAgainstExactSolvers:
    def test_random_complete_batch(self, rng):
        networks = [random_complete_network(8, rng) for _ in range(6)]
        result = batched_max_flow(stacked(networks), 0, 7)
        expected = dinic_values(networks, [0] * 6, [7] * 6)
        assert np.allclose(result.values, expected, rtol=1e-12)

    def test_random_sparse_batch_with_varied_terminals(self, rng):
        networks = [
            random_sparse_network(12, rng, density=0.4, source=b, sink=11 - b)
            for b in range(5)
        ]
        sources = np.arange(5)
        sinks = 11 - sources
        result = batched_max_flow(stacked(networks), sources, sinks)
        expected = dinic_values(networks, sources, sinks)
        assert np.allclose(result.values, expected, rtol=1e-12)

    def test_path_instances(self):
        networks = [long_path_network(9, capacity=c) for c in (0.5, 2.0, 7.25)]
        result = batched_max_flow(stacked(networks), 0, 9)
        assert np.allclose(result.values, [0.5, 2.0, 7.25])

    def test_unreachable_sink_gives_zero(self):
        capacity = np.zeros((1, 4, 4))
        capacity[0, 0, 1] = 5.0
        result = batched_max_flow(capacity, 0, 3)
        assert result.values[0] == 0.0

    def test_residual_encodes_an_optimal_flow(self, rng):
        networks = [random_complete_network(7, rng) for _ in range(3)]
        capacity = stacked(networks)
        result = batched_max_flow(capacity, 0, 6)
        for b, network in enumerate(networks):
            flow = np.clip(
                capacity[b] - result.residual[b], 0.0, capacity[b]
            )
            assert verify_max_flow(network, flow, [0], [6])


class TestDeterminism:
    def test_instance_results_independent_of_batch_composition(self, rng):
        networks = [random_sparse_network(10, rng, density=0.5) for _ in range(6)]
        capacity = stacked(networks)
        together = batched_max_flow(capacity, 0, 9)
        for b in range(6):
            alone = batched_max_flow(capacity[b : b + 1], 0, 9)
            # Exact equality: no arithmetic couples instances, so chunking
            # a workload differently cannot perturb any result.
            assert alone.values[0] == together.values[b]
            assert np.array_equal(alone.residual[0], together.residual[b])

    def test_repeat_runs_identical(self, rng):
        capacity = stacked([random_complete_network(6, rng) for _ in range(4)])
        first = batched_max_flow(capacity, 0, 5)
        second = batched_max_flow(capacity, 0, 5)
        assert np.array_equal(first.values, second.values)
        assert np.array_equal(first.residual, second.residual)


class TestBufferReuse:
    def test_residual_out_is_used_and_matches(self, rng):
        capacity = stacked([random_complete_network(6, rng) for _ in range(3)])
        buffer = np.empty_like(capacity)
        reference = batched_max_flow(capacity, 0, 5)
        reused = batched_max_flow(capacity, 0, 5, residual_out=buffer)
        assert reused.residual is buffer
        assert np.array_equal(reused.values, reference.values)

    def test_residual_out_shape_checked(self):
        capacity = np.zeros((2, 4, 4))
        capacity[:, 0, 3] = 1.0
        with pytest.raises(GraphError):
            batched_max_flow(capacity, 0, 3, residual_out=np.empty((1, 4, 4)))
        with pytest.raises(GraphError):
            batched_max_flow(
                capacity, 0, 3, residual_out=np.empty((2, 4, 4), dtype=np.float32)
            )


class TestValidation:
    def test_rejects_non_stack_input(self):
        with pytest.raises(GraphError):
            batched_max_flow(np.zeros((4, 4)), 0, 3)
        with pytest.raises(GraphError):
            batched_max_flow(np.zeros((2, 4, 5)), 0, 3)

    def test_rejects_tiny_graphs(self):
        with pytest.raises(GraphError):
            batched_max_flow(np.zeros((1, 1, 1)), 0, 0)

    def test_rejects_negative_capacity(self):
        capacity = np.zeros((1, 3, 3))
        capacity[0, 0, 1] = -1.0
        with pytest.raises(GraphError):
            batched_max_flow(capacity, 0, 2)

    def test_rejects_self_loop_capacity(self):
        capacity = np.zeros((1, 3, 3))
        capacity[0, 1, 1] = 2.0
        with pytest.raises(GraphError):
            batched_max_flow(capacity, 0, 2)

    def test_rejects_bad_terminals(self):
        capacity = np.zeros((2, 3, 3))
        with pytest.raises(GraphError):
            batched_max_flow(capacity, 0, 3)
        with pytest.raises(GraphError):
            batched_max_flow(capacity, [-1, 0], 2)
        with pytest.raises(GraphError):
            batched_max_flow(capacity, [0, 2], [1, 2])


class TestStats:
    def test_operation_counts_reported(self, rng):
        capacity = stacked([random_complete_network(6, rng) for _ in range(4)])
        result = batched_max_flow(capacity, 0, 5)
        assert result.stats["rounds"] >= 1
        assert result.stats["augmentations"] >= 4
        assert result.stats["bfs_edge_visits"] > 0
