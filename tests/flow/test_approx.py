"""The ε-approximate solver: certification and cost-model behaviour."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.flow import approximate_max_flow, random_complete_network, random_sparse_network
from repro.flow.graph import FlowNetwork


class TestCertification:
    @pytest.mark.parametrize("epsilon", [0.5, 0.1, 0.01])
    def test_value_within_epsilon_of_optimum(self, epsilon, rng):
        for _ in range(5):
            network = random_sparse_network(12, rng, density=0.35)
            reference = nx.maximum_flow_value(network.to_networkx(), 0, 11)
            result = approximate_max_flow(network.copy(), 0, 11, epsilon=epsilon)
            assert result.value >= (1.0 - epsilon) * reference - 1e-12
            assert result.value <= reference + 1e-9 * max(reference, 1.0)

    def test_upper_bound_is_valid(self, rng):
        for _ in range(5):
            network = random_complete_network(8, rng, relative_sigma=0.3)
            reference = nx.maximum_flow_value(network.to_networkx(), 0, 7)
            result = approximate_max_flow(network.copy(), 0, 7, epsilon=0.2)
            assert result.upper_bound >= reference - 1e-9

    def test_certified_error_within_epsilon(self, rng):
        network = random_complete_network(8, rng)
        result = approximate_max_flow(network, 0, 7, epsilon=0.1)
        assert 0.0 <= result.certified_error <= 0.1

    def test_flow_is_feasible(self, rng):
        network = random_sparse_network(10, rng, density=0.4)
        result = approximate_max_flow(network, 0, 9, epsilon=0.1)
        network.flow = result.flow
        network.check_flow(0, 9)


class TestCostModel:
    def test_work_scales_inverse_epsilon_squared(self, rng):
        network = random_complete_network(6, rng)
        coarse = approximate_max_flow(network.copy(), 0, 5, epsilon=0.5)
        fine = approximate_max_flow(network.copy(), 0, 5, epsilon=0.05)
        assert fine.modeled_work == pytest.approx(coarse.modeled_work * 100.0)

    def test_tighter_epsilon_never_fewer_augmentations(self, rng):
        network = random_complete_network(8, rng, relative_sigma=0.4)
        coarse = approximate_max_flow(network.copy(), 0, 7, epsilon=0.5)
        fine = approximate_max_flow(network.copy(), 0, 7, epsilon=0.01)
        assert fine.augmentations >= coarse.augmentations


class TestEdgeCases:
    def test_zero_capacity_instance(self):
        network = FlowNetwork(3)
        result = approximate_max_flow(network, 0, 2, epsilon=0.1)
        assert result.value == 0.0
        assert result.upper_bound == 0.0

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_epsilon_rejected(self, epsilon, rng):
        network = random_complete_network(4, rng)
        with pytest.raises(GraphError):
            approximate_max_flow(network, 0, 3, epsilon=epsilon)

    def test_equal_terminals_rejected(self, rng):
        network = random_complete_network(4, rng)
        with pytest.raises(GraphError):
            approximate_max_flow(network, 2, 2, epsilon=0.1)
