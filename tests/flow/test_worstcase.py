"""Adversarial instance generators and solver behaviour on them."""

import pytest

from repro.errors import GraphError
from repro.flow import (
    dinic,
    edmonds_karp,
    layered_network,
    long_path_network,
    push_relabel,
    zigzag_network,
)

SOLVERS = [edmonds_karp, dinic, push_relabel]


class TestLayeredNetwork:
    def test_known_max_flow(self):
        network = layered_network(3, 4, capacity=2.0)
        for solver in SOLVERS:
            assert solver(network.copy(), 0, network.n - 1).value == pytest.approx(8.0)

    def test_structure(self):
        network = layered_network(2, 3)
        # source edges + sink edges + one fully connected layer pair.
        assert network.num_edges == 3 + 3 + 9

    def test_validation(self):
        with pytest.raises(GraphError):
            layered_network(0, 3)
        with pytest.raises(GraphError):
            layered_network(2, 3, capacity=0.0)


class TestZigzagNetwork:
    def test_known_max_flow(self):
        network = zigzag_network(4, big=100.0)
        for solver in SOLVERS:
            assert solver(network.copy(), 0, network.n - 1).value == pytest.approx(200.0)

    def test_shortest_path_solver_ignores_rungs(self):
        """Edmonds-Karp needs O(1) augmentations regardless of `big`."""
        network = zigzag_network(3, big=1e6)
        result = edmonds_karp(network, 0, network.n - 1)
        assert result.stats["augmentations"] <= 10

    def test_validation(self):
        with pytest.raises(GraphError):
            zigzag_network(0)
        with pytest.raises(GraphError):
            zigzag_network(3, big=0.5)


class TestLongPath:
    def test_value_is_bottleneck(self):
        network = long_path_network(12, capacity=3.5)
        for solver in SOLVERS:
            assert solver(network.copy(), 0, 12).value == pytest.approx(3.5)

    def test_dinic_level_depth_scales_with_length(self):
        short = dinic(long_path_network(4), 0, 4)
        long = dinic(long_path_network(30), 0, 30)
        assert long.stats["bfs_edge_visits"] > short.stats["bfs_edge_visits"]

    def test_validation(self):
        with pytest.raises(GraphError):
            long_path_network(0)
