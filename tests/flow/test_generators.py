"""Instance generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.flow import (
    complete_network,
    dinic,
    random_complete_network,
    random_sparse_network,
)


class TestCompleteNetwork:
    def test_uniform_complete(self):
        network = complete_network(5, capacity=2.0)
        assert network.is_complete()
        assert network.capacity[0, 1] == 2.0
        assert network.capacity[3, 2] == 2.0

    def test_uniform_complete_max_flow_value(self):
        # From source, n-1 unit edges leave; interior cannot bottleneck.
        network = complete_network(6, capacity=1.0)
        assert dinic(network, 0, 5).value == pytest.approx(5.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(GraphError):
            complete_network(4, capacity=0.0)


class TestRandomCompleteNetwork:
    def test_statistics(self, rng):
        network = random_complete_network(20, rng, mean=2.0, relative_sigma=0.1)
        values = network.capacity[network.adjacency]
        assert values.mean() == pytest.approx(2.0, rel=0.05)
        assert values.std() == pytest.approx(0.2, rel=0.3)

    def test_capacities_stay_positive(self, rng):
        network = random_complete_network(15, rng, mean=1.0, relative_sigma=2.0)
        assert np.all(network.capacity[network.adjacency] > 0)

    def test_determinism_per_seed(self):
        a = random_complete_network(8, np.random.default_rng(5))
        b = random_complete_network(8, np.random.default_rng(5))
        assert np.array_equal(a.capacity, b.capacity)

    def test_invalid_parameters(self, rng):
        with pytest.raises(GraphError):
            random_complete_network(8, rng, mean=-1.0)
        with pytest.raises(GraphError):
            random_complete_network(8, rng, relative_sigma=-0.1)


class TestRandomSparseNetwork:
    def test_has_positive_max_flow(self, rng):
        for _ in range(10):
            network = random_sparse_network(10, rng, density=0.2)
            assert dinic(network, 0, 9).value > 0.0

    def test_density_controls_edge_count(self, rng):
        sparse = random_sparse_network(30, rng, density=0.1)
        dense = random_sparse_network(30, rng, density=0.8)
        assert sparse.num_edges < dense.num_edges

    def test_invalid_density(self, rng):
        with pytest.raises(GraphError):
            random_sparse_network(10, rng, density=0.0)
