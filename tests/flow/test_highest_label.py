"""Highest-label push-relabel solver."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.flow import (
    highest_label_push_relabel,
    random_complete_network,
    random_sparse_network,
    solve_max_flow,
    zigzag_network,
)


class TestHighestLabel:
    def test_matches_networkx(self, rng):
        for _ in range(10):
            network = random_sparse_network(12, rng, density=0.35)
            reference = nx.maximum_flow_value(network.to_networkx(), 0, 11)
            result = highest_label_push_relabel(network.copy(), 0, 11)
            assert result.value == pytest.approx(reference, rel=1e-9, abs=1e-12)

    def test_flow_feasible(self, rng):
        network = random_complete_network(10, rng, relative_sigma=0.4)
        highest_label_push_relabel(network, 0, 9)
        network.check_flow(0, 9)

    def test_dispatch_by_name(self, rng):
        network = random_complete_network(6, rng)
        named = solve_max_flow(network.copy(), 0, 5, algorithm="highest_label")
        direct = highest_label_push_relabel(network.copy(), 0, 5)
        assert named.value == pytest.approx(direct.value)

    def test_structured_instance(self):
        network = zigzag_network(4, big=50.0)
        result = highest_label_push_relabel(network, 0, network.n - 1)
        assert result.value == pytest.approx(100.0)

    def test_stats_reported(self, rng):
        network = random_complete_network(8, rng)
        result = highest_label_push_relabel(network, 0, 7)
        assert result.stats["pushes"] > 0
        assert result.stats["edge_inspections"] > 0

    def test_equal_terminals_rejected(self, rng):
        network = random_complete_network(4, rng)
        with pytest.raises(GraphError):
            highest_label_push_relabel(network, 2, 2)

    def test_agrees_with_fifo_variant(self, rng):
        from repro.flow import push_relabel

        for _ in range(5):
            network = random_sparse_network(10, rng, density=0.4)
            fifo = push_relabel(network.copy(), 0, 9)
            highest = highest_label_push_relabel(network.copy(), 0, 9)
            assert highest.value == pytest.approx(fifo.value, rel=1e-9, abs=1e-12)
