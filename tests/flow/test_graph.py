"""FlowNetwork structure, validation and interop."""

import numpy as np
import pytest

from repro.errors import FlowError, GraphError
from repro.flow.graph import FlowNetwork, FlowResult, supersource_reduction


class TestConstruction:
    def test_minimum_size_enforced(self):
        with pytest.raises(GraphError):
            FlowNetwork(1)

    def test_new_network_has_no_edges(self):
        network = FlowNetwork(5)
        assert network.num_edges == 0
        assert not network.is_complete()

    def test_add_edge_sets_capacity_and_adjacency(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 2.5)
        assert network.capacity[0, 1] == 2.5
        assert network.adjacency[0, 1]
        assert not network.adjacency[1, 0]

    def test_add_edge_rejects_self_loop(self):
        network = FlowNetwork(3)
        with pytest.raises(GraphError):
            network.add_edge(1, 1, 1.0)

    def test_add_edge_rejects_negative_capacity(self):
        network = FlowNetwork(3)
        with pytest.raises(GraphError):
            network.add_edge(0, 1, -1.0)

    def test_add_edge_rejects_out_of_range_vertex(self):
        network = FlowNetwork(3)
        with pytest.raises(GraphError):
            network.add_edge(0, 3, 1.0)

    def test_from_capacity_matrix_roundtrip(self):
        matrix = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 2.0], [3.0, 0.0, 0.0]])
        network = FlowNetwork.from_capacity_matrix(matrix)
        assert network.num_edges == 3
        assert list(network.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_from_capacity_matrix_rejects_nonsquare(self):
        with pytest.raises(GraphError):
            FlowNetwork.from_capacity_matrix(np.zeros((2, 3)))

    def test_from_capacity_matrix_rejects_negative(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = -1.0
        with pytest.raises(GraphError):
            FlowNetwork.from_capacity_matrix(matrix)

    def test_from_capacity_matrix_rejects_diagonal(self):
        matrix = np.zeros((3, 3))
        matrix[1, 1] = 1.0
        with pytest.raises(GraphError):
            FlowNetwork.from_capacity_matrix(matrix)

    def test_copy_is_deep(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 1.0)
        clone = network.copy()
        clone.capacity[0, 1] = 9.0
        assert network.capacity[0, 1] == 1.0


class TestFromArrays:
    def test_builds_same_network_as_capacity_matrix(self):
        matrix = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 2.0], [3.0, 0.0, 0.0]])
        via_matrix = FlowNetwork.from_capacity_matrix(matrix)
        via_arrays = FlowNetwork.from_arrays(
            3, np.array([0, 1, 2]), np.array([1, 2, 0]), np.array([1.0, 2.0, 3.0])
        )
        assert np.array_equal(via_arrays.capacity, via_matrix.capacity)

    def test_zero_capacity_edge_keeps_adjacency(self):
        # Unlike from_capacity_matrix, an explicitly listed edge stays in
        # the adjacency even at zero capacity — compiled PPUF instances
        # have a fixed edge set and only the capacities vary per challenge.
        network = FlowNetwork.from_arrays(
            3, np.array([0, 1]), np.array([1, 2]), np.array([0.0, 1.0])
        )
        assert network.adjacency[0, 1]
        assert network.capacity[0, 1] == 0.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(GraphError):
            FlowNetwork.from_arrays(
                3, np.array([0, 1]), np.array([1]), np.array([1.0, 2.0])
            )

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            FlowNetwork.from_arrays(3, np.array([1]), np.array([1]), np.array([1.0]))

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(GraphError):
            FlowNetwork.from_arrays(3, np.array([0]), np.array([3]), np.array([1.0]))

    def test_rejects_negative_capacity(self):
        with pytest.raises(GraphError):
            FlowNetwork.from_arrays(3, np.array([0]), np.array([1]), np.array([-1.0]))


class TestQueries:
    def test_complete_network_detection(self):
        matrix = np.ones((4, 4))
        np.fill_diagonal(matrix, 0.0)
        network = FlowNetwork.from_capacity_matrix(matrix)
        assert network.is_complete()
        assert network.num_edges == 12

    def test_successors_and_predecessors(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1.0)
        network.add_edge(0, 2, 1.0)
        network.add_edge(3, 0, 1.0)
        assert set(network.successors(0)) == {1, 2}
        assert set(network.predecessors(0)) == {3}

    def test_flow_value_counts_net_flow(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 5.0)
        network.add_edge(1, 0, 5.0)
        network.flow[0, 1] = 3.0
        network.flow[1, 0] = 1.0
        assert network.flow_value(0) == pytest.approx(2.0)

    def test_reset_flow(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 5.0)
        network.flow[0, 1] = 3.0
        network.reset_flow()
        assert network.flow_value(0) == 0.0


class TestCheckFlow:
    def _chain(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 2.0)
        network.add_edge(1, 2, 2.0)
        return network

    def test_valid_flow_passes(self):
        network = self._chain()
        network.flow[0, 1] = 1.5
        network.flow[1, 2] = 1.5
        network.check_flow(0, 2)

    def test_capacity_violation_raises(self):
        network = self._chain()
        network.flow[0, 1] = 3.0
        network.flow[1, 2] = 3.0
        with pytest.raises(FlowError, match="exceeds capacity"):
            network.check_flow(0, 2)

    def test_conservation_violation_raises(self):
        network = self._chain()
        network.flow[0, 1] = 2.0
        network.flow[1, 2] = 0.5
        with pytest.raises(FlowError, match="conservation"):
            network.check_flow(0, 2)

    def test_negative_flow_raises(self):
        network = self._chain()
        network.flow[0, 1] = -1.0
        with pytest.raises(FlowError):
            network.check_flow(0, 2)


class TestInterop:
    def test_to_networkx_preserves_capacities(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 1.25)
        network.add_edge(1, 2, 2.5)
        graph = network.to_networkx()
        assert graph.number_of_edges() == 2
        assert graph[0][1]["capacity"] == 1.25
        assert graph[1][2]["capacity"] == 2.5


class TestFlowResult:
    def test_saturated_edges_detection(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 2.0)
        network.add_edge(1, 2, 4.0)
        flow = np.zeros((3, 3))
        flow[0, 1] = 2.0
        flow[1, 2] = 2.0
        result = FlowResult(value=2.0, flow=flow, algorithm="manual")
        assert result.saturated_edges(network) == [(0, 1)]


class TestSupersourceReduction:
    def test_reduces_sets_to_single_terminals(self):
        network = FlowNetwork(4)
        network.add_edge(0, 2, 1.0)
        network.add_edge(1, 3, 1.0)
        reduced, s, t = supersource_reduction(network, [0, 1], [2, 3])
        assert reduced.n == 6
        assert s == 4 and t == 5
        assert reduced.capacity[s, 0] > 0 and reduced.capacity[s, 1] > 0
        assert reduced.capacity[2, t] > 0 and reduced.capacity[3, t] > 0

    def test_reduced_max_flow_matches_sum(self):
        from repro.flow import dinic

        network = FlowNetwork(4)
        network.add_edge(0, 2, 1.0)
        network.add_edge(1, 3, 2.0)
        reduced, s, t = supersource_reduction(network, [0, 1], [2, 3])
        result = dinic(reduced, s, t)
        assert result.value == pytest.approx(3.0)

    def test_rejects_overlapping_sets(self):
        network = FlowNetwork(3)
        with pytest.raises(GraphError):
            supersource_reduction(network, [0, 1], [1, 2])

    def test_rejects_empty_sets(self):
        network = FlowNetwork(3)
        with pytest.raises(GraphError):
            supersource_reduction(network, [], [2])
