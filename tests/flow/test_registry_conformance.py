"""Cross-solver conformance through the registry (ISSUE 3, satellite 3).

Every registered *exact* solver — whatever its internals — must produce the
same max-flow value on the same instance, and the SolveStats telemetry each
solve emits must be internally consistent (phase seconds accounting for the
total).  Error wording is unified across every dispatch point.
"""

import io

import numpy as np
import pytest

from repro.errors import SolverError
from repro.flow import (
    SolveStats,
    get_solver,
    random_complete_network,
    random_sparse_network,
    read_dimacs,
    registered_solvers,
    solve_max_flow,
    solver_names,
)

#: Diamond with a cross edge; max flow s->t is exactly 5.
DIMACS_DIAMOND = (
    "c diamond fixture\n"
    "p max 4 5\n"
    "n 1 s\n"
    "n 4 t\n"
    "a 1 2 3.0\n"
    "a 1 3 2.0\n"
    "a 2 3 1.0\n"
    "a 2 4 2.0\n"
    "a 3 4 3.0\n"
)

#: Two arcs in series; the bottleneck (2.5) is the max flow.
DIMACS_BOTTLENECK = (
    "p max 3 2\n"
    "n 1 s\n"
    "n 3 t\n"
    "a 1 2 4.5\n"
    "a 2 3 2.5\n"
)


def exact_names():
    return [spec.name for spec in registered_solvers(kind="exact")]


class TestRegistryContents:
    def test_lists_at_least_six_solvers_with_capabilities(self):
        names = solver_names()
        assert len(names) >= 6
        for spec in registered_solvers():
            caps = spec.capabilities()
            assert caps["name"] == spec.name
            assert caps["kind"] in ("exact", "approx")
            assert isinstance(caps["supports_batch"], bool)
            assert isinstance(caps["recursion_free"], bool)
            assert caps["complexity"]
            assert caps["description"]

    def test_exact_filter_excludes_approx(self):
        assert "approx" not in exact_names()
        assert "approx" in solver_names(kind="approx")


class TestExactSolverAgreement:
    @pytest.mark.parametrize("n,density", [(6, 1.0), (10, 0.4), (12, 0.25)])
    def test_agree_on_random_instances(self, n, density):
        rng = np.random.default_rng(n * 100 + int(density * 10))
        if density >= 1.0:
            network = random_complete_network(n, rng, relative_sigma=0.3)
        else:
            network = random_sparse_network(n, rng, density=density)
        values = {
            name: solve_max_flow(network.copy(), 0, n - 1, algorithm=name).value
            for name in exact_names()
        }
        reference = values["dinic"]
        for name, value in values.items():
            assert value == pytest.approx(reference, rel=1e-9, abs=1e-12), name

    @pytest.mark.parametrize(
        "text,expected",
        [(DIMACS_DIAMOND, 5.0), (DIMACS_BOTTLENECK, 2.5)],
        ids=["diamond", "bottleneck"],
    )
    def test_agree_on_dimacs_fixtures(self, text, expected):
        for name in exact_names():
            network, source, sink = read_dimacs(io.StringIO(text))
            result = solve_max_flow(network, source, sink, algorithm=name)
            assert result.value == pytest.approx(expected, rel=1e-12), name

    def test_compact_claims_verify_for_every_exact_solver(self, rng):
        # The full prover->verifier round: every exact solver's flow must
        # survive path decomposition (cycle cancellation included) and the
        # residual-graph check.
        from repro.ppuf import Ppuf
        from repro.ppuf.verification import PpufProver, PpufVerifier

        ppuf = Ppuf.create(10, 3, rng)
        challenge = ppuf.challenge_space().random(rng)
        prover = PpufProver(ppuf.network_a)
        verifier = PpufVerifier(ppuf.network_a)
        for name in exact_names():
            claim = prover.answer_compact(challenge, algorithm=name)
            assert claim.algorithm == name
            assert verifier.verify_compact(claim), name

    def test_approx_solver_close_to_exact(self):
        rng = np.random.default_rng(7)
        network = random_complete_network(8, rng, relative_sigma=0.3)
        exact = solve_max_flow(network.copy(), 0, 7, algorithm="dinic").value
        approx = solve_max_flow(network.copy(), 0, 7, algorithm="approx").value
        assert approx == pytest.approx(exact, rel=0.05)


class TestBatchedDinicEdgeConformance:
    """ISSUE 8, satellite 4: the edge-array tensor path vs every exact solver.

    The scalar agreement tests above already include ``batched_dinic`` (it
    is a registered exact solver); this class pins the *batched* dispatch —
    one shared CSR topology, a ``(B, E)`` capacity table — against every
    exact solver's scalar answer, on random and DIMACS instances, and
    proves the answers are invariant to how the batch is chunked.
    """

    @pytest.mark.parametrize("n,batch", [(6, 4), (9, 6)])
    def test_edge_path_agrees_with_every_exact_solver(self, n, batch):
        from repro.flow.csr import complete_topology

        rng = np.random.default_rng(n * 31 + batch)
        networks = [
            random_complete_network(n, rng, relative_sigma=0.3)
            for _ in range(batch)
        ]
        topology = complete_topology(n)
        caps = np.ascontiguousarray(
            np.stack(
                [
                    net.capacity[topology.edge_src, topology.edge_dst]
                    for net in networks
                ]
            )
        )
        spec = get_solver("batched_dinic")
        values = spec.solve_tensor_edges(topology, caps, 0, n - 1).values
        for name in exact_names():
            for index, network in enumerate(networks):
                scalar = solve_max_flow(
                    network.copy(), 0, n - 1, algorithm=name
                ).value
                assert values[index] == pytest.approx(
                    scalar, rel=1e-9, abs=1e-12
                ), (name, index)

    @pytest.mark.parametrize(
        "text,expected",
        [(DIMACS_DIAMOND, 5.0), (DIMACS_BOTTLENECK, 2.5)],
        ids=["diamond", "bottleneck"],
    )
    def test_edge_path_agrees_on_dimacs(self, text, expected):
        from repro.flow.csr import topology_from_matrix

        network, source, sink = read_dimacs(io.StringIO(text))
        topology, caps = topology_from_matrix(network.capacity)
        spec = get_solver("batched_dinic")
        result = spec.solve_tensor_edges(topology, caps[None, :], source, sink)
        assert result.values[0] == pytest.approx(expected, rel=1e-12)
        for name in exact_names():
            net, src, snk = read_dimacs(io.StringIO(text))
            scalar = solve_max_flow(net, src, snk, algorithm=name).value
            assert result.values[0] == pytest.approx(scalar, rel=1e-9), name

    def test_edge_path_is_chunk_invariant_through_the_registry(self):
        from repro.flow.csr import complete_topology

        n, batch = 8, 10
        rng = np.random.default_rng(88)
        networks = [
            random_complete_network(n, rng, relative_sigma=0.3)
            for _ in range(batch)
        ]
        topology = complete_topology(n)
        caps = np.ascontiguousarray(
            np.stack(
                [
                    net.capacity[topology.edge_src, topology.edge_dst]
                    for net in networks
                ]
            )
        )
        spec = get_solver("batched_dinic")
        whole = spec.solve_tensor_edges(topology, caps, 0, n - 1)
        split = np.concatenate(
            [
                spec.solve_tensor_edges(topology, caps[lo:hi], 0, n - 1).values
                for lo, hi in ((0, 3), (3, 7), (7, 10))
            ]
        )
        assert np.array_equal(whole.values, split)


class TestSolveStatsConsistency:
    @pytest.mark.parametrize("name", sorted(set(exact_names()) | {"approx"}))
    def test_phase_seconds_account_for_total(self, name):
        rng = np.random.default_rng(3)
        network = random_complete_network(8, rng, relative_sigma=0.3)
        stats = SolveStats()
        solve_max_flow(network, 0, 7, algorithm=name, stats=stats)
        assert stats.algorithm == name
        assert stats.solves == 1
        assert stats.total_seconds >= 0
        # Single solves are charged entirely to the "solve" phase, so the
        # phase sum matches the total up to float noise.
        assert stats.phase_total() == pytest.approx(
            stats.total_seconds, rel=1e-6, abs=1e-9
        )

    def test_stats_accumulate_across_solves(self):
        rng = np.random.default_rng(4)
        network = random_complete_network(6, rng, relative_sigma=0.3)
        stats = SolveStats()
        solve_max_flow(network.copy(), 0, 5, algorithm="dinic", stats=stats)
        solve_max_flow(network.copy(), 0, 5, algorithm="dinic", stats=stats)
        assert stats.solves == 2
        assert stats.operations > 0


class TestUnifiedErrorWording:
    def test_solve_max_flow_unknown_algorithm(self, rng):
        network = random_complete_network(4, rng)
        with pytest.raises(SolverError, match="unknown algorithm 'simplex'"):
            solve_max_flow(network, 0, 3, algorithm="simplex")

    def test_get_solver_lists_registered_names(self):
        with pytest.raises(SolverError) as excinfo:
            get_solver("simplex")
        message = str(excinfo.value)
        assert "expected one of" in message
        for name in solver_names():
            assert name in message

    def test_batch_evaluator_unknown_algorithm(self, rng):
        from repro.ppuf import BatchEvaluator, Ppuf

        ppuf = Ppuf.create(8, 3, rng)
        with pytest.raises(SolverError, match="unknown algorithm 'simplex'"):
            BatchEvaluator(ppuf, algorithm="simplex")

    def test_batch_evaluator_rejects_approx(self, rng):
        from repro.ppuf import BatchEvaluator, Ppuf

        ppuf = Ppuf.create(8, 3, rng)
        with pytest.raises(SolverError, match="exact solver"):
            BatchEvaluator(ppuf, algorithm="approx")

    def test_check_engine_same_wording(self):
        from repro.ppuf.engines import check_engine

        with pytest.raises(SolverError, match="unknown engine 'spice'"):
            check_engine("spice")
