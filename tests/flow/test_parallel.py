"""Shiloach–Vishkin PRAM cost model."""

import pytest

from repro.errors import GraphError
from repro.flow import parallel_blocking_flow, random_complete_network
from repro.flow.parallel import parallel_time_lower_bound, verification_time_bound


class TestParallelBlockingFlow:
    def test_flow_value_matches_sequential(self, rng):
        import networkx as nx

        network = random_complete_network(10, rng, relative_sigma=0.3)
        reference = nx.maximum_flow_value(network.to_networkx(), 0, 9)
        result, cost = parallel_blocking_flow(network, 0, 9, processors=4)
        assert result.value == pytest.approx(reference, rel=1e-9)
        assert cost.processors == 4

    def test_processor_count_capped_at_n(self, rng):
        network = random_complete_network(6, rng)
        _, cost = parallel_blocking_flow(network, 0, 5, processors=1000)
        assert cost.processors == 6

    def test_more_processors_fewer_steps(self, rng):
        network = random_complete_network(10, rng, relative_sigma=0.3)
        _, serial = parallel_blocking_flow(network.copy(), 0, 9, processors=1)
        _, parallel = parallel_blocking_flow(network.copy(), 0, 9, processors=10)
        assert parallel.parallel_steps < serial.parallel_steps

    def test_steps_never_below_floor(self, rng):
        for n in (6, 10, 14):
            network = random_complete_network(n, rng, relative_sigma=0.3)
            _, cost = parallel_blocking_flow(network, 0, n - 1, processors=n)
            assert cost.parallel_steps >= cost.floor_steps / n  # per-phase floor

    def test_invalid_processor_count(self, rng):
        network = random_complete_network(4, rng)
        with pytest.raises(GraphError):
            parallel_blocking_flow(network, 0, 3, processors=0)


class TestAnalyticBounds:
    def test_lower_bound_is_quadratic_with_max_processors(self):
        # With p = n, the bound is n^2 log n: quartic growth ratio ~ 4x+ per
        # doubling.
        t1 = parallel_time_lower_bound(100, 100)
        t2 = parallel_time_lower_bound(200, 200)
        assert t2 / t1 > 4.0

    def test_lower_bound_scales_inverse_p(self):
        assert parallel_time_lower_bound(64, 2) == pytest.approx(
            2 * parallel_time_lower_bound(64, 4)
        )

    def test_verification_much_cheaper_than_simulation(self):
        n, p = 500, 100
        assert verification_time_bound(n, p) < parallel_time_lower_bound(n, p) / n

    def test_bounds_validate_inputs(self):
        with pytest.raises(GraphError):
            parallel_time_lower_bound(1, 4)
        with pytest.raises(GraphError):
            verification_time_bound(10, 0)
