"""Residual-graph construction and the verifier's optimality check."""

import numpy as np
import pytest

from repro.errors import FlowError
from repro.flow import (
    FlowNetwork,
    dinic,
    residual_capacities,
    residual_reachable,
    verify_max_flow,
)


def two_path_network():
    network = FlowNetwork(4)
    network.add_edge(0, 1, 2.0)
    network.add_edge(1, 3, 2.0)
    network.add_edge(0, 2, 1.0)
    network.add_edge(2, 3, 1.0)
    return network


class TestResidualCapacities:
    def test_zero_flow_residual_equals_capacity(self):
        network = two_path_network()
        residual = residual_capacities(network, np.zeros((4, 4)))
        assert np.array_equal(residual, network.capacity)

    def test_forward_flow_creates_reverse_residual(self):
        network = two_path_network()
        flow = np.zeros((4, 4))
        flow[0, 1] = 1.5
        residual = residual_capacities(network, flow)
        assert residual[0, 1] == pytest.approx(0.5)
        assert residual[1, 0] == pytest.approx(1.5)

    def test_negative_roundoff_clipped(self):
        network = two_path_network()
        flow = np.zeros((4, 4))
        flow[0, 1] = 2.0 + 1e-16
        residual = residual_capacities(network, flow)
        assert residual[0, 1] >= 0.0


class TestReachability:
    def test_reachable_set_full_residual(self):
        network = two_path_network()
        residual = residual_capacities(network, np.zeros((4, 4)))
        reachable, visits = residual_reachable(residual, 0)
        assert reachable.all()
        assert visits > 0

    def test_saturated_cut_blocks_sink(self):
        network = two_path_network()
        result = dinic(network.copy(), 0, 3)
        residual = residual_capacities(network, result.flow)
        reachable, _ = residual_reachable(residual, 0)
        assert not reachable[3]

    def test_edge_visit_count_scales_with_frontier(self):
        network = two_path_network()
        residual = residual_capacities(network, np.zeros((4, 4)))
        _, visits = residual_reachable(residual, 0)
        # 4 dequeued vertices x 4 columns each.
        assert visits == 16


class TestVerifyMaxFlow:
    def test_accepts_optimal_flow(self):
        network = two_path_network()
        result = dinic(network.copy(), 0, 3)
        assert verify_max_flow(network, result.flow, [0], [3])

    def test_rejects_submaximal_flow(self):
        network = two_path_network()
        assert not verify_max_flow(network, np.zeros((4, 4)), [0], [3])

    def test_raises_on_infeasible_flow(self):
        network = two_path_network()
        cheat = np.zeros((4, 4))
        cheat[0, 1] = 5.0  # over capacity
        cheat[1, 3] = 5.0
        with pytest.raises(FlowError):
            verify_max_flow(network, cheat, [0], [3])

    def test_raises_on_conservation_cheat(self):
        network = two_path_network()
        cheat = np.zeros((4, 4))
        cheat[0, 1] = 2.0  # vanishes at vertex 1
        with pytest.raises(FlowError):
            verify_max_flow(network, cheat, [0], [3])

    def test_multi_terminal_sets(self):
        network = FlowNetwork(5)
        network.add_edge(0, 2, 1.0)
        network.add_edge(1, 2, 1.0)
        network.add_edge(2, 3, 1.0)
        network.add_edge(2, 4, 1.0)
        flow = np.zeros((5, 5))
        flow[0, 2] = 1.0
        flow[1, 2] = 1.0
        flow[2, 3] = 1.0
        flow[2, 4] = 1.0
        assert verify_max_flow(network, flow, [0, 1], [3, 4])

    def test_partial_flow_on_sets_is_rejected(self):
        network = FlowNetwork(5)
        network.add_edge(0, 2, 1.0)
        network.add_edge(1, 2, 1.0)
        network.add_edge(2, 3, 1.0)
        network.add_edge(2, 4, 1.0)
        flow = np.zeros((5, 5))
        flow[0, 2] = 1.0
        flow[2, 3] = 1.0
        assert not verify_max_flow(network, flow, [0, 1], [3, 4])
