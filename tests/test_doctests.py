"""Doctest runner for modules carrying executable docstring examples."""

import doctest

import repro
import repro.units


def test_units_doctests():
    results = doctest.testmod(repro.units, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_package_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1
