"""End-to-end integration: the full PPUF story in one place.

These tests exercise the complete pipeline the paper describes: fabricate,
challenge, execute (circuit), simulate (max-flow), compare, verify, chain,
attack — asserting the cross-module contracts rather than any single
module's behaviour.
"""

import numpy as np

from repro import NOMINAL_CONDITIONS, PTM32, Ppuf, PpufProver, PpufVerifier
from repro.flow import verify_max_flow
from repro.ppuf.crp import collect_crps
from repro.ppuf.engines import network_current
from repro.ppuf.feedback import run_feedback_chain


class TestExecutionSimulationAgreement:
    """The foundation: execution == simulation to < 1 % (Fig. 6)."""

    def test_both_networks_agree_across_challenges(self, medium_ppuf, rng):
        challenges = medium_ppuf.challenge_space().random_batch(3, rng)
        for challenge in challenges:
            for network in (medium_ppuf.network_a, medium_ppuf.network_b):
                simulated = network_current(network, challenge, "maxflow")
                executed = network_current(network, challenge, "circuit")
                assert abs(simulated - executed) / executed < 0.01

    def test_circuit_source_current_is_maxflow_of_operating_capacities(
        self, small_ppuf, rng
    ):
        """The steady-state *flow pattern* of the circuit is itself a valid,
        maximal flow for the instance built from its own edge currents."""
        challenge = small_ppuf.challenge_space().random(rng)
        network = small_ppuf.network_a
        edge_bits = network.crossbar.bits_for_edges(challenge.bits)
        solution = network.dc_solution(edge_bits, challenge.source, challenge.sink)
        instance = network.flow_network(edge_bits)
        flow = np.zeros((small_ppuf.n, small_ppuf.n))
        src, dst = network.crossbar.edge_endpoints()
        flow[src, dst] = solution.edge_currents
        # The circuit's flow obeys conservation exactly (KCL); capacities may
        # be exceeded by the < 1 % SCE drift, so verify against a slightly
        # inflated instance.
        instance.capacity *= 1.02
        assert verify_max_flow(
            instance, flow, [challenge.source], [challenge.sink], rtol=1e-4
        )


class TestAuthenticationProtocol:
    """Prover/verifier round trip with the feedback-loop amplification."""

    def test_full_protocol_run(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        claim = prover.answer(challenge)
        accepted, verify_seconds = verifier.timed_verify(claim)
        assert accepted
        assert verify_seconds < 5.0

    def test_feedback_chain_then_verify_each_round(self, small_ppuf, rng):
        initial = small_ppuf.challenge_space().random(rng)
        chain = run_feedback_chain(small_ppuf, initial, k=4)
        assert chain.verify_derivations(small_ppuf.n)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        for crp in chain.rounds:
            assert verifier.verify(prover.answer(crp.challenge))


class TestPublicModelProperty:
    """What makes it a *public* PUF: the model predicts the device."""

    def test_simulated_crps_match_device_execution(self, small_ppuf, rng):
        challenges = small_ppuf.challenge_space().random_batch(4, rng)
        simulated = collect_crps(small_ppuf, challenges, engine="maxflow")
        matches = 0
        for crp in simulated:
            executed = small_ppuf.response(crp.challenge, engine="circuit")
            matches += executed == crp.response
        assert matches >= 3

    def test_different_instances_same_model_structure(self, rng):
        """Two PPUFs share topology and nominal model but differ in CRPs."""
        a = Ppuf.create(10, 3, rng)
        b = Ppuf.create(10, 3, rng)
        challenges = a.challenge_space().random_batch(25, rng)
        responses_a = a.response_bits(challenges)
        responses_b = b.response_bits(challenges)
        # Different silicon -> different response words (overwhelmingly).
        assert np.any(responses_a != responses_b)


class TestEnvironmentalRobustness:
    def test_corner_grid_hd_small(self, medium_ppuf, rng):
        from repro.analysis.environment import default_corners

        challenges = medium_ppuf.challenge_space().random_batch(12, rng)
        nominal = medium_ppuf.response_bits(challenges)
        for corner in default_corners(include_cross=False):
            stressed = corner.apply(medium_ppuf).response_bits(challenges)
            assert np.mean(stressed != nominal) <= 0.35, corner.label


class TestScalingContracts:
    def test_currents_scale_with_node_count(self, rng):
        small = Ppuf.create(8, 2, rng)
        large = Ppuf.create(20, 4, rng)
        c_small = small.currents(small.challenge_space().random(rng))[0]
        c_large = large.currents(large.challenge_space().random(rng))[0]
        assert c_large > c_small

    def test_default_technology_roundtrip(self):
        assert PTM32.vt0 > 0
        assert NOMINAL_CONDITIONS.v_supply == 2.0
