"""Arbiter PUF baseline."""

import numpy as np
import pytest

from repro.attacks.dataset import build_attack_dataset
from repro.attacks.harness import best_prediction_error
from repro.baselines import ArbiterPuf
from repro.errors import ChallengeError


class TestModel:
    def test_responses_binary(self, rng):
        puf = ArbiterPuf(16, rng)
        challenges = rng.integers(0, 2, size=(50, 16), dtype=np.uint8)
        responses = puf.respond(challenges)
        assert set(responses.tolist()) <= {0, 1}

    def test_deterministic(self, rng):
        puf = ArbiterPuf(16, rng)
        challenge = rng.integers(0, 2, size=(1, 16), dtype=np.uint8)
        assert puf.respond(challenge)[0] == puf.respond(challenge)[0]

    def test_different_instances_differ(self):
        rng = np.random.default_rng(0)
        puf_a = ArbiterPuf(32, rng)
        puf_b = ArbiterPuf(32, rng)
        challenges = rng.integers(0, 2, size=(200, 32), dtype=np.uint8)
        assert np.mean(puf_a.respond(challenges) != puf_b.respond(challenges)) > 0.2

    def test_roughly_uniform(self, rng):
        puf = ArbiterPuf(24, rng)
        challenges = rng.integers(0, 2, size=(1000, 24), dtype=np.uint8)
        assert 0.25 < puf.respond(challenges).mean() < 0.75

    def test_challenge_validation(self, rng):
        puf = ArbiterPuf(8, rng)
        with pytest.raises(ChallengeError):
            puf.respond(np.zeros((2, 9), dtype=np.uint8))
        with pytest.raises(ChallengeError):
            puf.respond(np.full((2, 8), 3, dtype=np.uint8))

    def test_constructor_validation(self, rng):
        with pytest.raises(ChallengeError):
            ArbiterPuf(0, rng)
        with pytest.raises(ChallengeError):
            ArbiterPuf(8, rng, sigma=0.0)


class TestParityFeatures:
    def test_features_are_pm1(self, rng):
        challenges = rng.integers(0, 2, size=(10, 6), dtype=np.uint8)
        features = ArbiterPuf.parity_features(challenges)
        assert set(np.unique(features)) <= {-1.0, 1.0}

    def test_suffix_product_structure(self):
        challenge = np.array([[1, 0, 1]])
        features = ArbiterPuf.parity_features(challenge)
        signs = 1 - 2 * challenge[0]
        expected = [
            signs[0] * signs[1] * signs[2],
            signs[1] * signs[2],
            signs[2],
        ]
        assert features[0].tolist() == expected

    def test_linear_in_parity_space(self, rng):
        """The delay difference is exactly linear in the parity features."""
        puf = ArbiterPuf(12, rng)
        challenges = rng.integers(0, 2, size=(100, 12), dtype=np.uint8)
        features = ArbiterPuf.parity_features(challenges)
        deltas = puf.delay_difference(challenges)
        residual = features @ puf._weights + puf._bias - deltas
        assert np.max(np.abs(residual)) < 1e-12


class TestLearnability:
    def test_arbiter_falls_to_model_building(self, rng):
        """The Fig. 10 contrast: the arbiter PUF is quickly learned."""
        puf = ArbiterPuf(16, rng)
        dataset = build_attack_dataset(
            puf.respond, 16, 1500, 500, rng, feature_map=ArbiterPuf.parity_features
        )
        errors = best_prediction_error(dataset)
        assert errors["best"] < 0.08
