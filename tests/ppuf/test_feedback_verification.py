"""Feedback-loop chaining and the residual-graph verification protocol."""

import numpy as np
import pytest

from repro.errors import ChallengeError, VerificationError
from repro.ppuf.feedback import FeedbackChain, derive_next_challenge, run_feedback_chain
from repro.ppuf.verification import FlowClaim, PpufProver, PpufVerifier


class TestDerivation:
    def test_deterministic(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        a = derive_next_challenge(challenge, 1, small_ppuf.n)
        b = derive_next_challenge(challenge, 1, small_ppuf.n)
        assert a.key() == b.key()

    def test_response_bit_changes_derivation(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        zero = derive_next_challenge(challenge, 0, small_ppuf.n)
        one = derive_next_challenge(challenge, 1, small_ppuf.n)
        assert zero.key() != one.key()

    def test_invalid_response_rejected(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        with pytest.raises(ChallengeError):
            derive_next_challenge(challenge, 2, small_ppuf.n)


class TestFeedbackChain:
    def test_chain_length_and_validity(self, small_ppuf, rng):
        initial = small_ppuf.challenge_space().random(rng)
        chain = run_feedback_chain(small_ppuf, initial, k=5)
        assert chain.k == 5
        assert chain.final_response in (0, 1)
        assert chain.verify_derivations(small_ppuf.n)

    def test_tampered_chain_detected(self, small_ppuf, rng):
        initial = small_ppuf.challenge_space().random(rng)
        chain = run_feedback_chain(small_ppuf, initial, k=4)
        tampered = FeedbackChain(rounds=list(chain.rounds))
        tampered.rounds[2] = tampered.rounds[1]
        assert not tampered.verify_derivations(small_ppuf.n)

    def test_chain_is_reproducible(self, small_ppuf, rng):
        initial = small_ppuf.challenge_space().random(rng)
        first = run_feedback_chain(small_ppuf, initial, k=3)
        second = run_feedback_chain(small_ppuf, initial, k=3)
        assert [r.response for r in first.rounds] == [r.response for r in second.rounds]

    def test_empty_chain_rejected(self, small_ppuf, rng):
        initial = small_ppuf.challenge_space().random(rng)
        with pytest.raises(ChallengeError):
            run_feedback_chain(small_ppuf, initial, k=0)
        with pytest.raises(ChallengeError):
            FeedbackChain().final_response


class TestVerificationProtocol:
    def test_honest_prover_accepted(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        claim = prover.answer(challenge)
        assert verifier.verify(claim)

    def test_submaximal_claim_rejected(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        claim = prover.answer(challenge)
        lazy = FlowClaim(
            challenge=challenge,
            flow=np.zeros_like(claim.flow),
            value=0.0,
            elapsed_seconds=0.0,
        )
        assert not verifier.verify(lazy)

    def test_infeasible_claim_raises(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        verifier = PpufVerifier(small_ppuf.network_a)
        cheat_flow = np.full((small_ppuf.n, small_ppuf.n), 1.0)
        np.fill_diagonal(cheat_flow, 0.0)
        cheat = FlowClaim(
            challenge=challenge, flow=cheat_flow, value=9.0, elapsed_seconds=0.0
        )
        with pytest.raises(VerificationError):
            verifier.verify(cheat)

    def test_value_mismatch_rejected(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        claim = prover.answer(challenge)
        inflated = FlowClaim(
            challenge=challenge,
            flow=claim.flow,
            value=claim.value * 2.0,
            elapsed_seconds=claim.elapsed_seconds,
        )
        assert not verifier.verify(inflated)

    def test_value_tolerance_is_package_default_and_tunable(
        self, small_ppuf, rng
    ):
        """The value check uses DEFAULT_RTOL (1e-9), not a private 1e-6."""
        challenge = small_ppuf.challenge_space().random(rng)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        claim = prover.answer(challenge)
        # Off by 1e-7 relative: the old hard-coded 1e-6 tolerance accepted
        # this; the unified default must reject it, and a caller asking for
        # the looser tolerance explicitly must get it back.
        skewed = FlowClaim(
            challenge=challenge,
            flow=claim.flow,
            value=claim.value * (1.0 + 1e-7),
            elapsed_seconds=claim.elapsed_seconds,
        )
        assert verifier.verify(claim)
        assert not verifier.verify(skewed)
        assert verifier.verify(skewed, rtol=1e-6)

    def test_wrong_shape_rejected(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        verifier = PpufVerifier(small_ppuf.network_a)
        bad = FlowClaim(
            challenge=challenge, flow=np.zeros((3, 3)), value=0.0, elapsed_seconds=0.0
        )
        with pytest.raises(VerificationError):
            verifier.verify(bad)

    def test_wrong_network_rejects_claim(self, small_ppuf, rng):
        """A prover for network A cannot answer for network B: the public
        models differ through process variation."""
        challenge = small_ppuf.challenge_space().random(rng)
        claim = PpufProver(small_ppuf.network_a).answer(challenge)
        verifier_b = PpufVerifier(small_ppuf.network_b)
        try:
            accepted = verifier_b.verify(claim)
        except VerificationError:
            accepted = False
        assert not accepted

    def test_compact_claim_roundtrip(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        compact = prover.answer_compact(challenge)
        assert verifier.verify_compact(compact)
        # The decomposition carries the full value in O(n)-ish paths.
        assert sum(p.value for p in compact.paths) == pytest.approx(
            compact.value, rel=1e-9
        )
        assert len(compact.paths) <= small_ppuf.crossbar.num_edges

    def test_compact_claim_tampered_paths_rejected(self, small_ppuf, rng):
        from repro.flow.decomposition import PathFlow
        from repro.ppuf.verification import CompactClaim

        challenge = small_ppuf.challenge_space().random(rng)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        compact = prover.answer_compact(challenge)
        # Inflate one path's value: capacity violation or value mismatch.
        tampered_paths = list(compact.paths)
        first = tampered_paths[0]
        tampered_paths[0] = PathFlow(vertices=first.vertices, value=first.value * 3)
        tampered = CompactClaim(
            challenge=challenge,
            paths=tampered_paths,
            value=compact.value,
            elapsed_seconds=0.0,
        )
        try:
            accepted = verifier.verify_compact(tampered)
        except VerificationError:
            accepted = False
        assert not accepted

    def test_compact_claim_out_of_range_path_rejected(self, small_ppuf, rng):
        from repro.flow.decomposition import PathFlow
        from repro.ppuf.verification import CompactClaim

        challenge = small_ppuf.challenge_space().random(rng)
        verifier = PpufVerifier(small_ppuf.network_a)
        bad = CompactClaim(
            challenge=challenge,
            paths=[PathFlow(vertices=(0, 99), value=1.0)],
            value=1.0,
            elapsed_seconds=0.0,
        )
        with pytest.raises(VerificationError):
            verifier.verify_compact(bad)

    def test_timed_verify_reports_duration(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        prover = PpufProver(small_ppuf.network_a)
        verifier = PpufVerifier(small_ppuf.network_a)
        accepted, seconds = verifier.timed_verify(prover.answer(challenge))
        assert accepted
        assert seconds >= 0.0
