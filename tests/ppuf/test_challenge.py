"""Challenge encoding, sampling and the input-word form."""

import numpy as np
import pytest

from repro.errors import ChallengeError
from repro.ppuf.challenge import Challenge, ChallengeSpace
from repro.ppuf.crossbar import Crossbar


def make_challenge(source=0, sink=3, bits=(1, 0, 1, 0)):
    return Challenge(source=source, sink=sink, bits=np.asarray(bits, dtype=np.uint8))


class TestChallenge:
    def test_validation(self):
        with pytest.raises(ChallengeError):
            make_challenge(source=2, sink=2)
        with pytest.raises(ChallengeError):
            make_challenge(bits=(0, 2, 1, 0))
        with pytest.raises(ChallengeError):
            Challenge(source=-1, sink=2, bits=np.zeros(4, dtype=np.uint8))

    def test_flip_returns_new_challenge(self):
        challenge = make_challenge()
        flipped = challenge.flip([0, 2])
        assert np.array_equal(flipped.bits, [0, 0, 0, 0])
        assert np.array_equal(challenge.bits, [1, 0, 1, 0])

    def test_flip_out_of_range(self):
        with pytest.raises(ChallengeError):
            make_challenge().flip([7])

    def test_hamming_distance(self):
        a = make_challenge(bits=(1, 0, 1, 0))
        b = make_challenge(bits=(1, 1, 0, 0))
        assert a.hamming_distance(b) == 2
        assert a.hamming_distance(a) == 0

    def test_hamming_distance_length_mismatch(self):
        a = make_challenge()
        b = Challenge(source=0, sink=1, bits=np.zeros(9, dtype=np.uint8))
        with pytest.raises(ChallengeError):
            a.hamming_distance(b)

    def test_feature_vector_is_pm1(self):
        features = make_challenge().feature_vector()
        assert set(features.tolist()) <= {-1.0, 1.0}

    def test_key_distinguishes_terminals(self):
        assert make_challenge(source=0).key() != make_challenge(source=1).key()


class TestInputWord:
    def test_word_layout_length(self):
        challenge = make_challenge()
        word = challenge.input_word(10)
        width = Challenge.terminal_field_width(10)
        assert word.size == 2 * width + 4

    def test_roundtrip(self):
        challenge = make_challenge(source=5, sink=2, bits=(1, 1, 0, 0))
        word = challenge.input_word(8)
        decoded = Challenge.from_input_word(word, 8)
        assert decoded.source == 5
        assert decoded.sink == 2
        assert np.array_equal(decoded.bits, challenge.bits)

    def test_decode_wraps_overflow(self):
        width = Challenge.terminal_field_width(5)  # 3 bits, values up to 7
        word = np.zeros(2 * width + 4, dtype=np.uint8)
        word[:width] = [1, 1, 1]  # source field = 7 -> 7 % 5 = 2
        decoded = Challenge.from_input_word(word, 5)
        assert decoded.source == 2

    def test_decode_resolves_collision(self):
        width = Challenge.terminal_field_width(4)
        word = np.zeros(2 * width + 4, dtype=np.uint8)
        # Both fields decode to 0: the sink must advance.
        decoded = Challenge.from_input_word(word, 4)
        assert decoded.source == 0
        assert decoded.sink == 1

    def test_every_flipped_word_decodes(self, rng):
        challenge = make_challenge(source=3, sink=7, bits=np.zeros(9, dtype=np.uint8))
        word = challenge.input_word(9)
        for position in range(word.size):
            mutated = word.copy()
            mutated[position] ^= 1
            decoded = Challenge.from_input_word(mutated, 9)
            assert 0 <= decoded.source < 9
            assert 0 <= decoded.sink < 9
            assert decoded.source != decoded.sink


class TestChallengeSpace:
    def _space(self, n=8, l=3):
        return ChallengeSpace(Crossbar(n=n, l=l))

    def test_type_a_size(self):
        assert self._space(8).type_a_size == 56

    def test_random_challenge_valid(self, rng):
        space = self._space()
        for _ in range(20):
            challenge = space.random(rng)
            assert challenge.source != challenge.sink
            assert challenge.num_bits == 9

    def test_pinned_terminals(self, rng):
        challenge = self._space().random(rng, source=2, sink=5)
        assert challenge.source == 2
        assert challenge.sink == 5

    def test_random_batch_unique(self, rng):
        batch = self._space().random_batch(30, rng, unique=True)
        keys = {challenge.key() for challenge in batch}
        assert len(keys) == 30

    def test_random_batch_negative_count(self, rng):
        with pytest.raises(ChallengeError):
            self._space().random_batch(-1, rng)

    def test_min_distance_codebook(self, rng):
        space = self._space(n=8, l=3)
        codebook = space.min_distance_codebook(8, 3, rng)
        assert len(codebook) == 8
        for i, a in enumerate(codebook):
            for b in codebook[i + 1:]:
                assert a.hamming_distance(b) >= 3

    def test_codebook_impossible_distance(self, rng):
        space = self._space(n=8, l=3)
        with pytest.raises(ChallengeError):
            space.min_distance_codebook(1000, 9, rng, max_attempts=500)

    def test_codebook_distance_validation(self, rng):
        space = self._space()
        with pytest.raises(ChallengeError):
            space.min_distance_codebook(4, 0, rng)
        with pytest.raises(ChallengeError):
            space.min_distance_codebook(4, 10, rng)

    def test_greedy_codebook_reaches_gv_bound(self, rng):
        """Section 4.2's counting is constructive: the greedy codebook
        reaches the Gilbert–Varshamov-style lower bound for small codes."""
        from repro.analysis.codes import codebook_size_lower_bound

        space = self._space(n=9, l=3)  # 9-bit control words
        for distance in (2, 3):
            guaranteed = int(codebook_size_lower_bound(9, distance))
            codebook = space.min_distance_codebook(
                guaranteed, distance, rng, max_attempts=100_000
            )
            assert len(codebook) == guaranteed
