"""Property-based tests over PPUF encodings and containers (hypothesis)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ppuf.challenge import Challenge
from repro.ppuf.crp import CRP, CRPDataset
from repro.ppuf.crossbar import Crossbar

SETTINGS = dict(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def challenges(draw):
    n = draw(st.integers(min_value=3, max_value=40))
    source = draw(st.integers(min_value=0, max_value=n - 1))
    sink = draw(st.integers(min_value=0, max_value=n - 2))
    if sink >= source:
        sink += 1
    bits = draw(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64)
    )
    return n, Challenge(source=source, sink=sink, bits=np.asarray(bits, dtype=np.uint8))


@given(challenges())
@settings(**SETTINGS)
def test_input_word_roundtrip(item):
    n, challenge = item
    decoded = Challenge.from_input_word(challenge.input_word(n), n)
    assert decoded.source == challenge.source
    assert decoded.sink == challenge.sink
    assert np.array_equal(decoded.bits, challenge.bits)


@given(challenges(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(**SETTINGS)
def test_any_mutated_word_decodes_to_valid_challenge(item, seed):
    n, challenge = item
    rng = np.random.default_rng(seed)
    word = challenge.input_word(n)
    flips = rng.integers(0, 2, size=word.size).astype(np.uint8)
    decoded = Challenge.from_input_word(word ^ flips, n)
    assert 0 <= decoded.source < n
    assert 0 <= decoded.sink < n
    assert decoded.source != decoded.sink
    assert decoded.num_bits == challenge.num_bits


@given(challenges(), st.integers(min_value=0, max_value=1))
@settings(**SETTINGS)
def test_crp_json_roundtrip(item, response):
    _, challenge = item
    dataset = CRPDataset([CRP(challenge, response)])
    restored = CRPDataset.from_json(dataset.to_json())
    assert restored.crps[0].challenge.key() == challenge.key()
    assert restored.crps[0].response == response


@given(challenges())
@settings(**SETTINGS)
def test_double_flip_is_identity(item):
    _, challenge = item
    positions = np.arange(challenge.num_bits)
    assert np.array_equal(challenge.flip(positions).flip(positions).bits, challenge.bits)


@given(st.integers(min_value=2, max_value=30), st.integers(min_value=1, max_value=30))
@settings(**SETTINGS)
def test_crossbar_edge_cells_partition(n, l):
    """Every edge belongs to exactly one in-range cell; cells tile the bar
    grid consistently with the bits_for_edges expansion."""
    if l > n:
        l = n
    crossbar = Crossbar(n=n, l=l)
    cells = crossbar.edge_cells()
    assert cells.shape == (crossbar.num_edges,)
    assert cells.min() >= 0
    assert cells.max() < l * l
    bits = np.zeros(l * l, dtype=np.uint8)
    for cell in range(l * l):
        bits[:] = 0
        bits[cell] = 1
        expanded = crossbar.bits_for_edges(bits)
        assert np.array_equal(expanded == 1, cells == cell)
