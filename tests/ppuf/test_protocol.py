"""Time-bounded authentication sessions."""

import pytest

from repro.ppuf import (
    AuthenticationSession,
    PpufProver,
    PpufVerifier,
)
from repro.ppuf.esg import ESGModel, PowerLawFit


@pytest.fixture
def session(small_ppuf):
    return AuthenticationSession(verifier=PpufVerifier(small_ppuf.network_a))


@pytest.fixture
def esg_model():
    # A simulation law slow enough that a simulator misses the
    # microsecond-scale deadline even at the 10-node test size.
    return ESGModel(
        simulation=PowerLawFit(coefficient=1e-6, exponent=3.0),
        execution=PowerLawFit(coefficient=1e-10, exponent=1.0),
    )


class TestHonestProver:
    def test_device_holder_is_accepted(self, session, small_ppuf, rng):
        result = session.run(PpufProver(small_ppuf.network_a), rng, rounds=3)
        assert result.accepted
        assert len(result.rounds) == 3
        assert result.rejected_round is None

    def test_every_round_within_deadline(self, session, small_ppuf, rng):
        result = session.run(PpufProver(small_ppuf.network_a), rng, rounds=2)
        for record in result.rounds:
            assert record.within_deadline
            assert record.prover_model_seconds <= record.deadline_seconds

    def test_deadline_scales_with_device_delay(self, small_ppuf):
        tight = AuthenticationSession(
            verifier=PpufVerifier(small_ppuf.network_a), deadline_slack=10.0
        )
        loose = AuthenticationSession(
            verifier=PpufVerifier(small_ppuf.network_a), deadline_slack=1000.0
        )
        assert loose.deadline() == pytest.approx(100 * tight.deadline())


class TestImpostors:
    def test_wrong_device_is_rejected(self, session, small_ppuf, rng):
        """A prover holding the *other* network fails verification."""
        impostor = PpufProver(small_ppuf.network_b)
        result = session.run(impostor, rng, rounds=4)
        assert not result.accepted
        assert result.rejected_round is not None

    def test_simulator_misses_the_deadline(self, session, small_ppuf, esg_model, rng):
        """An attacker with the public model answers correctly but too late."""
        honest_answers = PpufProver(small_ppuf.network_a)
        result = session.run_against_simulator(honest_answers, esg_model, rng, rounds=2)
        assert not result.accepted
        first = result.rounds[0]
        assert first.claim_correct  # the simulation IS the public model
        assert not first.within_deadline

    def test_session_stops_at_first_rejection(self, session, small_ppuf, rng):
        impostor = PpufProver(small_ppuf.network_b)
        result = session.run(impostor, rng, rounds=10)
        assert len(result.rounds) == result.rejected_round + 1

    def test_empty_session_is_not_accepted(self):
        from repro.ppuf.protocol import SessionResult

        assert not SessionResult().accepted


class TestTranscripts:
    def test_verifier_seconds_measures_the_verify_call(self, session, small_ppuf, rng):
        """The timed region wraps ``verify``; transcripts show real time."""
        result = session.run(PpufProver(small_ppuf.network_a), rng, rounds=3)
        for record in result.rounds:
            assert record.verifier_seconds > 0.0

    def test_rejected_round_is_first_failing_round(self, session, small_ppuf, rng):
        impostor = PpufProver(small_ppuf.network_b)
        result = session.run(impostor, rng, rounds=6)
        index = result.rejected_round
        assert index is not None
        assert not result.rounds[index].accepted
        assert all(record.accepted for record in result.rounds[:index])

    def test_simulator_rejected_at_secure_size(self, medium_ppuf, rng):
        """At a secure size the fitted simulation law blows every deadline."""
        session = AuthenticationSession(verifier=PpufVerifier(medium_ppuf.network_a))
        esg = ESGModel(
            simulation=PowerLawFit(coefficient=1e-6, exponent=3.0),
            execution=PowerLawFit(coefficient=1e-10, exponent=1.0),
        )
        n = medium_ppuf.n
        assert float(esg.simulation_time(n)) > session.deadline()
        result = session.run_against_simulator(
            PpufProver(medium_ppuf.network_a), esg, rng, rounds=3
        )
        assert not result.accepted
        assert result.rejected_round == 0
        record = result.rounds[0]
        assert record.claim_correct and not record.within_deadline
        assert record.prover_model_seconds == pytest.approx(
            float(esg.simulation_time(n))
        )


class TestCustomDelayModel:
    def test_custom_device_delay_model_used(self, small_ppuf):
        session = AuthenticationSession(
            verifier=PpufVerifier(small_ppuf.network_a),
            deadline_slack=2.0,
            device_delay_model=lambda n: 1e-3,
        )
        assert session.deadline() == pytest.approx(2e-3)
