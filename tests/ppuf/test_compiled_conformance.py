"""Compiled-vs-legacy conformance: the artifact IS the device.

A :class:`~repro.ppuf.compiled.CompiledDevice` must answer bit-for-bit
identically to the live :class:`~repro.ppuf.device.Ppuf` it was compiled
from — for both engines, across device sizes, and through every transport
(inline, pickled pool workers, shared-memory pool workers).  These tests
pin that equivalence; CI runs this module as a dedicated step.
"""

import numpy as np
import pytest

from repro.ppuf import Ppuf
from repro.ppuf.batch import BatchEvaluator
from repro.ppuf.verification import PpufProver, PpufVerifier

#: (n, l, challenge count) per size; counts sum past the 200-CRP floor.
SIZES = [(10, 3, 100), (16, 4, 104)]


@pytest.fixture(scope="module")
def devices():
    return {
        (n, l): Ppuf.create(n, l, np.random.default_rng(7000 + n))
        for n, l, _ in SIZES
    }


@pytest.fixture(scope="module")
def circuit_ppuf():
    """Small device for the circuit engine (DC solves are the slow path)."""
    return Ppuf.create(8, 2, np.random.default_rng(7100))


def challenges_for(ppuf, count, seed):
    return ppuf.challenge_space().random_batch(count, np.random.default_rng(seed))


class TestMaxflowConformance:
    @pytest.mark.parametrize("n,l,count", SIZES)
    def test_response_bits_identical(self, devices, n, l, count):
        ppuf = devices[(n, l)]
        compiled = ppuf.compile(include_circuit=False)
        challenges = challenges_for(ppuf, count, seed=n)
        legacy = ppuf.response_bits(challenges)
        assert np.array_equal(compiled.response_bits(challenges), legacy)

    @pytest.mark.parametrize("n,l,count", SIZES)
    def test_currents_exactly_equal(self, devices, n, l, count):
        # Not just the sign (the response bit): the raw source currents of
        # both networks must match to the last ulp — same arrays, same solve.
        ppuf = devices[(n, l)]
        compiled = ppuf.compile(include_circuit=False)
        for challenge in challenges_for(ppuf, 10, seed=1000 + n):
            assert compiled.currents(challenge) == ppuf.currents(challenge)

    @pytest.mark.parametrize("n,l,count", SIZES)
    def test_batched_pipeline_identical(self, devices, n, l, count):
        ppuf = devices[(n, l)]
        compiled = ppuf.compile(include_circuit=False)
        challenges = challenges_for(ppuf, count, seed=2000 + n)
        legacy_bits, _ = BatchEvaluator(ppuf).evaluate(challenges)
        compiled_bits, _ = BatchEvaluator(compiled).evaluate(challenges)
        assert np.array_equal(compiled_bits, legacy_bits)


class TestCircuitConformance:
    def test_response_bits_identical(self, circuit_ppuf):
        compiled = circuit_ppuf.compile()
        challenges = challenges_for(circuit_ppuf, 24, seed=42)
        legacy = circuit_ppuf.response_bits(challenges, engine="circuit")
        got = compiled.response_bits(challenges, engine="circuit")
        assert np.array_equal(got, legacy)

    def test_dc_currents_exactly_equal(self, circuit_ppuf):
        compiled = circuit_ppuf.compile()
        for challenge in challenges_for(circuit_ppuf, 6, seed=43):
            assert compiled.currents(challenge, engine="circuit") == (
                circuit_ppuf.currents(challenge, engine="circuit")
            )


class TestWorkerTransportConformance:
    """Pool fan-out must be transport-invariant: shm == pickle == inline."""

    def test_shm_and_pickle_workers_match_inline(self, devices):
        ppuf = devices[(10, 3)]
        compiled = ppuf.compile(include_circuit=False)
        challenges = challenges_for(ppuf, 64, seed=77)
        inline_bits, _ = BatchEvaluator(ppuf).evaluate(challenges)
        shm_bits, shm_report = BatchEvaluator(
            compiled, workers=2, chunk_size=16
        ).evaluate(challenges)
        pickle_bits, _ = BatchEvaluator(
            compiled, workers=2, chunk_size=16, share_memory=False
        ).evaluate(challenges)
        assert np.array_equal(shm_bits, inline_bits)
        assert np.array_equal(pickle_bits, inline_bits)
        assert shm_report.workers == 2

    def test_live_device_workers_compile_transparently(self, devices):
        # Handing a plain Ppuf to a multi-worker evaluator compiles it
        # behind the scenes; the bits must not notice.
        ppuf = devices[(10, 3)]
        challenges = challenges_for(ppuf, 64, seed=78)
        inline_bits, _ = BatchEvaluator(ppuf).evaluate(challenges)
        pooled_bits, _ = BatchEvaluator(
            ppuf, workers=2, chunk_size=16
        ).evaluate(challenges)
        assert np.array_equal(pooled_bits, inline_bits)


class TestVerificationConformance:
    def test_compiled_prover_claim_verifies_against_legacy(self, devices):
        # A prover running off the artifact and a verifier running off the
        # rebuilt device must agree — the service's cross-check in miniature.
        ppuf = devices[(10, 3)]
        compiled = ppuf.compile(include_circuit=False)
        for challenge in challenges_for(ppuf, 8, seed=99):
            claim = PpufProver(compiled.network_a).answer_compact(challenge)
            assert PpufVerifier(ppuf.network_a).verify_compact(claim)

    def test_legacy_prover_claim_verifies_against_compiled(self, devices):
        ppuf = devices[(10, 3)]
        compiled = ppuf.compile(include_circuit=False)
        for challenge in challenges_for(ppuf, 8, seed=100):
            claim = PpufProver(ppuf.network_b).answer_compact(challenge)
            assert PpufVerifier(compiled.network_b).verify_compact(claim)
