"""CompiledDevice unit contract: immutability, transports, formats.

Covers what the conformance suite does not: pickle payload weights (the
lazy caches must never ride along), shared-memory mapping (workers map the
tables, they do not copy them), the versioned-format error contract and
the npz round trip.
"""

import json
import pickle

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ppuf import CRPDataset, Ppuf
from repro.ppuf.compiled import (
    CompiledDevice,
    attach_compiled,
    share_compiled,
)
from repro.ppuf.formats import FORMAT_VERSION
from repro.ppuf.io import (
    load_compiled,
    load_crps,
    load_ppuf,
    ppuf_from_dict,
    ppuf_to_dict,
    save_compiled,
)


@pytest.fixture(scope="module")
def tiny_ppuf():
    return Ppuf.create(6, 2, np.random.default_rng(51))


@pytest.fixture(scope="module")
def compiled(tiny_ppuf):
    return tiny_ppuf.compile()


@pytest.fixture(scope="module")
def capacity_only(tiny_ppuf):
    return tiny_ppuf.compile(include_circuit=False)


def challenges_for(ppuf, count, seed=9):
    return ppuf.challenge_space().random_batch(count, np.random.default_rng(seed))


class TestArtifactInvariants:
    def test_arrays_are_frozen(self, compiled):
        for name in ("cap0", "cap1", "edge_src", "edge_dst", "v_grid"):
            with pytest.raises(ValueError):
                getattr(compiled, name)[0] = 0

    def test_device_id_is_content_derived(self, tiny_ppuf, compiled):
        from repro.service.registry import device_id_for

        assert compiled.device_id == device_id_for(ppuf_to_dict(tiny_ppuf))

    def test_capacity_only_circuit_engine_raises(self, capacity_only, tiny_ppuf):
        challenge = challenges_for(tiny_ppuf, 1)[0]
        assert not capacity_only.has_circuit_tables
        with pytest.raises(ReproError, match="include_circuit=False"):
            capacity_only.response(challenge, engine="circuit")

    def test_partial_circuit_arrays_rejected(self, capacity_only):
        with pytest.raises(ReproError, match="all five"):
            CompiledDevice(
                n=capacity_only.n,
                l=capacity_only.l,
                cap0=capacity_only.cap0,
                cap1=capacity_only.cap1,
                v_grid=np.linspace(0.0, 1.0, 4),
            )

    def test_missing_array_entry_raises(self, compiled):
        arrays = compiled.to_arrays()
        del arrays["cap1"]
        with pytest.raises(ReproError, match="missing entry 'cap1'"):
            CompiledDevice.from_arrays(compiled.header(), arrays)


class TestPicklePayloads:
    def test_network_pickle_drops_lazy_caches(self, tiny_ppuf):
        # Warm every lazy cache (capacities and I-V tables), then check the
        # wire weight: __getstate__ must drop them all, so a warmed network
        # pickles as small as a cold one.
        tiny_ppuf.network_a.compile(include_circuit=True)
        payload = pickle.dumps(tiny_ppuf.network_a)
        assert len(payload) < 100_000
        clone = pickle.loads(payload)
        challenge = challenges_for(tiny_ppuf, 1)[0]
        edge_bits = tiny_ppuf.crossbar.bits_for_edges(challenge.bits)
        assert np.array_equal(
            clone.capacities(edge_bits), tiny_ppuf.network_a.capacities(edge_bits)
        )

    def test_capacity_artifact_pickles_in_kilobytes(self, capacity_only):
        # Index arrays are functions of (n, l); they must not ship.
        assert len(pickle.dumps(capacity_only)) < 20_000

    def test_artifact_pickle_roundtrip_is_bit_identical(
        self, tiny_ppuf, capacity_only
    ):
        clone = pickle.loads(pickle.dumps(capacity_only))
        challenges = challenges_for(tiny_ppuf, 16)
        assert np.array_equal(
            clone.response_bits(challenges), capacity_only.response_bits(challenges)
        )
        assert np.array_equal(clone.edge_src, capacity_only.edge_src)
        assert np.array_equal(clone.edge_cells, capacity_only.edge_cells)


class TestSharedMemory:
    def test_attached_arrays_map_the_block(self, capacity_only):
        shm, manifest = share_compiled(capacity_only)
        try:
            attached, worker_shm = attach_compiled(shm.name, manifest)
            try:
                block = np.frombuffer(worker_shm.buf, dtype=np.uint8)
                # Mapped, not copied: the attached tables alias the block.
                assert np.shares_memory(attached.cap0, block)
                assert np.shares_memory(attached.cap1, block)
                assert np.array_equal(attached.cap0, capacity_only.cap0)
            finally:
                del attached, block
                worker_shm.close()
        finally:
            shm.close()
            shm.unlink()

    def test_attached_device_answers_identically(self, tiny_ppuf, capacity_only):
        shm, manifest = share_compiled(capacity_only)
        try:
            attached, worker_shm = attach_compiled(shm.name, manifest)
            try:
                challenges = challenges_for(tiny_ppuf, 16, seed=10)
                assert np.array_equal(
                    attached.response_bits(challenges),
                    capacity_only.response_bits(challenges),
                )
            finally:
                del attached
                worker_shm.close()
        finally:
            shm.close()
            shm.unlink()


class TestRoundTrips:
    def test_dict_roundtrip_bit_identical_both_engines(self, tiny_ppuf):
        restored = ppuf_from_dict(ppuf_to_dict(tiny_ppuf))
        challenges = challenges_for(tiny_ppuf, 12, seed=11)
        for engine in ("maxflow", "circuit"):
            assert np.array_equal(
                restored.response_bits(challenges, engine=engine),
                tiny_ppuf.response_bits(challenges, engine=engine),
            )

    def test_npz_roundtrip_bit_identical_both_engines(
        self, tiny_ppuf, compiled, tmp_path
    ):
        path = str(tmp_path / "device.npz")
        save_compiled(compiled, path)
        restored = load_compiled(path)
        assert restored.device_id == compiled.device_id
        challenges = challenges_for(tiny_ppuf, 12, seed=12)
        for engine in ("maxflow", "circuit"):
            assert np.array_equal(
                restored.response_bits(challenges, engine=engine),
                compiled.response_bits(challenges, engine=engine),
            )

    def test_adopt_compiled_seeds_the_lazy_caches(self, tiny_ppuf, compiled):
        fresh = ppuf_from_dict(ppuf_to_dict(tiny_ppuf))
        fresh.network_a.adopt_compiled(compiled.network_a.tables())
        assert set(fresh.network_a._capacities) == {0, 1}
        challenges = challenges_for(tiny_ppuf, 8, seed=13)
        assert np.array_equal(
            fresh.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )


class TestFormatVersioning:
    def test_dicts_carry_the_format_field(self, tiny_ppuf, compiled):
        assert ppuf_to_dict(tiny_ppuf)["format"] == FORMAT_VERSION
        assert compiled.header()["format"] == FORMAT_VERSION
        assert json.loads(CRPDataset([]).to_json())["format"] == FORMAT_VERSION

    def test_legacy_unversioned_inputs_still_load(self, tiny_ppuf):
        legacy = ppuf_to_dict(tiny_ppuf)
        del legacy["format"]
        restored = ppuf_from_dict(legacy)
        assert restored.n == tiny_ppuf.n
        assert len(CRPDataset.from_json("[]")) == 0

    def test_ppuf_format_mismatch_names_path_and_version(self, tiny_ppuf, tmp_path):
        data = ppuf_to_dict(tiny_ppuf)
        data["format"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ReproError, match="future.json.*99"):
            load_ppuf(str(path))

    def test_crp_format_mismatch_names_path_and_version(self, tmp_path):
        path = tmp_path / "future-crps.json"
        path.write_text(json.dumps({"format": 99, "crps": []}))
        with pytest.raises(ReproError, match="future-crps.json.*99"):
            load_crps(str(path))

    def test_compiled_format_mismatch_names_path_and_version(
        self, compiled, tmp_path
    ):
        header = compiled.header()
        header["format"] = 99
        path = str(tmp_path / "future.npz")
        np.savez(path, header=np.array(json.dumps(header)), **compiled.to_arrays())
        with pytest.raises(ReproError, match="future.npz.*99"):
            load_compiled(path)

    def test_compiled_garbage_file_names_path(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(ReproError, match="noise.npz"):
            load_compiled(str(path))

    def test_compiled_missing_header_names_path(self, compiled, tmp_path):
        path = str(tmp_path / "headless.npz")
        np.savez(path, **compiled.to_arrays())
        with pytest.raises(ReproError, match="headless.npz.*header"):
            load_compiled(path)
