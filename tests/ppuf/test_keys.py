"""Key derivation from PPUF responses."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ppuf import CurrentComparator, Ppuf, derive_key, key_agreement_rate, seed_challenges


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(12, 3, np.random.default_rng(21))


class TestSeedChallenges:
    def test_deterministic(self, device):
        a = seed_challenges(device, b"abc", 5)
        b = seed_challenges(device, b"abc", 5)
        assert [c.key() for c in a] == [c.key() for c in b]

    def test_seed_sensitivity(self, device):
        a = seed_challenges(device, b"abc", 5)
        b = seed_challenges(device, b"abd", 5)
        assert [c.key() for c in a] != [c.key() for c in b]

    def test_validation(self, device):
        with pytest.raises(ReproError):
            seed_challenges(device, b"x", 0)
        with pytest.raises(ReproError):
            seed_challenges(device, "not-bytes", 3)


class TestDeriveKey:
    def test_deterministic_without_noise(self, device):
        assert derive_key(device, b"k").key == derive_key(device, b"k").key

    def test_key_is_32_bytes(self, device):
        assert len(derive_key(device, b"k").key) == 32

    def test_different_seeds_different_keys(self, device):
        assert derive_key(device, b"k1").key != derive_key(device, b"k2").key

    def test_different_devices_different_keys(self, device):
        other = Ppuf.create(12, 3, np.random.default_rng(99))
        assert derive_key(device, b"k").key != derive_key(other, b"k").key

    def test_dark_bit_masking_drops_marginal_bits(self, device):
        coarse = Ppuf(
            crossbar=device.crossbar,
            network_a=device.network_a,
            network_b=device.network_b,
            comparator=CurrentComparator(resolution=1e-7),
        )
        material = derive_key(coarse, b"k", num_bits=48)
        assert material.retained < 48

    def test_noisy_comparator_requires_rng(self, device):
        noisy = Ppuf(
            crossbar=device.crossbar,
            network_a=device.network_a,
            network_b=device.network_b,
            comparator=CurrentComparator(noise_sigma=1e-9),
        )
        with pytest.raises(ReproError):
            derive_key(noisy, b"k")


class TestAgreementRate:
    def test_noise_free_always_agrees(self, device, rng):
        rate, material = key_agreement_rate(device, b"k", 3, rng, num_bits=24)
        assert rate == 1.0
        assert material.retained > 0

    def test_masking_plus_votes_beats_raw_noise(self, device):
        """With noise comparable to weak margins, masking + voting keeps
        key agreement higher than unmasked single-shot decisions."""
        rng = np.random.default_rng(5)
        fragile = Ppuf(
            crossbar=device.crossbar,
            network_a=device.network_a,
            network_b=device.network_b,
            comparator=CurrentComparator(noise_sigma=1.5e-8, resolution=0.0),
        )
        robust = Ppuf(
            crossbar=device.crossbar,
            network_a=device.network_a,
            network_b=device.network_b,
            comparator=CurrentComparator(noise_sigma=1.5e-8, resolution=5e-8),
        )
        fragile_rate, _ = key_agreement_rate(fragile, b"k", 8, rng, num_bits=32, votes=1)
        robust_rate, _ = key_agreement_rate(robust, b"k", 8, rng, num_bits=32, votes=9)
        assert robust_rate >= fragile_rate

    def test_validation(self, device, rng):
        with pytest.raises(ReproError):
            key_agreement_rate(device, b"k", 0, rng)
