"""Packed artifact fleets: round-trip, append protocol, conformance.

The pack is the fleet-scale container (format 2): one mmap'd file must
serve every device bit-exactly — against the live device, the per-device
``.npz`` artifact, and through the batch pipeline — while holding O(1)
file descriptors and surviving interrupted appends.
"""

import json
import os

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ppuf import BatchEvaluator, Ppuf
from repro.ppuf.pack import (
    PACK_MAGIC,
    ArtifactPack,
    PackWriter,
    append_pack,
    build_pack,
)
from repro.ppuf.io import load_compiled, save_compiled
from repro.ppuf.verification import PpufProver, PpufVerifier

FLEET = 5


@pytest.fixture(scope="module")
def fleet():
    rng = np.random.default_rng(77)
    return [Ppuf.create(6, 2, rng) for _ in range(FLEET)]


@pytest.fixture(scope="module")
def compiled_fleet(fleet):
    return [device.compile(include_circuit=False) for device in fleet]


@pytest.fixture()
def pack_path(tmp_path, compiled_fleet):
    path = str(tmp_path / "fleet.pack")
    assert build_pack(path, compiled_fleet) == FLEET
    return path


class TestRoundTrip:
    def test_every_device_reads_back_bit_exact(self, pack_path, fleet, compiled_fleet, rng):
        pack = ArtifactPack(pack_path)
        assert len(pack) == FLEET
        assert sorted(c.device_id for c in compiled_fleet) == pack.ids()
        for device, compiled in zip(fleet, compiled_fleet):
            served = pack.device(compiled.device_id)
            assert served.device_id == compiled.device_id
            challenges = device.challenge_space().random_batch(6, rng)
            assert np.array_equal(
                served.response_bits(challenges), device.response_bits(challenges)
            )

    def test_rows_are_mmap_views_not_copies(self, pack_path, compiled_fleet):
        pack = ArtifactPack(pack_path)
        device = pack.device(compiled_fleet[0].device_id)
        assert np.shares_memory(device.cap0, pack._data)
        assert np.shares_memory(device.cap1, pack._data)
        assert not device.cap0.flags.writeable

    def test_open_pack_holds_o1_descriptors(self, pack_path, compiled_fleet):
        # np.memmap releases its descriptor after mapping: opening the pack
        # and serving every device must not scale the FD table with the
        # fleet (the per-device-npz design opens one file per device).
        before = len(os.listdir("/proc/self/fd"))
        pack = ArtifactPack(pack_path)
        devices = [pack.device(device_id) for device_id in pack.ids()]
        after = len(os.listdir("/proc/self/fd"))
        assert after - before <= 1
        assert len(devices) == FLEET

    def test_header_and_stats_surfaces(self, pack_path, compiled_fleet):
        pack = ArtifactPack(pack_path)
        header = pack.header(compiled_fleet[0].device_id)
        assert header["n"] == 6 and header["l"] == 2
        stats = pack.stats()
        assert stats["devices"] == FLEET
        assert stats["format"] == 2
        assert stats["file_bytes"] == os.path.getsize(pack_path)

    def test_unknown_device_raises_with_path(self, pack_path):
        with pytest.raises(ReproError, match="fleet.pack"):
            ArtifactPack(pack_path).device("deadbeef")

    def test_circuit_tables_round_trip(self, tmp_path, fleet, rng):
        path = str(tmp_path / "circuit.pack")
        compiled = fleet[0].compile(include_circuit=True)
        build_pack(path, [compiled])
        served = ArtifactPack(path).device(compiled.device_id)
        assert served.has_circuit_tables
        challenge = fleet[0].challenge_space().random(rng)
        assert served.response(challenge, engine="circuit") == fleet[0].response(
            challenge, engine="circuit"
        )


class TestAppendProtocol:
    def test_append_never_rewrites_existing_bytes(self, tmp_path, compiled_fleet):
        path = str(tmp_path / "grow.pack")
        build_pack(path, compiled_fleet[:2])
        with open(path, "rb") as handle:
            before = handle.read()
        assert append_pack(path, compiled_fleet[2:]) == FLEET - 2
        with open(path, "rb") as handle:
            after = handle.read(len(before))
        assert after == before
        assert len(ArtifactPack(path)) == FLEET

    def test_reappended_device_supersedes(self, tmp_path, compiled_fleet):
        path = str(tmp_path / "dup.pack")
        build_pack(path, compiled_fleet[:1])
        size = os.path.getsize(path)
        append_pack(path, compiled_fleet[:1])
        pack = ArtifactPack(path)
        assert len(pack) == 1  # one id, last record wins
        assert os.path.getsize(path) > size  # append-only: nothing rewritten

    def test_truncated_tail_is_skipped_with_warning(self, pack_path, caplog):
        with open(pack_path, "ab") as handle:
            handle.write(b"\x13" * 9)  # an interrupted append's footprint
        with caplog.at_level("WARNING"):
            pack = ArtifactPack(pack_path)
        assert len(pack) == FLEET
        assert any("truncated" in record.message for record in caplog.records)

    def test_partial_record_is_skipped(self, pack_path, compiled_fleet, caplog):
        # Cut the last record mid-data: the scan must keep everything
        # before it and drop only the partial row.
        full = ArtifactPack(pack_path)
        last_id = max(full._index, key=lambda i: full._index[i].data_start)
        entry = full._index[last_id]
        with open(pack_path, "rb+") as handle:
            handle.truncate(entry.data_start + entry.data_bytes // 2)
        with caplog.at_level("WARNING"):
            pack = ArtifactPack(pack_path)
        assert len(pack) == FLEET - 1
        assert last_id not in pack

    def test_open_truncates_interrupted_append_then_extends(
        self, pack_path, compiled_fleet
    ):
        with open(pack_path, "ab") as handle:
            handle.write(b"half a record")
        with PackWriter.open(pack_path) as writer:
            writer.add(compiled_fleet[0])
        pack = ArtifactPack(pack_path)
        assert len(pack) == FLEET  # garbage gone, re-append superseded

    def test_create_is_atomic(self, tmp_path, compiled_fleet):
        path = str(tmp_path / "atomic.pack")

        class Boom(RuntimeError):
            pass

        def explode():
            with PackWriter.create(path) as writer:
                writer.add(compiled_fleet[0])
                raise Boom()

        with pytest.raises(Boom):
            explode()
        assert not os.path.exists(path)  # aborted stage never published
        assert [n for n in os.listdir(tmp_path) if n.startswith("atomic")] == []


class TestFormatErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pack"
        path.write_bytes(b"NOTAPACK" + b"\0" * 8)
        with pytest.raises(ReproError, match="bad magic"):
            ArtifactPack(str(path))

    def test_wrong_version_rejected_by_name(self, pack_path):
        with open(pack_path, "rb+") as handle:
            handle.seek(len(PACK_MAGIC))
            handle.write((99).to_bytes(4, "little"))
        with pytest.raises(ReproError, match="format 99"):
            ArtifactPack(pack_path)

    def test_short_file_rejected(self, tmp_path):
        path = tmp_path / "short.pack"
        path.write_bytes(b"PP")
        with pytest.raises(ReproError, match="too short"):
            ArtifactPack(str(path))

    def test_missing_file_raises_repro_error(self, tmp_path):
        with pytest.raises(ReproError, match="nope.pack"):
            ArtifactPack(str(tmp_path / "nope.pack"))

    def test_unkeyed_artifact_rejected(self, tmp_path, fleet):
        from repro.ppuf.compiled import compile_ppuf

        anonymous = compile_ppuf(fleet[0], include_circuit=False, device_id="")
        with pytest.raises(ReproError, match="no device id"):
            build_pack(str(tmp_path / "x.pack"), [anonymous])


class TestConformance:
    """Pack slice vs per-device .npz vs live device: one truth."""

    def test_pack_npz_live_agree_on_responses(
        self, pack_path, tmp_path, fleet, compiled_fleet, rng
    ):
        pack = ArtifactPack(pack_path)
        for device, compiled in zip(fleet[:3], compiled_fleet[:3]):
            npz_path = str(tmp_path / f"{compiled.device_id}.npz")
            save_compiled(compiled, npz_path)
            from_npz = load_compiled(npz_path)
            from_pack = pack.device(compiled.device_id)
            challenges = device.challenge_space().random_batch(8, rng)
            live = device.response_bits(challenges)
            assert np.array_equal(from_npz.response_bits(challenges), live)
            assert np.array_equal(from_pack.response_bits(challenges), live)

    def test_claim_verification_off_pack_slice(self, pack_path, fleet, compiled_fleet, rng):
        device, compiled = fleet[0], compiled_fleet[0]
        challenge = device.challenge_space().random(rng)
        claim = PpufProver(device.network_a).answer_compact(challenge)
        served = ArtifactPack(pack_path).device(compiled.device_id)
        assert PpufVerifier(served.network_a).verify_compact(claim)

    def test_batch_evaluator_accepts_pack_backed_device(
        self, pack_path, fleet, compiled_fleet, rng
    ):
        device, compiled = fleet[1], compiled_fleet[1]
        served = ArtifactPack(pack_path).device(compiled.device_id)
        challenges = device.challenge_space().random_batch(12, rng)
        inline, _ = BatchEvaluator(device).evaluate(challenges)
        packed, report = BatchEvaluator(served, chunk_size=4).evaluate(challenges)
        assert np.array_equal(packed, inline)
        assert report.challenges == 12

    def test_batch_fanout_from_pack_backed_device(
        self, pack_path, fleet, compiled_fleet, rng
    ):
        # Multi-process path: the pack-backed views are copied into one shm
        # block for the pool — workers must answer identically.
        device, compiled = fleet[2], compiled_fleet[2]
        served = ArtifactPack(pack_path).device(compiled.device_id)
        challenges = device.challenge_space().random_batch(8, rng)
        inline = device.response_bits(challenges)
        bits, _ = BatchEvaluator(served, workers=2, chunk_size=4).evaluate(challenges)
        assert np.array_equal(bits, inline)


class TestCliPack:
    def test_build_inspect_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "cli.pack")
        assert main([
            "pack", "build", "--output", out,
            "--create", "2", "--nodes", "6", "--grid", "2", "--seed", "3",
        ]) == 0
        assert main(["pack", "inspect", out, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["devices"] == 2
        assert report["format"] == 2
        assert len(report["ids"]) == 2

    def test_append_from_saved_ppuf(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "cli.pack")
        device_json = str(tmp_path / "dev.json")
        assert main([
            "pack", "build", "--output", out,
            "--create", "1", "--nodes", "6", "--grid", "2", "--seed", "4",
        ]) == 0
        assert main([
            "create", "--nodes", "6", "--grid", "2", "--seed", "5",
            "--output", device_json,
        ]) == 0
        assert main(["pack", "append", "--output", out, "--ppuf", device_json]) == 0
        capsys.readouterr()
        assert main(["pack", "inspect", out, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["devices"] == 2

    def test_empty_build_is_an_error(self, tmp_path):
        from repro.cli import main

        assert main(["pack", "build", "--output", str(tmp_path / "x.pack")]) == 2
