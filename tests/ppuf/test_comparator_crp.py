"""Current comparator and CRP containers."""

import numpy as np
import pytest

from repro.errors import ChallengeError, DeviceError
from repro.ppuf.challenge import Challenge
from repro.ppuf.comparator import CurrentComparator
from repro.ppuf.crp import CRP, CRPDataset, collect_crps


class TestComparator:
    def test_basic_comparison(self):
        comparator = CurrentComparator()
        assert comparator.compare(2e-6, 1e-6) == 1
        assert comparator.compare(1e-6, 2e-6) == 0

    def test_offset_shifts_decision(self):
        comparator = CurrentComparator(offset=2e-6)
        assert comparator.compare(1e-6, 2e-6) == 1

    def test_resolvability(self):
        comparator = CurrentComparator(resolution=1e-9)
        assert comparator.is_resolvable(5e-9, 1e-9)
        assert not comparator.is_resolvable(1.0e-9, 1.5e-9)

    def test_validation(self):
        with pytest.raises(DeviceError):
            CurrentComparator(resolution=-1.0)
        with pytest.raises(DeviceError):
            CurrentComparator(power=-1.0)


def make_challenge():
    return Challenge(source=0, sink=3, bits=np.array([1, 0, 1, 1], dtype=np.uint8))


class TestCRP:
    def test_response_validation(self):
        with pytest.raises(ChallengeError):
            CRP(make_challenge(), 2)

    def test_dict_roundtrip(self):
        crp = CRP(make_challenge(), 1)
        restored = CRP.from_dict(crp.to_dict())
        assert restored.challenge.key() == crp.challenge.key()
        assert restored.response == 1


class TestCRPDataset:
    def _dataset(self):
        dataset = CRPDataset()
        for index in range(6):
            bits = np.array([index & 1, (index >> 1) & 1, 0, 1], dtype=np.uint8)
            dataset.append(CRP(Challenge(source=0, sink=3, bits=bits), index & 1))
        return dataset

    def test_len_and_iter(self):
        dataset = self._dataset()
        assert len(dataset) == 6
        assert len(list(dataset)) == 6

    def test_feature_and_label_matrices(self):
        dataset = self._dataset()
        features = dataset.features()
        labels = dataset.labels()
        assert features.shape == (6, 4)
        assert set(labels.tolist()) <= {-1.0, 1.0}

    def test_empty_dataset_raises(self):
        with pytest.raises(ChallengeError):
            CRPDataset().features()

    def test_split(self):
        train, test = self._dataset().split(4)
        assert len(train) == 4
        assert len(test) == 2
        with pytest.raises(ChallengeError):
            self._dataset().split(6)

    def test_json_roundtrip(self):
        dataset = self._dataset()
        restored = CRPDataset.from_json(dataset.to_json())
        assert len(restored) == len(dataset)
        assert restored.crps[2].challenge.key() == dataset.crps[2].challenge.key()


class TestCollect:
    def test_collect_from_ppuf(self, small_ppuf, rng):
        challenges = small_ppuf.challenge_space().random_batch(4, rng)
        dataset = collect_crps(small_ppuf, challenges)
        assert len(dataset) == 4
        for crp, challenge in zip(dataset, challenges):
            assert crp.challenge is challenge
            assert crp.response == small_ppuf.response(challenge)
