"""Persistence error contract and atomic writes."""

import json
import os

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ppuf import CRP, CRPDataset, Ppuf
from repro.ppuf.io import (
    atomic_write_text,
    load_compiled,
    load_crps,
    load_ppuf,
    save_compiled,
    save_crps,
    save_ppuf,
)


@pytest.fixture(scope="module")
def tiny_ppuf():
    return Ppuf.create(6, 2, np.random.default_rng(41))


class TestLoadPpufErrorContract:
    def test_missing_file_raises_repro_error_with_path(self, tmp_path):
        path = str(tmp_path / "nope.json")
        with pytest.raises(ReproError, match="nope.json"):
            load_ppuf(path)

    def test_unparseable_json_raises_repro_error_with_path(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json at all")
        with pytest.raises(ReproError, match="garbage.json"):
            load_ppuf(str(path))

    def test_wrong_schema_still_raises_repro_error(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text(json.dumps({"n": 5}))
        with pytest.raises(ReproError):
            load_ppuf(str(path))


class TestAtomicWrites:
    def test_atomic_write_replaces_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        with open(path) as handle:
            assert handle.read() == "second"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "intact")
        monkeypatch.setattr(os, "replace", _boom)
        with pytest.raises(RuntimeError):
            atomic_write_text(path, "lost")
        # old content survives, nothing truncated, no droppings
        with open(path) as handle:
            assert handle.read() == "intact"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_save_ppuf_is_atomic_roundtrip(self, tiny_ppuf, tmp_path, rng):
        path = str(tmp_path / "device.json")
        save_ppuf(tiny_ppuf, path)
        assert os.listdir(tmp_path) == ["device.json"]
        restored = load_ppuf(path)
        challenges = tiny_ppuf.challenge_space().random_batch(4, rng)
        assert np.array_equal(
            restored.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_save_crps_is_atomic_roundtrip(self, tiny_ppuf, tmp_path, rng):
        challenge = tiny_ppuf.challenge_space().random(rng)
        dataset = CRPDataset([CRP(challenge, tiny_ppuf.response(challenge))])
        path = str(tmp_path / "crps.json")
        save_crps(dataset, path)
        assert os.listdir(tmp_path) == ["crps.json"]
        assert len(load_crps(path)) == 1


class TestSaveCompiledDurability:
    """The npz writer must honour the module-wide atomic-write contract."""

    def test_crash_between_write_and_replace_keeps_old_artifact(
        self, tiny_ppuf, tmp_path, monkeypatch, rng
    ):
        path = str(tmp_path / "device.npz")
        original = tiny_ppuf.compile(include_circuit=False)
        save_compiled(original, path)
        monkeypatch.setattr(os, "replace", _boom)
        with pytest.raises(RuntimeError):
            save_compiled(tiny_ppuf.compile(include_circuit=True), path)
        monkeypatch.undo()
        survivor = load_compiled(path)
        assert not survivor.has_circuit_tables  # the old artifact, intact
        challenges = tiny_ppuf.challenge_space().random_batch(4, rng)
        assert np.array_equal(
            survivor.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )
        assert os.listdir(tmp_path) == ["device.npz"]  # no temp droppings

    def test_temp_file_is_fsynced_before_publish(
        self, tiny_ppuf, tmp_path, monkeypatch
    ):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        save_compiled(
            tiny_ppuf.compile(include_circuit=False), str(tmp_path / "d.npz")
        )
        assert synced  # durability: content reaches disk before the rename

    def test_published_mode_respects_umask(self, tiny_ppuf, tmp_path):
        # mkstemp's 0600 must not leak through to the published artifact.
        previous = os.umask(0o022)
        try:
            path = str(tmp_path / "d.npz")
            save_compiled(tiny_ppuf.compile(include_circuit=False), path)
            assert os.stat(path).st_mode & 0o777 == 0o644
            text_path = str(tmp_path / "d.json")
            atomic_write_text(text_path, "{}")
            assert os.stat(text_path).st_mode & 0o777 == 0o644
        finally:
            os.umask(previous)


def _boom(src, dst):
    raise RuntimeError("simulated crash at replace time")
