"""Comparator noise, majority voting and the analytic flip probability."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.ppuf import CurrentComparator, Ppuf


class TestNoisyComparator:
    def test_zero_noise_matches_ideal(self, rng):
        comparator = CurrentComparator(noise_sigma=0.0)
        assert comparator.compare_noisy(2e-6, 1e-6, rng) == comparator.compare(2e-6, 1e-6)

    def test_small_margin_flips_sometimes(self, rng):
        comparator = CurrentComparator(noise_sigma=1e-8)
        decisions = [comparator.compare_noisy(1.0e-8, 1.05e-8, rng) for _ in range(400)]
        rate = np.mean(decisions)
        assert 0.05 < rate < 0.6  # noise sometimes overturns the 0.05e-8 margin

    def test_large_margin_never_flips(self, rng):
        comparator = CurrentComparator(noise_sigma=1e-9)
        decisions = [comparator.compare_noisy(5e-7, 1e-7, rng) for _ in range(200)]
        assert all(d == 1 for d in decisions)

    def test_analytic_flip_probability_matches_monte_carlo(self, rng):
        comparator = CurrentComparator(noise_sigma=2e-8)
        margin_a, margin_b = 3e-8, 1e-8
        analytic = comparator.flip_probability(margin_a, margin_b)
        samples = [
            comparator.compare_noisy(margin_a, margin_b, rng) == 0 for _ in range(4000)
        ]
        assert np.mean(samples) == pytest.approx(analytic, abs=0.03)

    def test_flip_probability_zero_without_noise(self):
        assert CurrentComparator().flip_probability(2e-6, 1e-6) == 0.0

    def test_majority_vote_reduces_errors(self, rng):
        comparator = CurrentComparator(noise_sigma=2e-8)
        margin_a, margin_b = 3e-8, 1e-8  # single-shot flip prob ~0.24
        single = np.mean(
            [comparator.compare_noisy(margin_a, margin_b, rng) == 0 for _ in range(800)]
        )
        voted = np.mean(
            [
                comparator.majority_decision(margin_a, margin_b, rng, votes=9) == 0
                for _ in range(800)
            ]
        )
        assert voted < single

    def test_validation(self, rng):
        with pytest.raises(DeviceError):
            CurrentComparator(noise_sigma=-1.0)
        with pytest.raises(DeviceError):
            CurrentComparator().majority_decision(1.0, 2.0, rng, votes=0)


class TestNoisyPpufResponse:
    def test_noiseless_matches_deterministic(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        assert small_ppuf.noisy_response(challenge, rng) == small_ppuf.response(challenge)

    def test_votes_restore_reliability(self, small_ppuf, rng):
        noisy = Ppuf(
            crossbar=small_ppuf.crossbar,
            network_a=small_ppuf.network_a,
            network_b=small_ppuf.network_b,
            comparator=CurrentComparator(noise_sigma=3e-8),
        )
        challenges = small_ppuf.challenge_space().random_batch(15, rng)
        reference = small_ppuf.response_bits(challenges)
        single_errors = sum(
            noisy.noisy_response(c, rng) != r for c, r in zip(challenges, reference)
        )
        voted_errors = sum(
            noisy.noisy_response(c, rng, votes=15) != r
            for c, r in zip(challenges, reference)
        )
        assert voted_errors <= single_errors
