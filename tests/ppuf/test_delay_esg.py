"""Delay bounds and the ESG model."""

import numpy as np
import pytest

from repro.errors import GraphError, SolverError
from repro.ppuf.delay import (
    effective_edge_resistance,
    lin_mead_delay_bound,
    measured_settling_time,
    node_capacitance,
)
from repro.ppuf.esg import ESGModel, PowerLawFit, fit_power_law


class TestDelayBound:
    def test_delay_grows_linearly(self, tech, conditions):
        t100 = lin_mead_delay_bound(100, tech, conditions)
        t200 = lin_mead_delay_bound(200, tech, conditions)
        slope_ratio = (t200 - t100) / t100
        # Doubling n roughly doubles the edge-capacitance part.
        assert 0.8 < slope_ratio < 1.2

    def test_delay_microsecond_scale_at_100_nodes(self, tech, conditions):
        t100 = lin_mead_delay_bound(100, tech, conditions)
        assert 1e-8 < t100 < 1e-5

    def test_edge_resistance_is_positive_constant(self, tech, conditions):
        resistance = effective_edge_resistance(tech, conditions)
        assert resistance > 1e6

    def test_node_capacitance_linear_in_n(self, tech):
        c10 = node_capacitance(10, tech)
        c20 = node_capacitance(20, tech)
        expected = tech.c_edge * 2 * 10
        assert (c20 - c10) == pytest.approx(expected)

    def test_minimum_size(self, tech):
        with pytest.raises(GraphError):
            node_capacitance(1, tech)

    def test_measured_settling_positive(self, small_ppuf):
        edges = small_ppuf.crossbar.num_edges
        bits = np.ones(edges, dtype=np.uint8)
        settle = measured_settling_time(small_ppuf.network_a, bits, 0, 9)
        assert settle > 0


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        sizes = np.array([10, 20, 40, 80])
        times = 3e-6 * sizes**2.5
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(2.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3e-6, rel=1e-9)

    def test_evaluation(self):
        fit = PowerLawFit(coefficient=2.0, exponent=3.0)
        assert fit(10) == pytest.approx(2000.0)

    def test_scaled_to_anchor(self):
        fit = PowerLawFit(coefficient=1.0, exponent=3.0)
        anchored = fit.scaled_to(100.0, 400e-6)
        assert anchored(100.0) == pytest.approx(400e-6)
        assert anchored.exponent == 3.0

    def test_fit_validation(self):
        with pytest.raises(SolverError):
            fit_power_law([10], [1.0])
        with pytest.raises(SolverError):
            fit_power_law([10, 20], [1.0, -1.0])


class TestESGModel:
    def _model(self):
        return ESGModel(
            simulation=PowerLawFit(coefficient=1e-9, exponent=3.0),
            execution=PowerLawFit(coefficient=1e-9, exponent=1.0),
        )

    def test_gap_grows_with_n(self):
        model = self._model()
        assert model.esg(1000) > model.esg(100) > 0

    def test_crossover_solves_target(self):
        model = self._model()
        crossover = model.crossover_nodes(1.0)
        assert float(model.esg(crossover)) == pytest.approx(1.0, rel=1e-6)
        # Analytic: 1e-9 n^3 - 1e-9 n = 1 -> n ~ 1000.
        assert crossover == pytest.approx(1000.0, rel=0.01)

    def test_feedback_amplifies_gap(self):
        model = self._model()
        with_feedback = model.with_feedback(lambda n: n)
        assert float(with_feedback.esg(100)) == pytest.approx(
            100 * float(model.esg(100))
        )

    def test_feedback_reduces_crossover(self):
        model = self._model()
        assert model.with_feedback(lambda n: n).crossover_nodes(1.0) < model.crossover_nodes(1.0)

    def test_invalid_target(self):
        with pytest.raises(SolverError):
            self._model().crossover_nodes(0.0)

    def test_invalid_feedback_schedule(self):
        model = self._model().with_feedback(lambda n: 0.5)
        with pytest.raises(SolverError):
            model.esg(100)

    def test_simulation_time_includes_loops(self):
        model = self._model().with_feedback(lambda n: 10.0)
        assert float(model.simulation_time(100)) == pytest.approx(10 * 1e-9 * 100**3)
