"""Crossbar topology and grid partition."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.ppuf.crossbar import Crossbar


class TestStructure:
    def test_edge_count_is_n_times_n_minus_1(self):
        assert Crossbar(n=7, l=2).num_edges == 42

    def test_endpoints_enumerate_all_ordered_pairs(self):
        crossbar = Crossbar(n=5, l=2)
        src, dst = crossbar.edge_endpoints()
        pairs = set(zip(src.tolist(), dst.tolist()))
        expected = {(i, j) for i in range(5) for j in range(5) if i != j}
        assert pairs == expected

    def test_no_diagonal_blocks(self):
        crossbar = Crossbar(n=6, l=3)
        src, dst = crossbar.edge_endpoints()
        assert np.all(src != dst)

    def test_edge_index_consistent_with_enumeration(self):
        crossbar = Crossbar(n=6, l=2)
        src, dst = crossbar.edge_endpoints()
        for e in range(crossbar.num_edges):
            assert crossbar.edge_index(int(src[e]), int(dst[e])) == e

    def test_edge_index_rejects_diagonal(self):
        with pytest.raises(GraphError):
            Crossbar(n=4, l=2).edge_index(2, 2)

    def test_validation(self):
        with pytest.raises(GraphError):
            Crossbar(n=1, l=1)
        with pytest.raises(GraphError):
            Crossbar(n=4, l=5)
        with pytest.raises(GraphError):
            Crossbar(n=4, l=0)


class TestGridPartition:
    def test_num_control_bits(self):
        assert Crossbar(n=8, l=4).num_control_bits == 16

    def test_cells_cover_valid_range(self):
        crossbar = Crossbar(n=10, l=3)
        cells = crossbar.edge_cells()
        assert cells.min() >= 0
        assert cells.max() < 9

    def test_l_equals_n_gives_one_block_per_cell_off_diagonal(self):
        crossbar = Crossbar(n=4, l=4)
        cells = crossbar.edge_cells()
        # Every cell except the 4 diagonal ones holds exactly one block.
        counts = np.bincount(cells, minlength=16)
        assert sorted(counts.tolist()) == [0] * 4 + [1] * 12

    def test_l_equals_1_single_control_bit(self):
        crossbar = Crossbar(n=5, l=1)
        assert crossbar.num_control_bits == 1
        assert np.all(crossbar.edge_cells() == 0)

    def test_bits_for_edges_expands_per_cell(self):
        crossbar = Crossbar(n=6, l=2)
        bits = np.array([1, 0, 0, 1], dtype=np.uint8)
        edge_bits = crossbar.bits_for_edges(bits)
        assert edge_bits.shape == (30,)
        cells = crossbar.edge_cells()
        assert np.array_equal(edge_bits, bits[cells])

    def test_bits_for_edges_validation(self):
        crossbar = Crossbar(n=6, l=2)
        with pytest.raises(GraphError):
            crossbar.bits_for_edges(np.zeros(3, dtype=np.uint8))
        with pytest.raises(GraphError):
            crossbar.bits_for_edges(np.full(4, 2, dtype=np.uint8))

    def test_cell_block_counts_balanced_when_divisible(self):
        crossbar = Crossbar(n=8, l=2)
        counts = np.bincount(crossbar.edge_cells(), minlength=4)
        # 4x4-node quadrants: diagonal cells lose their 4 diagonal blocks.
        assert counts.sum() == crossbar.num_edges
        assert counts.max() - counts.min() == 4


class TestPhysical:
    def test_block_positions_normalised(self):
        crossbar = Crossbar(n=9, l=3)
        positions = crossbar.block_positions()
        assert positions.shape == (crossbar.num_edges, 2)
        assert positions.min() >= 0.0
        assert positions.max() <= 1.0

    def test_incident_edge_counts(self):
        crossbar = Crossbar(n=7, l=2)
        assert np.all(crossbar.incident_edge_counts() == 12)
