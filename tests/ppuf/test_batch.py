"""The batched CRP pipeline: equivalence with the sequential path.

The contract under test: :meth:`Ppuf.responses` (and the underlying
:class:`BatchEvaluator`) returns bit-for-bit the same responses as looping
:meth:`Ppuf.response`, for every engine, every algorithm, and every worker
count / chunking.
"""

import numpy as np
import pytest

from repro.errors import ChallengeError, SolverError
from repro.ppuf import BatchEvaluator, Challenge


@pytest.fixture(scope="module")
def challenges(small_ppuf):
    return small_ppuf.challenge_space().random_batch(
        24, np.random.default_rng(4242)
    )


@pytest.fixture(scope="module")
def looped_bits(small_ppuf, challenges):
    return small_ppuf.response_bits(challenges)


class TestEquivalence:
    def test_batched_algorithm_matches_looped(
        self, small_ppuf, challenges, looped_bits
    ):
        bits = small_ppuf.responses(challenges)
        assert bits.dtype == np.uint8
        assert np.array_equal(bits, looped_bits)

    @pytest.mark.parametrize(
        "algorithm", ["dinic", "edmonds_karp", "push_relabel"]
    )
    def test_exact_solver_paths_match_looped(
        self, small_ppuf, challenges, looped_bits, algorithm
    ):
        bits = small_ppuf.responses(challenges, algorithm=algorithm)
        assert np.array_equal(bits, looped_bits)

    def test_workers_do_not_change_bits(
        self, small_ppuf, challenges, looped_bits
    ):
        serial = small_ppuf.responses(challenges, workers=1, chunk_size=6)
        fanned = small_ppuf.responses(challenges, workers=4, chunk_size=6)
        assert np.array_equal(serial, looped_bits)
        assert np.array_equal(fanned, looped_bits)

    def test_chunk_size_does_not_change_bits(
        self, small_ppuf, challenges, looped_bits
    ):
        one_at_a_time = small_ppuf.responses(challenges[:8], chunk_size=1)
        assert np.array_equal(one_at_a_time, looped_bits[:8])

    def test_circuit_engine_matches_looped(self, small_ppuf, challenges):
        subset = challenges[:3]
        looped = small_ppuf.response_bits(subset, engine="circuit")
        batched = small_ppuf.responses(subset, engine="circuit")
        assert np.array_equal(batched, looped)

    def test_medium_device_matches_looped(self, medium_ppuf):
        batch = medium_ppuf.challenge_space().random_batch(
            10, np.random.default_rng(77)
        )
        assert np.array_equal(
            medium_ppuf.responses(batch), medium_ppuf.response_bits(batch)
        )


class TestEvaluator:
    def test_report_accounting(self, small_ppuf, challenges):
        evaluator = BatchEvaluator(small_ppuf, chunk_size=10)
        bits, report = evaluator.evaluate(challenges)
        assert bits.shape == (len(challenges),)
        assert report.challenges == len(challenges)
        assert report.engine == "maxflow"
        assert report.algorithm == "batched_dinic"
        assert report.chunks == 3  # ceil(24 / 10)
        assert report.workers == 1
        assert report.total_seconds > 0
        assert report.throughput > 0
        for stage in (
            report.prepare_seconds,
            report.solve_seconds,
            report.compare_seconds,
        ):
            assert stage >= 0
        assert report.solver_stats["augmentations"] > 0
        assert report.solver_stats["bfs_edge_visits"] > 0

    def test_evaluator_reuse_is_stable(self, small_ppuf, challenges):
        # The dense buffers are reused across calls; results must not be.
        evaluator = BatchEvaluator(small_ppuf)
        first, _ = evaluator.evaluate(challenges)
        second, _ = evaluator.evaluate(challenges)
        assert np.array_equal(first, second)

    def test_circuit_report_counts_dc_solves(self, small_ppuf, challenges):
        evaluator = BatchEvaluator(small_ppuf, engine="circuit")
        _, report = evaluator.evaluate(challenges[:2])
        assert report.solver_stats == {"dc_solves": 4}

    def test_empty_batch(self, small_ppuf):
        bits, report = BatchEvaluator(small_ppuf).evaluate([])
        assert bits.shape == (0,)
        assert report.challenges == 0
        assert report.chunks == 0

    def test_throughput_of_empty_report_is_zero(self, small_ppuf):
        _, report = BatchEvaluator(small_ppuf).evaluate([])
        report.total_seconds = 0.0
        assert report.throughput == 0.0


class TestValidation:
    def test_wrong_bit_count_rejected(self, small_ppuf):
        bad = Challenge(source=0, sink=1, bits=np.zeros(4, dtype=np.uint8))
        with pytest.raises(ChallengeError):
            small_ppuf.responses([bad])

    def test_out_of_range_terminals_rejected(self, small_ppuf):
        bits = np.zeros(small_ppuf.crossbar.num_control_bits, dtype=np.uint8)
        bad = Challenge(source=0, sink=99, bits=bits)
        with pytest.raises(ChallengeError):
            small_ppuf.responses([bad])

    def test_unknown_engine_rejected(self, small_ppuf):
        with pytest.raises(SolverError):
            BatchEvaluator(small_ppuf, engine="spice")

    def test_unknown_algorithm_rejected(self, small_ppuf):
        with pytest.raises(SolverError):
            BatchEvaluator(small_ppuf, algorithm="simplex")

    def test_bad_worker_and_chunk_counts_rejected(self, small_ppuf):
        with pytest.raises(SolverError):
            BatchEvaluator(small_ppuf, workers=0)
        with pytest.raises(SolverError):
            BatchEvaluator(small_ppuf, chunk_size=0)


class TestShortCircuit:
    """B=0 / B=1 (and single-chunk) inputs must never spawn a pool.

    The guard is enforced, not assumed: WorkerPool is monkeypatched to
    explode on construction, so any short-circuit regression fails loudly
    on both the edge-array ("batched_dinic") and dense ("batched") paths.
    """

    @pytest.fixture
    def no_pool(self, monkeypatch):
        from repro.ppuf import batch as batch_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "short-circuit path must not construct a WorkerPool"
                )

        monkeypatch.setattr(batch_module, "WorkerPool", ExplodingPool)

    @pytest.mark.parametrize("algorithm", ["batched_dinic", "batched"])
    def test_empty_batch_spawns_no_pool(self, small_ppuf, no_pool, algorithm):
        evaluator = BatchEvaluator(small_ppuf, workers=4, algorithm=algorithm)
        bits, report = evaluator.evaluate([])
        assert bits.shape == (0,)
        assert report.chunks == 0
        assert report.workers == 4

    @pytest.mark.parametrize("algorithm", ["batched_dinic", "batched"])
    def test_single_challenge_spawns_no_pool(
        self, small_ppuf, challenges, no_pool, algorithm
    ):
        evaluator = BatchEvaluator(small_ppuf, workers=4, algorithm=algorithm)
        bits, report = evaluator.evaluate(challenges[:1])
        assert bits.shape == (1,)
        assert report.chunks == 1
        assert bits[0] == small_ppuf.response(challenges[0])

    def test_single_chunk_spawns_no_pool(self, small_ppuf, challenges, no_pool):
        # B > 1 but one chunk: still inline — chunk count, not B, decides.
        evaluator = BatchEvaluator(small_ppuf, workers=4, chunk_size=64)
        bits, _ = evaluator.evaluate(challenges[:6])
        assert np.array_equal(bits, small_ppuf.response_bits(challenges[:6]))
