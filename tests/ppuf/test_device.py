"""The Ppuf device and PpufNetwork engines."""

import numpy as np
import pytest

from repro.errors import ChallengeError, GraphError
from repro.ppuf import Challenge, CurrentComparator, Ppuf
from repro.ppuf.device import PpufNetwork
from repro.circuit.variation import VariationSample
from repro.ppuf.crossbar import Crossbar


class TestCreation:
    def test_create_builds_two_networks(self, small_ppuf):
        assert small_ppuf.n == 10
        assert small_ppuf.network_a is not small_ppuf.network_b
        assert not np.array_equal(
            small_ppuf.network_a.sample.delta_vt,
            small_ppuf.network_b.sample.delta_vt,
        )

    def test_side_by_side_shares_systematic(self, small_ppuf):
        assert np.array_equal(
            small_ppuf.network_a.sample.systematic,
            small_ppuf.network_b.sample.systematic,
        )

    def test_sample_size_must_match_crossbar(self, tech, conditions):
        crossbar = Crossbar(n=5, l=2)
        with pytest.raises(GraphError):
            PpufNetwork(crossbar, VariationSample.nominal(3), tech, conditions)

    def test_determinism_per_seed(self, tech, conditions):
        a = Ppuf.create(6, 2, np.random.default_rng(7))
        b = Ppuf.create(6, 2, np.random.default_rng(7))
        assert np.array_equal(
            a.network_a.sample.delta_vt, b.network_a.sample.delta_vt
        )


class TestResponses:
    def test_response_is_binary_and_deterministic(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        first = small_ppuf.response(challenge)
        assert first in (0, 1)
        assert small_ppuf.response(challenge) == first

    def test_response_bits_vector(self, small_ppuf, rng):
        challenges = small_ppuf.challenge_space().random_batch(5, rng)
        bits = small_ppuf.response_bits(challenges)
        assert bits.shape == (5,)
        assert set(bits.tolist()) <= {0, 1}

    def test_currents_positive(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        current_a, current_b = small_ppuf.currents(challenge)
        assert current_a > 0
        assert current_b > 0

    def test_wrong_bit_count_rejected(self, small_ppuf):
        bad = Challenge(source=0, sink=1, bits=np.zeros(4, dtype=np.uint8))
        with pytest.raises(ChallengeError):
            small_ppuf.response(bad)

    def test_out_of_range_terminals_rejected(self, small_ppuf):
        bad = Challenge(
            source=0, sink=99,
            bits=np.zeros(small_ppuf.crossbar.num_control_bits, dtype=np.uint8),
        )
        with pytest.raises(ChallengeError):
            small_ppuf.response(bad)

    def test_unknown_engine_rejected(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            small_ppuf.response(challenge, engine="spice")


class TestMaxflowEngine:
    def test_capacities_select_by_bit(self, small_ppuf, rng):
        network = small_ppuf.network_a
        edges = network.crossbar.num_edges
        all_zero = network.capacities(np.zeros(edges, dtype=np.uint8))
        all_one = network.capacities(np.ones(edges, dtype=np.uint8))
        mixed_bits = rng.integers(0, 2, edges).astype(np.uint8)
        mixed = network.capacities(mixed_bits)
        expected = np.where(mixed_bits == 1, all_one, all_zero)
        assert np.array_equal(mixed, expected)

    def test_capacity_matrix_layout(self, small_ppuf):
        network = small_ppuf.network_a
        edges = network.crossbar.num_edges
        matrix = network.capacity_matrix(np.ones(edges, dtype=np.uint8))
        assert matrix.shape == (10, 10)
        assert np.all(np.diag(matrix) == 0)
        assert np.all(matrix[~np.eye(10, dtype=bool)] > 0)

    def test_solver_choice_does_not_change_response(self, small_ppuf, rng):
        network = small_ppuf.network_a
        edges = network.crossbar.num_edges
        bits = rng.integers(0, 2, edges).astype(np.uint8)
        values = {
            algorithm: network.maxflow_current(bits, 0, 9, algorithm=algorithm)
            for algorithm in ("edmonds_karp", "dinic", "push_relabel")
        }
        reference = values["dinic"]
        for value in values.values():
            assert value == pytest.approx(reference, rel=1e-9)

    def test_wrong_edge_bit_count(self, small_ppuf):
        with pytest.raises(ChallengeError):
            small_ppuf.network_a.capacities(np.zeros(3, dtype=np.uint8))


class TestCircuitEngine:
    def test_circuit_agrees_with_maxflow_within_one_percent(self, small_ppuf, rng):
        """The Fig. 6 claim at unit-test scale."""
        challenge = small_ppuf.challenge_space().random(rng)
        simulated = small_ppuf.currents(challenge, engine="maxflow")
        executed = small_ppuf.currents(challenge, engine="circuit")
        for sim, exe in zip(simulated, executed):
            assert abs(sim - exe) / exe < 0.01

    def test_circuit_response_matches_maxflow_usually(self, small_ppuf, rng):
        agreements = 0
        challenges = small_ppuf.challenge_space().random_batch(6, rng)
        for challenge in challenges:
            if small_ppuf.response(challenge, engine="circuit") == small_ppuf.response(
                challenge, engine="maxflow"
            ):
                agreements += 1
        assert agreements >= 5


    def test_wrong_edge_bit_count_rejected_by_edge_table(self, small_ppuf):
        # Same contract as capacities(): a malformed bit vector must raise
        # instead of silently broadcasting into the row selection.
        with pytest.raises(ChallengeError):
            small_ppuf.network_a.edge_table(np.zeros(3, dtype=np.uint8))


class TestEnvironment:
    def test_corner_shares_silicon(self, small_ppuf):
        corner = small_ppuf.at_environment(supply_scale=1.1)
        assert corner.network_a.sample is small_ppuf.network_a.sample
        assert corner.network_a.conditions.v_supply == pytest.approx(2.2)

    def test_temperature_corner_shifts_tech(self, small_ppuf):
        corner = small_ppuf.at_environment(temperature_k=353.15)
        assert corner.network_a.tech.vt0 < small_ppuf.network_a.tech.vt0

    def test_responses_mostly_stable_across_corners(self, small_ppuf, rng):
        challenges = small_ppuf.challenge_space().random_batch(10, rng)
        nominal = small_ppuf.response_bits(challenges)
        hot = small_ppuf.at_environment(supply_scale=1.1, temperature_k=353.15)
        stressed = hot.response_bits(challenges)
        assert np.mean(nominal != stressed) <= 0.3


class TestComparator:
    def test_comparator_offset_can_bias_response(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        current_a, current_b = small_ppuf.currents(challenge)
        gap = current_b - current_a
        biased = Ppuf(
            crossbar=small_ppuf.crossbar,
            network_a=small_ppuf.network_a,
            network_b=small_ppuf.network_b,
            comparator=CurrentComparator(offset=gap + 1e-9),
        )
        assert biased.response(challenge) == 1
