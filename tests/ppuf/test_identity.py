"""Enrollment-free identification."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ppuf import Ppuf, PublicRegistry, expected_match_separation, response_word


@pytest.fixture(scope="module")
def fleet():
    rng = np.random.default_rng(31)
    devices = {f"d{i}": Ppuf.create(12, 3, rng) for i in range(3)}
    space = next(iter(devices.values())).challenge_space()
    challenges = [space.random(rng) for _ in range(40)]
    return devices, challenges


class TestResponseWord:
    def test_word_is_deterministic(self, fleet):
        devices, challenges = fleet
        device = devices["d0"]
        assert np.array_equal(
            response_word(device, challenges), response_word(device, challenges)
        )

    def test_empty_challenge_list_rejected(self, fleet):
        devices, _ = fleet
        with pytest.raises(ReproError):
            response_word(devices["d0"], [])


class TestRegistry:
    def test_identifies_every_registered_device(self, fleet):
        devices, challenges = fleet
        registry = PublicRegistry(challenges=challenges)
        for name, device in devices.items():
            registry.register(name, device)
        for name, device in devices.items():
            matched, distance = registry.identify(device.response_bits(challenges))
            assert matched == name
            assert distance == 0.0

    def test_rejects_counterfeit(self, fleet):
        devices, challenges = fleet
        registry = PublicRegistry(challenges=challenges)
        for name, device in devices.items():
            registry.register(name, device)
        counterfeit = Ppuf.create(12, 3, np.random.default_rng(77))
        matched, distance = registry.identify(
            counterfeit.response_bits(challenges), max_distance=0.2
        )
        assert matched is None
        assert distance > 0.2

    def test_duplicate_registration_rejected(self, fleet):
        devices, challenges = fleet
        registry = PublicRegistry(challenges=challenges)
        registry.register("d0", devices["d0"])
        with pytest.raises(ReproError):
            registry.register("d0", devices["d0"])

    def test_word_length_checked(self, fleet):
        devices, challenges = fleet
        registry = PublicRegistry(challenges=challenges)
        registry.register("d0", devices["d0"])
        with pytest.raises(ReproError):
            registry.identify(np.zeros(3, dtype=np.uint8))

    def test_empty_registry_rejected(self, fleet):
        _, challenges = fleet
        registry = PublicRegistry(challenges=challenges)
        with pytest.raises(ReproError):
            registry.identify(np.zeros(len(challenges), dtype=np.uint8))

    def test_empty_challenges_rejected(self):
        with pytest.raises(ReproError):
            PublicRegistry(challenges=[])


class TestSeparation:
    def test_cross_distance_dominates_same(self, fleet):
        devices, challenges = fleet
        same, cross = expected_match_separation(list(devices.values()), challenges)
        assert same == 0.0
        assert cross > 0.15

    def test_needs_two_devices(self, fleet):
        devices, challenges = fleet
        with pytest.raises(ReproError):
            expected_match_separation([devices["d0"]], challenges)
