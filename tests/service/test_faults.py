"""Fault-injection suite: the server survives a hostile transport.

Acceptance pins: under injected drops/stalls/garbage/truncation at every
protocol state the server never crashes a connection handler or the
sweeper, and an honest client with a retry policy still authenticates
end-to-end on loopback.  The faults map to the paper's adversaries — a
simulator stalls (pays the ESG, misses deadlines), a cheater tampers
(garbage / truncated frames).
"""

import asyncio
import itertools
import time

import numpy as np
import pytest

from repro.errors import ConnectionLost, ServiceError
from repro.ppuf import Ppuf
from repro.ppuf.io import ppuf_to_dict
from repro.service import PpufAuthServer, RetryPolicy, ServiceClient, wire
from repro.service.registry import device_id_for
from repro.service.faults import (
    C2S,
    DISCONNECT,
    DROP,
    FAULT_KINDS,
    GARBAGE,
    S2C,
    STALL,
    TRUNCATE,
    FaultPlan,
    FaultyTransport,
)


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(8, 2, np.random.default_rng(31))


def run(coroutine):
    return asyncio.run(coroutine)


RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, seed=7)

#: (message_type, direction): one entry per protocol state a fault can hit.
PROTOCOL_STATES = (
    ("hello", C2S),
    ("challenge", S2C),
    ("claim", C2S),
    ("verdict", S2C),
)


async def _authenticate_through(plan, device, *, rounds=1, timeout=0.4):
    """Enroll directly, then authenticate through a faulty proxy.

    Returns ``(outcome_or_error, server_stats, proxy)`` — the attempt may
    legitimately fail client-side; what must never happen is a server
    crash, which the caller asserts via the stats and a follow-up honest
    authentication on a clean connection.
    """
    async with PpufAuthServer(workers=0, rounds=rounds, seed=5) as server:
        async with ServiceClient("127.0.0.1", server.port) as direct:
            await direct.enroll(device)
        async with FaultyTransport(server.port, plan) as proxy:
            client = ServiceClient(
                "127.0.0.1", proxy.port, timeout=timeout, retry=RETRY
            )
            try:
                async with client:
                    outcome = await client.authenticate(device)
            except ServiceError as error:
                outcome = error
        # The server must still serve an honest prover afterwards.
        async with ServiceClient("127.0.0.1", server.port) as direct:
            honest = await direct.authenticate(device)
        stats = server.stats
    return outcome, honest, stats, proxy


class TestFaultAtEveryProtocolState:
    @pytest.mark.parametrize(
        "kind,state",
        list(itertools.product(FAULT_KINDS, PROTOCOL_STATES)),
        ids=lambda v: v if isinstance(v, str) else f"{v[0]}@{v[1]}",
    )
    def test_server_survives(self, device, kind, state):
        message_type, direction = state
        seconds = 0.6  # for stall: longer than the client timeout
        plan = FaultPlan().inject(
            kind, direction=direction, message_type=message_type, seconds=seconds
        )
        outcome, honest, stats, proxy = run(
            _authenticate_through(plan, device)
        )
        # The fault actually fired (otherwise this test checks nothing)...
        assert proxy.injected[kind] == 1, f"{kind} at {message_type} never fired"
        # ...the handler contained it (no uncaught handler exception)...
        assert stats.internal_errors == 0
        # ...and the server still authenticates an honest prover.
        assert honest.accepted and honest.reason == "ok"

    def test_sweeper_survives_fault_storm(self, device):
        """Sessions orphaned by faults are swept; the sweeper stays alive."""

        async def go():
            async with PpufAuthServer(
                workers=0, rounds=1, seed=5, idle_timeout=0.1
            ) as server:
                async with ServiceClient("127.0.0.1", server.port) as direct:
                    await direct.enroll(device)
                plan = FaultPlan()
                for index in range(4):
                    plan.inject(DROP, direction=S2C, message_type="challenge")
                async with FaultyTransport(server.port, plan) as proxy:
                    for _ in range(4):
                        try:
                            client = ServiceClient(
                                "127.0.0.1",
                                proxy.port,
                                timeout=0.15,
                                retry=RetryPolicy.no_retry(),
                            )
                            async with client:
                                await client.authenticate(device)
                        except ServiceError:
                            pass
                await asyncio.sleep(0.3)  # a few sweep intervals
                assert not server._sweeper.done()
                stats = server.stats
                async with ServiceClient("127.0.0.1", server.port) as direct:
                    honest = await direct.authenticate(device)
            return stats, honest

        stats, honest = run(go())
        assert stats.sessions_expired >= 1
        assert stats.sweeper_faults == 0
        assert honest.accepted


class TestHonestClientThroughFlakyNetwork:
    def test_authenticates_despite_mixed_faults(self, device):
        """Default-policy client completes e2e through drops and stalls."""

        plan = (
            FaultPlan()
            .inject(DROP, direction=C2S, message_type="hello")
            .inject(STALL, direction=S2C, message_type="challenge", seconds=0.05)
            .inject(GARBAGE, direction=S2C, message_type="challenge")
        )
        # Garbage on a server reply surfaces as a protocol error to the
        # client; the hello retry opens a fresh session and completes.

        async def go():
            async with PpufAuthServer(workers=0, rounds=2, seed=5) as server:
                async with ServiceClient("127.0.0.1", server.port) as direct:
                    await direct.enroll(device)
                async with FaultyTransport(server.port, plan) as proxy:
                    outcome = None
                    for _ in range(4):  # the session level retries on top
                        client = ServiceClient(
                            "127.0.0.1", proxy.port, timeout=0.4, retry=RETRY
                        )
                        try:
                            async with client:
                                outcome = await client.authenticate(device)
                            break
                        except ServiceError:
                            continue
                stats = server.stats
            return outcome, stats, proxy

        outcome, stats, proxy = run(go())
        assert outcome is not None and outcome.accepted
        assert stats.internal_errors == 0
        assert proxy.injected[DROP] == 1


class TestMalformedTrafficHammer:
    """The e2e 'server stays up' test: garbage barrage, then honest auth."""

    GARBAGE_LINES = [
        b"\x00\xffnot even text\n",
        b"[1, 2, 3]\n",
        b'"a bare string"\n',
        b"{\n",
        b'{"no_type": true}\n',
        b'{"type": 42}\n',
        b'{"type": "no-such-verb"}\n',
        b'{"type": "hello"}\n',
        b'{"type": "hello", "device_id": 17}\n',
        b'{"type": "claim"}\n',
        b'{"type": "claim", "session": "x", "nonce": "y", "claim": {}}\n',
        b'{"type": "claim", "session": "x", "nonce": "y", "claim": []}\n',
        b'{"type": "enroll", "device": "not-a-dict"}\n',
        b'{"type": "hello", "rounds": -5}\n',
    ]

    def test_hammer_then_honest_authentication(self, device):
        async def barrage(port, lines):
            replies = 0
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                for line in lines:
                    writer.write(line)
                    await writer.drain()
                    reply = await asyncio.wait_for(reader.readline(), timeout=2.0)
                    if not reply:
                        break
                    replies += 1
                writer.close()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            return replies

        async def go():
            async with PpufAuthServer(workers=0, rounds=2, seed=5) as server:
                async with ServiceClient("127.0.0.1", server.port) as direct:
                    await direct.enroll(device)
                # Hammer from several concurrent connections.
                await asyncio.gather(
                    *(
                        barrage(server.port, self.GARBAGE_LINES)
                        for _ in range(6)
                    )
                )
                async with ServiceClient("127.0.0.1", server.port) as direct:
                    outcome = await direct.authenticate(device)
                    stats = await direct.stats()
            return outcome, stats

        outcome, stats = run(go())
        assert outcome.accepted and outcome.reason == "ok"
        assert stats["protocol_errors"] > 0
        assert stats["internal_errors"] == 0
        # The snapshot exposes every resilience counter.
        for key in (
            "verify_timeouts",
            "connection_timeouts",
            "worker_faults",
            "sweeper_faults",
            "connections_rejected",
            "connections_opened",
            "retries_observed",
            "internal_errors",
        ):
            assert key in stats, f"STATS snapshot missing {key}"


class TestBackendDeathMidSession:
    """A backend dying between CHALLENGE and CLAIM is a clean, fast error.

    The death is injected with a :data:`DISCONNECT` fault on the claim
    frame — from the client's seat, indistinguishable from the backend
    process crashing after it issued the challenge.
    """

    CLAIM_TIMEOUT = 5.0

    async def _hello_then_claim(self, device, port):
        """Open a session, then send a claim; returns (exception, elapsed)."""
        device_id = device_id_for(ppuf_to_dict(device))
        client = ServiceClient(
            "127.0.0.1",
            port,
            timeout=self.CLAIM_TIMEOUT,
            retry=RetryPolicy.no_retry(),
        )
        async with client:
            challenge = await client.request_ok(
                {"type": wire.HELLO, "device_id": device_id, "network": "a"}
            )
            assert challenge["type"] == wire.CHALLENGE
            started = time.monotonic()
            with pytest.raises(ConnectionLost):
                await client.request(
                    {
                        "type": wire.CLAIM,
                        "session": challenge["session"],
                        "nonce": challenge["nonce"],
                        "claim": {"challenge": {}, "paths": [], "value": 0.0},
                    }
                )
            return time.monotonic() - started

    def test_direct_death_surfaces_connection_lost(self, device):
        async def go():
            async with PpufAuthServer(workers=0, rounds=2, seed=5) as server:
                async with ServiceClient("127.0.0.1", server.port) as direct:
                    await direct.enroll(device)
                plan = FaultPlan().inject(
                    DISCONNECT, direction=C2S, message_type="claim"
                )
                async with FaultyTransport(server.port, plan) as proxy:
                    return await self._hello_then_claim(device, proxy.port)

        elapsed = run(go())
        assert elapsed < self.CLAIM_TIMEOUT  # an error, not a hang

    def test_shard_death_behind_router_surfaces_connection_lost(self, device):
        """A shard dying mid-splice closes the routed connection cleanly.

        The faulty transport sits *between router and shard*, so what is
        pinned here is the router's half-close propagation: upstream EOF
        must reach the client as :class:`ConnectionLost` within its
        timeout, never as a hang.
        """
        from repro.service.fleet import FleetRouter, ShardDescriptor, ShardMap

        async def go():
            async with PpufAuthServer(workers=0, rounds=2, seed=5) as server:
                plan = FaultPlan().inject(
                    DISCONNECT, direction=C2S, message_type="claim"
                )
                async with FaultyTransport(server.port, plan) as proxy:
                    shard_map = ShardMap()
                    shard_map.add(
                        ShardDescriptor(name="shard-0", port=proxy.port)
                    )
                    async with FleetRouter(shard_map) as router:
                        async with ServiceClient(
                            "127.0.0.1", router.port
                        ) as direct:
                            await direct.enroll(device)
                        return await self._hello_then_claim(device, router.port)

        elapsed = run(go())
        assert elapsed < self.CLAIM_TIMEOUT


class TestFaultPlanValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ServiceError):
            FaultPlan().inject("explode")

    def test_rejects_bad_direction(self):
        with pytest.raises(ServiceError):
            FaultPlan().inject(DROP, direction="sideways")

    def test_rule_fires_bounded_times(self):
        plan = FaultPlan().inject(DROP, direction=C2S, times=2)
        frame = b'{"type":"hello"}\n'
        assert plan.fault_for(C2S, 0, frame) is not None
        assert plan.fault_for(C2S, 1, frame) is not None
        assert plan.fault_for(C2S, 2, frame) is None

    def test_index_and_type_matching(self):
        plan = (
            FaultPlan()
            .inject(TRUNCATE, direction=S2C, index=3)
            .inject(DISCONNECT, direction=C2S, message_type="claim")
        )
        assert plan.fault_for(S2C, 0, b"{}\n") is None
        rule = plan.fault_for(S2C, 3, b"{}\n")
        assert rule is not None and rule.kind == TRUNCATE
        assert plan.fault_for(C2S, 9, b'{"type":"hello"}\n') is None
        rule = plan.fault_for(C2S, 10, b'{"type":"claim"}\n')
        assert rule is not None and rule.kind == DISCONNECT
