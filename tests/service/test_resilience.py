"""Client resilience: timeouts, retry policy, backoff determinism.

Acceptance pins: every client network operation has a finite default
timeout (no path can block forever on a dead or silent server), idempotent
verbs reconnect-and-retry under a seeded deterministic policy, and CLAIM
is never auto-retried.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ConnectionLost, ServiceError, ServiceTimeout
from repro.ppuf import Ppuf
from repro.service import PpufAuthServer, RetryPolicy, ServiceClient
from repro.service.faults import C2S, S2C, FaultPlan, FaultyTransport
from repro.service.resilience import (
    DEFAULT_TIMEOUT,
    IDEMPOTENT_TYPES,
    is_retryable,
    with_timeout,
)


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(8, 2, np.random.default_rng(21))


def run(coroutine):
    return asyncio.run(coroutine)


FAST_RETRY = dict(base_delay=0.01, max_delay=0.05, seed=3)


class TestRetryPolicy:
    def test_schedule_is_deterministic_under_seed(self):
        a = RetryPolicy(attempts=6, jitter=0.3, seed=42).schedule()
        b = RetryPolicy(attempts=6, jitter=0.3, seed=42).schedule()
        assert a == b
        assert len(a) == 5  # attempts - 1 retries

    def test_different_seeds_differ(self):
        a = RetryPolicy(attempts=6, jitter=0.3, seed=1).schedule()
        b = RetryPolicy(attempts=6, jitter=0.3, seed=2).schedule()
        assert a != b

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            attempts=8, base_delay=0.1, multiplier=2.0, max_delay=0.9, jitter=0.0
        )
        schedule = policy.schedule()
        assert schedule[0] == pytest.approx(0.1)
        assert schedule[1] == pytest.approx(0.2)
        assert schedule[2] == pytest.approx(0.4)
        assert all(delay <= 0.9 for delay in schedule)
        assert schedule[-1] == pytest.approx(0.9)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            attempts=50, base_delay=0.1, multiplier=1.0, jitter=0.2, seed=9
        )
        for delay in policy.schedule():
            assert 0.08 <= delay <= 0.12

    def test_no_retry_policy(self):
        policy = RetryPolicy.no_retry()
        assert policy.attempts == 1
        assert policy.schedule() == ()

    def test_validation(self):
        with pytest.raises(ServiceError):
            RetryPolicy(attempts=0)
        with pytest.raises(ServiceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ServiceError):
            RetryPolicy(base_delay=-1.0)

    def test_retryable_classification(self):
        assert is_retryable(ServiceTimeout("t"))
        assert is_retryable(ConnectionLost("c"))
        assert is_retryable(ConnectionResetError())
        assert is_retryable(asyncio.IncompleteReadError(b"", 1))
        # Server answered: resending the same bytes cannot help.
        assert not is_retryable(ServiceError("server error: nope"))
        assert not is_retryable(ValueError("bug"))

    def test_claim_is_not_idempotent(self):
        assert "claim" not in IDEMPOTENT_TYPES
        assert IDEMPOTENT_TYPES == {"enroll", "hello", "stats"}

    def test_default_timeout_is_finite(self):
        assert 0 < DEFAULT_TIMEOUT < float("inf")
        assert ServiceClient("h", 1).timeout == DEFAULT_TIMEOUT


class TestWithTimeout:
    def test_timeout_raises_named_service_timeout(self):
        async def go():
            await with_timeout(asyncio.sleep(10), 0.05, "the stalled thing")

        with pytest.raises(ServiceTimeout, match="the stalled thing"):
            run(go())

    def test_none_disables(self):
        async def go():
            return await with_timeout(asyncio.sleep(0, result=7), None, "x")

        assert run(go()) == 7


class TestClientTimeouts:
    def test_silent_server_times_out_finitely(self):
        """A server that accepts but never replies must not hang the client."""

        async def mute(reader, writer):
            await asyncio.sleep(30)

        async def go():
            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                client = ServiceClient(
                    "127.0.0.1",
                    port,
                    timeout=0.2,
                    retry=RetryPolicy(attempts=2, **FAST_RETRY),
                )
                async with client:
                    with pytest.raises(ServiceTimeout):
                        await client.stats()
            finally:
                server.close()
                await server.wait_closed()

        run(go())

    def test_dead_server_raises_connection_lost(self):
        async def go():
            # Bind-and-close to get a port that refuses connections.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            client = ServiceClient(
                "127.0.0.1",
                port,
                timeout=0.5,
                retry=RetryPolicy(attempts=2, **FAST_RETRY),
            )
            with pytest.raises(ConnectionLost):
                await client.connect()

        run(go())

    def test_non_idempotent_retry_refused(self):
        async def go():
            client = ServiceClient("127.0.0.1", 1)
            with pytest.raises(ServiceError, match="non-idempotent"):
                await client._request_idempotent({"type": "claim"})

        run(go())


class TestReconnectAndRetry:
    def test_hello_retries_through_dropped_frame(self, device):
        """A dropped HELLO is retried on a fresh connection and succeeds,
        and the server's telemetry sees the retry marker."""

        async def go():
            async with PpufAuthServer(workers=0, rounds=2, seed=5) as server:
                plan = FaultPlan().inject("drop", direction=C2S, message_type="hello")
                async with FaultyTransport(server.port, plan) as proxy:
                    client = ServiceClient(
                        "127.0.0.1",
                        proxy.port,
                        timeout=0.4,
                        retry=RetryPolicy(attempts=3, **FAST_RETRY),
                    )
                    async with client:
                        await client.enroll(device)
                        outcome = await client.authenticate(device)
                    retries = client.retries_performed
                stats = server.stats
            return outcome, retries, proxy.injected, stats

        outcome, retries, injected, stats = run(go())
        assert outcome.accepted
        assert injected["drop"] == 1
        assert retries >= 1
        assert stats.retries_observed >= 1

    def test_claim_reply_loss_is_not_retried(self, device):
        """Losing the reply to a CLAIM raises instead of resending: the
        nonce is consumed, so a blind resend would be a replay."""

        async def go():
            async with PpufAuthServer(workers=0, rounds=1, seed=5) as server:
                plan = FaultPlan().inject(
                    "drop", direction=S2C, message_type="verdict"
                )
                async with FaultyTransport(server.port, plan) as proxy:
                    client = ServiceClient(
                        "127.0.0.1",
                        proxy.port,
                        timeout=0.3,
                        retry=RetryPolicy(attempts=3, **FAST_RETRY),
                    )
                    async with client:
                        await client.enroll(device)
                        with pytest.raises(ServiceTimeout):
                            await client.authenticate(device)
                stats = server.stats
            return stats

        stats = run(go())
        # Exactly one claim reached the server; nothing was resent.
        assert stats.claims_verified == 1
        assert stats.replays_rejected == 0

    def test_enroll_retry_is_idempotent(self, device):
        """Enrolling twice (as a retry would) yields the same device id."""

        async def go():
            async with PpufAuthServer(workers=0, seed=5) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    first = await client.enroll(device)
                    second = await client.enroll(device)
                stats = server.stats
            return first, second, stats

        first, second, stats = run(go())
        assert first == second
        assert stats.enrollments == 2  # counted, but the registry deduplicated


class TestBlockingHelpers:
    def test_blocking_helpers_accept_resilience_kwargs(self, device):
        import threading

        from repro.service import authenticate_device, enroll_device, fetch_stats

        server = PpufAuthServer(workers=0, rounds=1, seed=5)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()

        async def start():
            await server.start()
            return server.port

        try:
            port = asyncio.run_coroutine_threadsafe(start(), loop).result(10)
            retry = RetryPolicy(attempts=2, **FAST_RETRY)
            enroll_device("127.0.0.1", port, device, timeout=5.0, retry=retry)
            outcome = authenticate_device(
                "127.0.0.1", port, device, timeout=5.0, retry=retry
            )
            stats = fetch_stats("127.0.0.1", port, timeout=5.0, retry=retry)
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()
        assert outcome.accepted
        assert stats["sessions_accepted"] == 1
