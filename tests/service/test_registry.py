"""Device registry: content-derived ids, persistence, reload."""

import json
import os

import numpy as np
import pytest

from repro.errors import ReproError, ServiceError
from repro.ppuf import Ppuf
from repro.ppuf.io import ppuf_to_dict
from repro.service import DeviceRegistry, device_id_for


@pytest.fixture(scope="module")
def tiny_ppuf():
    return Ppuf.create(6, 2, np.random.default_rng(31))


class TestDeviceIds:
    def test_id_is_stable_across_json_roundtrip(self, tiny_ppuf):
        public = ppuf_to_dict(tiny_ppuf)
        assert device_id_for(public) == device_id_for(json.loads(json.dumps(public)))

    def test_different_devices_get_different_ids(self, tiny_ppuf):
        other = Ppuf.create(6, 2, np.random.default_rng(32))
        assert device_id_for(ppuf_to_dict(tiny_ppuf)) != device_id_for(ppuf_to_dict(other))


class TestEnrollment:
    def test_enroll_and_lookup(self, tiny_ppuf, rng):
        registry = DeviceRegistry()
        device_id = registry.enroll_ppuf(tiny_ppuf)
        assert device_id in registry
        assert len(registry) == 1
        restored = registry.device(device_id)
        challenges = tiny_ppuf.challenge_space().random_batch(5, rng)
        assert np.array_equal(
            restored.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_reenroll_is_idempotent(self, tiny_ppuf):
        registry = DeviceRegistry()
        first = registry.enroll_ppuf(tiny_ppuf)
        assert registry.enroll_ppuf(tiny_ppuf) == first
        assert len(registry) == 1

    def test_unknown_device_raises(self):
        registry = DeviceRegistry()
        with pytest.raises(ServiceError):
            registry.public("deadbeef")
        with pytest.raises(ServiceError):
            registry.device("deadbeef")

    def test_malformed_description_rejected(self):
        registry = DeviceRegistry()
        with pytest.raises(ReproError):
            registry.enroll({"n": 5})


class TestCompiledArtifacts:
    def test_compiled_once_then_cached(self, tiny_ppuf, rng):
        registry = DeviceRegistry()
        device_id = registry.enroll_ppuf(tiny_ppuf)
        artifact = registry.compiled(device_id)
        assert artifact is registry.compiled(device_id)
        assert artifact.device_id == device_id
        assert not artifact.has_circuit_tables  # verification-only build
        challenges = tiny_ppuf.challenge_space().random_batch(8, rng)
        assert np.array_equal(
            artifact.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_compiled_unknown_device_raises(self):
        with pytest.raises(ServiceError):
            DeviceRegistry().compiled("deadbeef")

    def test_compiled_persists_as_npz_and_reloads(
        self, tiny_ppuf, tmp_path, rng, monkeypatch
    ):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        registry.compiled(device_id)
        assert os.path.exists(tmp_path / f"{device_id}.npz")

        reloaded = DeviceRegistry(str(tmp_path))
        # The restarted registry must come up from the persisted artifact —
        # recompiling here would mean the npz was written for nothing.
        monkeypatch.setattr(
            Ppuf, "compile", lambda *a, **k: pytest.fail("recompiled from scratch")
        )
        artifact = reloaded.compiled(device_id)
        challenges = tiny_ppuf.challenge_space().random_batch(8, rng)
        assert np.array_equal(
            artifact.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_npz_files_do_not_break_directory_reload(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        registry.compiled(device_id)
        reloaded = DeviceRegistry(str(tmp_path))
        assert len(reloaded) == 1  # the .npz next to the .json is not an entry

    def test_corrupt_artifact_is_recompiled(self, tiny_ppuf, tmp_path, rng):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        (tmp_path / f"{device_id}.npz").write_bytes(b"not an archive")
        artifact = registry.compiled(device_id)
        challenges = tiny_ppuf.challenge_space().random_batch(8, rng)
        assert np.array_equal(
            artifact.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )


class TestReload:
    """(Re)load must rebuild the fleet, not merge into stale state."""

    def test_reload_drops_deleted_devices(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        other = Ppuf.create(6, 2, np.random.default_rng(33))
        kept = registry.enroll_ppuf(tiny_ppuf)
        dropped = registry.enroll_ppuf(other)
        os.unlink(tmp_path / f"{dropped}.json")
        assert registry.load_directory() == 1
        assert kept in registry
        assert dropped not in registry
        assert len(registry) == 1
        with pytest.raises(ServiceError):
            registry.device(dropped)

    def test_reload_invalidates_cached_compiled_artifacts(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        registry.compiled(device_id)
        os.unlink(tmp_path / f"{device_id}.json")
        os.unlink(tmp_path / f"{device_id}.npz")
        registry.load_directory()
        # The warm artifact must not survive the fleet it belonged to: a
        # deleted-then-unknown id serves nothing, stale or otherwise.
        with pytest.raises(ServiceError):
            registry.compiled(device_id)

    def test_reenrolled_id_is_not_served_a_stale_artifact(self, tiny_ppuf, tmp_path, rng):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        registry.compiled(device_id)
        # Simulate the fleet directory being re-provisioned out from under
        # a running server: same id re-enrolled after a reload cycle.
        registry.load_directory()
        artifact = registry.compiled(device_id)
        assert artifact.device_id == device_id
        challenges = tiny_ppuf.challenge_space().random_batch(4, rng)
        assert np.array_equal(
            artifact.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_mismatched_filename_is_skipped_with_warning(
        self, tiny_ppuf, tmp_path, caplog
    ):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        # A renamed (or tampered-and-renamed) file must not enroll under an
        # id other than the digest its name claims.
        os.rename(tmp_path / f"{device_id}.json", tmp_path / ("ab" * 32 + ".json"))
        with caplog.at_level("WARNING"):
            loaded = registry.load_directory()
        assert loaded == 0
        assert device_id not in registry
        assert any("does not match" in record.message for record in caplog.records)

    def test_enroll_restores_missing_file(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        os.unlink(tmp_path / f"{device_id}.json")
        assert registry.enroll_ppuf(tiny_ppuf) == device_id
        assert os.path.exists(tmp_path / f"{device_id}.json")


class TestPackBackedRegistry:
    @pytest.fixture()
    def fleet(self):
        rng = np.random.default_rng(55)
        return [Ppuf.create(6, 2, rng) for _ in range(3)]

    @pytest.fixture()
    def pack_path(self, tmp_path, fleet):
        from repro.ppuf.pack import build_pack

        path = str(tmp_path / "fleet.pack")
        build_pack(path, (d.compile(include_circuit=False) for d in fleet))
        return path

    def test_pack_devices_count_as_enrolled(self, pack_path, fleet):
        registry = DeviceRegistry(pack=pack_path)
        assert len(registry) == 3
        for device in fleet:
            assert device_id_for(ppuf_to_dict(device)) in registry

    def test_compiled_serves_mmap_slices(self, pack_path, fleet, rng):
        registry = DeviceRegistry(pack=pack_path)
        for device in fleet:
            artifact = registry.compiled(device_id_for(ppuf_to_dict(device)))
            challenges = device.challenge_space().random_batch(4, rng)
            assert np.array_equal(
                artifact.response_bits(challenges), device.response_bits(challenges)
            )

    def test_device_falls_back_to_pack_artifact(self, pack_path, fleet):
        registry = DeviceRegistry(pack=pack_path)
        device_id = device_id_for(ppuf_to_dict(fleet[0]))
        served = registry.device(device_id)
        assert served.crossbar.n == 6  # challenge-issuing surface works
        with pytest.raises(ServiceError):
            registry.public(device_id)  # no public JSON was ever enrolled

    def test_directory_fallback_still_compiles(self, pack_path, tiny_ppuf, tmp_path, rng):
        # A device enrolled via JSON but absent from the pack takes the
        # legacy npz/compile path transparently.
        registry = DeviceRegistry(str(tmp_path / "reg"), pack=pack_path)
        device_id = registry.enroll_ppuf(tiny_ppuf)
        artifact = registry.compiled(device_id)
        challenges = tiny_ppuf.challenge_space().random_batch(4, rng)
        assert np.array_equal(
            artifact.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_warm_lru_is_bounded(self, pack_path, fleet, rng):
        registry = DeviceRegistry(pack=pack_path, compiled_cache_size=1)
        ids = [device_id_for(ppuf_to_dict(d)) for d in fleet]
        first = registry.compiled(ids[0])
        assert registry.compiled(ids[0]) is first  # warm hit
        registry.compiled(ids[1])  # evicts ids[0]
        assert len(registry._compiled) == 1
        # Cold in the registry again; the pack's own device LRU may still
        # hold the (immutable) view, so identity is allowed — what matters
        # is the bound above and that the served bits stay correct.
        refetched = registry.compiled(ids[0])
        challenges = fleet[0].challenge_space().random_batch(3, rng)
        assert np.array_equal(
            refetched.response_bits(challenges), fleet[0].response_bits(challenges)
        )

    def test_pack_device_cache_is_bounded_and_optional(self, pack_path, fleet):
        from repro.ppuf.pack import ArtifactPack

        ids = [device_id_for(ppuf_to_dict(d)) for d in fleet]
        pack = ArtifactPack(pack_path, cache_devices=1)
        first = pack.device(ids[0])
        assert pack.device(ids[0]) is first  # warm hit
        pack.device(ids[1])  # evicts ids[0]
        assert len(pack._cache) == 1
        assert pack.device(ids[0]) is not first  # rebuilt after eviction
        uncached = ArtifactPack(pack_path, cache_devices=0)
        assert uncached.device(ids[0]) is not uncached.device(ids[0])

    def test_loopback_auth_verifies_off_pack_slices(self, pack_path, fleet):
        import asyncio

        from repro.service import PpufAuthServer, ServiceClient

        async def go():
            registry = DeviceRegistry(pack=pack_path)
            server = PpufAuthServer(
                registry, workers=0, rounds=2, seed=5, deadline_seconds=30.0
            )
            async with server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    return await client.authenticate(fleet[0])

        outcome = asyncio.run(go())
        assert outcome.accepted and outcome.reason == "ok"


class TestPersistence:
    def test_enrollment_persists_and_reloads(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        assert os.path.exists(tmp_path / f"{device_id}.json")
        # no stray temp files from the atomic writer
        assert all(not name.endswith(".tmp") for name in os.listdir(tmp_path))

        reloaded = DeviceRegistry(str(tmp_path))
        assert device_id in reloaded
        assert len(reloaded) == 1

    def test_corrupt_entry_is_skipped_on_reload(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        (tmp_path / "corrupt.json").write_text("{truncated")
        reloaded = DeviceRegistry(str(tmp_path))
        assert device_id in reloaded
        assert len(reloaded) == 1
