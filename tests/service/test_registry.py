"""Device registry: content-derived ids, persistence, reload."""

import json
import os

import numpy as np
import pytest

from repro.errors import ReproError, ServiceError
from repro.ppuf import Ppuf
from repro.ppuf.io import ppuf_to_dict
from repro.service import DeviceRegistry, device_id_for


@pytest.fixture(scope="module")
def tiny_ppuf():
    return Ppuf.create(6, 2, np.random.default_rng(31))


class TestDeviceIds:
    def test_id_is_stable_across_json_roundtrip(self, tiny_ppuf):
        public = ppuf_to_dict(tiny_ppuf)
        assert device_id_for(public) == device_id_for(json.loads(json.dumps(public)))

    def test_different_devices_get_different_ids(self, tiny_ppuf):
        other = Ppuf.create(6, 2, np.random.default_rng(32))
        assert device_id_for(ppuf_to_dict(tiny_ppuf)) != device_id_for(ppuf_to_dict(other))


class TestEnrollment:
    def test_enroll_and_lookup(self, tiny_ppuf, rng):
        registry = DeviceRegistry()
        device_id = registry.enroll_ppuf(tiny_ppuf)
        assert device_id in registry
        assert len(registry) == 1
        restored = registry.device(device_id)
        challenges = tiny_ppuf.challenge_space().random_batch(5, rng)
        assert np.array_equal(
            restored.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_reenroll_is_idempotent(self, tiny_ppuf):
        registry = DeviceRegistry()
        first = registry.enroll_ppuf(tiny_ppuf)
        assert registry.enroll_ppuf(tiny_ppuf) == first
        assert len(registry) == 1

    def test_unknown_device_raises(self):
        registry = DeviceRegistry()
        with pytest.raises(ServiceError):
            registry.public("deadbeef")
        with pytest.raises(ServiceError):
            registry.device("deadbeef")

    def test_malformed_description_rejected(self):
        registry = DeviceRegistry()
        with pytest.raises(ReproError):
            registry.enroll({"n": 5})


class TestCompiledArtifacts:
    def test_compiled_once_then_cached(self, tiny_ppuf, rng):
        registry = DeviceRegistry()
        device_id = registry.enroll_ppuf(tiny_ppuf)
        artifact = registry.compiled(device_id)
        assert artifact is registry.compiled(device_id)
        assert artifact.device_id == device_id
        assert not artifact.has_circuit_tables  # verification-only build
        challenges = tiny_ppuf.challenge_space().random_batch(8, rng)
        assert np.array_equal(
            artifact.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_compiled_unknown_device_raises(self):
        with pytest.raises(ServiceError):
            DeviceRegistry().compiled("deadbeef")

    def test_compiled_persists_as_npz_and_reloads(
        self, tiny_ppuf, tmp_path, rng, monkeypatch
    ):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        registry.compiled(device_id)
        assert os.path.exists(tmp_path / f"{device_id}.npz")

        reloaded = DeviceRegistry(str(tmp_path))
        # The restarted registry must come up from the persisted artifact —
        # recompiling here would mean the npz was written for nothing.
        monkeypatch.setattr(
            Ppuf, "compile", lambda *a, **k: pytest.fail("recompiled from scratch")
        )
        artifact = reloaded.compiled(device_id)
        challenges = tiny_ppuf.challenge_space().random_batch(8, rng)
        assert np.array_equal(
            artifact.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )

    def test_npz_files_do_not_break_directory_reload(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        registry.compiled(device_id)
        reloaded = DeviceRegistry(str(tmp_path))
        assert len(reloaded) == 1  # the .npz next to the .json is not an entry

    def test_corrupt_artifact_is_recompiled(self, tiny_ppuf, tmp_path, rng):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        (tmp_path / f"{device_id}.npz").write_bytes(b"not an archive")
        artifact = registry.compiled(device_id)
        challenges = tiny_ppuf.challenge_space().random_batch(8, rng)
        assert np.array_equal(
            artifact.response_bits(challenges), tiny_ppuf.response_bits(challenges)
        )


class TestPersistence:
    def test_enrollment_persists_and_reloads(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        assert os.path.exists(tmp_path / f"{device_id}.json")
        # no stray temp files from the atomic writer
        assert all(not name.endswith(".tmp") for name in os.listdir(tmp_path))

        reloaded = DeviceRegistry(str(tmp_path))
        assert device_id in reloaded
        assert len(reloaded) == 1

    def test_corrupt_entry_is_skipped_on_reload(self, tiny_ppuf, tmp_path):
        registry = DeviceRegistry(str(tmp_path))
        device_id = registry.enroll_ppuf(tiny_ppuf)
        (tmp_path / "corrupt.json").write_text("{truncated")
        reloaded = DeviceRegistry(str(tmp_path))
        assert device_id in reloaded
        assert len(reloaded) == 1
