"""Wire framing and payload (de)serialisation."""

import asyncio
import json

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ppuf import Ppuf, PpufProver
from repro.service import wire


def read_from_bytes(payload: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return await wire.read_message(reader, **kwargs)

    return asyncio.run(go())


class TestFraming:
    def test_roundtrip(self):
        message = {"type": "hello", "device_id": "abc", "rounds": 3}
        assert read_from_bytes(wire.encode_message(message)) == message

    def test_eof_returns_none(self):
        assert read_from_bytes(b"") is None

    def test_malformed_json_rejected(self):
        with pytest.raises(ServiceError):
            read_from_bytes(b"{not json}\n")

    def test_non_object_rejected(self):
        with pytest.raises(ServiceError):
            read_from_bytes(b"[1, 2, 3]\n")

    def test_missing_type_rejected(self):
        with pytest.raises(ServiceError):
            read_from_bytes(b'{"no_type": 1}\n')

    def test_oversize_frame_rejected(self):
        big = json.dumps({"type": "x", "pad": "y" * 4096}).encode() + b"\n"
        with pytest.raises(ServiceError):
            read_from_bytes(big, limit=1024)


class TestChallengePayload:
    def test_roundtrip(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        restored = wire.challenge_from_wire(wire.challenge_to_wire(challenge))
        assert restored.source == challenge.source
        assert restored.sink == challenge.sink
        assert np.array_equal(restored.bits, challenge.bits)

    def test_malformed_rejected(self):
        with pytest.raises(ServiceError):
            wire.challenge_from_wire({"source": 0})


class TestClaimPayload:
    def test_roundtrip_preserves_verifiability(self, rng):
        from repro.ppuf import PpufVerifier

        ppuf = Ppuf.create(8, 2, np.random.default_rng(5))
        challenge = ppuf.challenge_space().random(rng)
        claim = PpufProver(ppuf.network_a).answer_compact(challenge)
        over_the_wire = json.loads(json.dumps(wire.claim_to_wire(claim)))
        restored = wire.claim_from_wire(over_the_wire)
        assert restored.value == claim.value
        assert PpufVerifier(ppuf.network_a).verify_compact(restored)

    def test_malformed_rejected(self):
        with pytest.raises(ServiceError):
            wire.claim_from_wire({"paths": "nope"})
