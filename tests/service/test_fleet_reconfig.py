"""Live fleet reconfiguration through the shared shard-map file.

The acceptance surface for the hot drain/scale path: scaling a *running*
fleet 2→3 shards remaps a bounded fraction (≤ 40%) of 1k device ids,
sessions pinned to untouched shards never fail during the change, a
draining shard receives zero new sessions while a session pinned to it
pre-drain completes, and two independent routers watching the same file
route identically.  The in-process tests use real ``PpufAuthServer``s
over one shared registry (exactly a fleet mapping one shared pack); the
subprocess test drives the full supervisor reconcile loop, including the
settle-then-SIGTERM drain lifecycle that ``repro fleet drain`` triggers.
"""

import asyncio

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.ppuf import Ppuf, build_pack
from repro.ppuf.io import ppuf_to_dict
from repro.service import (
    DeviceRegistry,
    PpufAuthServer,
    RetryPolicy,
    ServiceClient,
)
from repro.service.fleet import (
    ACTIVE,
    DOWN,
    DRAINING,
    FleetRouter,
    FleetSupervisor,
    ShardDescriptor,
    ShardMap,
    ShardMapFile,
    ShardWorkerSpec,
)
from repro.service.registry import device_id_for

DEVICE_COUNT = 6
FAST_POLL = 0.02
SYNTHETIC_IDS = [f"{index:064x}" for index in range(1000)]


@pytest.fixture(scope="module")
def devices():
    # Seed base 60: ids split across both rendezvous shards (see
    # test_fleet_router.py).
    return [
        Ppuf.create(8, 2, np.random.default_rng(60 + i))
        for i in range(DEVICE_COUNT)
    ]


def run(coroutine):
    return asyncio.run(coroutine)


def device_id(device) -> str:
    return device_id_for(ppuf_to_dict(device))


async def _wait_for(predicate, *, timeout=10.0, interval=0.02, what="condition"):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(interval)


class MappedFleet:
    """In-process shards over one shared registry, routed via a map file.

    Every server shares a single :class:`DeviceRegistry` object — the
    in-process analogue of a production fleet whose shards all map one
    shared artifact pack — so any shard can verify any enrolled device
    and a drain's rerouted sessions still succeed.
    """

    def __init__(self, map_path, *, shard_count=2, router_count=1):
        self.map_path = str(map_path)
        self.shard_count = shard_count
        self.router_count = router_count
        self.map_file = ShardMapFile(self.map_path)
        self.registry = DeviceRegistry()
        self.servers = []
        self.routers = []

    async def __aenter__(self):
        initial = ShardMap()
        for _ in range(self.shard_count):
            server = await self._start_server()
            initial.add(
                ShardDescriptor(
                    name=f"shard-{len(self.servers) - 1}", port=server.port
                )
            )
        self.map_file.publish(initial)
        for _ in range(self.router_count):
            router = FleetRouter(
                map_file=self.map_path,
                map_poll_interval=FAST_POLL,
                shard_connect_timeout=1.0,
                stats_timeout=1.0,
            )
            self.routers.append(await router.start())
        return self

    async def __aexit__(self, *exc_info):
        for router in self.routers:
            await router.stop()
        for server in self.servers:
            await server.stop()

    async def _start_server(self):
        server = PpufAuthServer(self.registry, workers=0, rounds=2, seed=5)
        await server.start()
        self.servers.append(server)
        return server

    async def add_shard(self) -> str:
        server = await self._start_server()
        name = f"shard-{len(self.servers) - 1}"
        self.map_file.mutate(
            lambda m: m.add(ShardDescriptor(name=name, port=server.port))
        )
        return name

    def drain(self, name: str) -> None:
        self.map_file.mutate(lambda m: m.drain(name))

    async def wait_for_version(self, version: int) -> None:
        await _wait_for(
            lambda: all(
                (router.map_version or 0) >= version for router in self.routers
            ),
            what=f"routers to reach map v{version}",
        )

    def server_for(self, name: str):
        return self.servers[int(name.rsplit("-", 1)[1])]


async def _authenticate(port, device, **kwargs):
    async with ServiceClient(
        "127.0.0.1", port, retry=RetryPolicy.no_retry()
    ) as client:
        return await client.authenticate(device, rounds=1, **kwargs)


class TestTwoRoutersOneFile:
    def test_scale_bounds_remap_and_routers_agree(self, devices, tmp_path):
        async def go():
            results = {}
            async with MappedFleet(
                tmp_path / "map.json", shard_count=2, router_count=2
            ) as fleet:
                router_a, router_b = fleet.routers
                async with ServiceClient("127.0.0.1", router_a.port) as client:
                    for device in devices:
                        await client.enroll(device)

                before = {
                    d: router_a.shard_map.shard_for(d).name
                    for d in SYNTHETIC_IDS
                }
                await fleet.add_shard()
                await fleet.wait_for_version(2)

                # Both routers converged on the identical 3-shard map.
                results["after_a"] = {
                    d: router_a.shard_map.shard_for(d).name
                    for d in SYNTHETIC_IDS
                }
                results["after_b"] = {
                    d: router_b.shard_map.shard_for(d).name
                    for d in SYNTHETIC_IDS
                }
                results["before"] = before
                results["reloads"] = (
                    router_a.stats.map_reloads,
                    router_b.stats.map_reloads,
                )

                # Live traffic through both front doors after the scale.
                for router in (router_a, router_b):
                    outcomes = await asyncio.gather(
                        *(
                            _authenticate(router.port, device)
                            for device in devices
                        )
                    )
                    assert all(outcome.accepted for outcome in outcomes)
                results["per_shard_sessions"] = [
                    server.stats.snapshot()["sessions_accepted"]
                    for server in fleet.servers
                ]
            return results

        results = run(go())
        assert results["after_a"] == results["after_b"], (
            "two routers on one map file must route identically"
        )
        moved = sum(
            1
            for d in SYNTHETIC_IDS
            if results["after_a"][d] != results["before"][d]
        )
        # Rendezvous bound: growth 2→3 moves ~1/3 of keys; 40% with slack.
        assert 0 < moved <= 400, moved
        # Only the new shard gained keys — survivors kept theirs.
        for d in SYNTHETIC_IDS:
            if results["after_a"][d] != results["before"][d]:
                assert results["after_a"][d] == "shard-2"
        assert all(count >= 1 for count in results["reloads"])
        # The new shard is serving real sessions, not just map entries.
        assert results["per_shard_sessions"][2] > 0


class TestDrainInvariant:
    def test_pinned_session_completes_while_drain_diverts_new_ones(
        self, devices, tmp_path
    ):
        async def go():
            async with MappedFleet(
                tmp_path / "map.json", shard_count=2, router_count=1
            ) as fleet:
                router = fleet.routers[0]
                async with ServiceClient("127.0.0.1", router.port) as client:
                    for device in devices:
                        await client.enroll(device)

                victim = router.shard_map.shard_for(device_id(devices[0])).name
                victim_server = fleet.server_for(victim)
                opened_before = victim_server.stats.sessions_opened

                # Pin a session to the victim, then stall it: the client
                # sleeps before answering the challenge, leaving the
                # session open across the drain.
                pinned = asyncio.create_task(
                    _authenticate(router.port, devices[0], delay=1.5)
                )
                await _wait_for(
                    lambda: victim_server.stats.sessions_opened
                    == opened_before + 1,
                    what="pinned session to open on the victim shard",
                )

                fleet.drain(victim)
                await fleet.wait_for_version(2)
                assert router.shard_map.get(victim).state == DRAINING
                opened_at_drain = victim_server.stats.sessions_opened

                # New sessions — including for devices the victim owned —
                # must all succeed on the surviving shard.
                fresh = await asyncio.gather(
                    *(_authenticate(router.port, device) for device in devices)
                )
                assert all(outcome.accepted for outcome in fresh)

                # The pinned session survived the drain end to end.
                outcome = await pinned
                assert outcome.accepted

                return (
                    victim_server.stats.sessions_opened,
                    opened_at_drain,
                    victim_server.stats.sessions_accepted,
                )

        opened_after, opened_at_drain, victim_accepted = run(go())
        # Zero *new* sessions reached the draining shard…
        assert opened_after == opened_at_drain
        # …and the one pinned before the drain completed on it.
        assert victim_accepted >= 1


class TestCliMutations:
    """`repro fleet scale/drain/remove` rewrite the file like the library."""

    @pytest.fixture
    def published(self, tmp_path):
        path = str(tmp_path / "map.json")
        ShardMapFile(path).publish(
            ShardMap(
                [
                    ShardDescriptor(name="shard-0", port=9001),
                    ShardDescriptor(name="shard-1", port=9002),
                ]
            )
        )
        return path

    def test_scale_up_adds_placeholders(self, published, capsys):
        assert (
            cli_main(["fleet", "scale", "--map-file", published, "--shards", "4"])
            == 0
        )
        shard_map, version = ShardMapFile(published).load()
        assert version == 2
        placeholders = [s for s in shard_map.shards() if s.port == 0]
        assert [s.name for s in placeholders] == ["shard-2", "shard-3"]
        assert all(s.state == DOWN for s in placeholders)

    def test_scale_down_drains_real_and_cancels_placeholders(self, published):
        cli_main(["fleet", "scale", "--map-file", published, "--shards", "3"])
        cli_main(["fleet", "scale", "--map-file", published, "--shards", "1"])
        shard_map, _ = ShardMapFile(published).load()
        # The unbound placeholder was cancelled outright…
        assert "shard-2" not in shard_map
        # …and one real shard entered the drain lifecycle.
        states = {s.name: s.state for s in shard_map.shards()}
        assert sorted(states.values()) == [ACTIVE, DRAINING]

    def test_drain_and_remove(self, published):
        assert (
            cli_main(["fleet", "drain", "shard-0", "--map-file", published]) == 0
        )
        shard_map, _ = ShardMapFile(published).load()
        assert shard_map.get("shard-0").state == DRAINING
        assert (
            cli_main(["fleet", "remove", "shard-0", "--map-file", published]) == 0
        )
        shard_map, _ = ShardMapFile(published).load()
        assert "shard-0" not in shard_map

    def test_unknown_shard_is_a_clean_error(self, published, capsys):
        assert (
            cli_main(["fleet", "drain", "shard-9", "--map-file", published]) == 2
        )
        assert "unknown shard" in capsys.readouterr().err
        # The failed mutation left the file untouched.
        _, version = ShardMapFile(published).load()
        assert version == 1

    def test_missing_map_file_is_a_clean_error(self, tmp_path, capsys):
        path = str(tmp_path / "absent.json")
        assert cli_main(["fleet", "scale", "--map-file", path, "--shards", "2"]) == 2
        assert "no shard-map file" in capsys.readouterr().err


class TestSupervisorReconcile:
    def test_adopts_and_releases_remote_shards(self):
        """A descriptor this supervisor didn't spawn becomes a probe-only
        remote worker, and its deletion releases (never SIGTERMs) it."""

        async def go():
            supervisor = FleetSupervisor(1, ShardWorkerSpec())
            local = ShardDescriptor(name="shard-0", host="127.0.0.1", port=5555)
            remote = ShardDescriptor(name="remote-0", host="10.9.9.9", port=7000)
            await supervisor._reconcile(ShardMap([local, remote]), 1)
            adopted = supervisor.workers["remote-0"]
            assert adopted.remote
            assert (adopted.host, adopted.port) == ("10.9.9.9", 7000)
            assert not supervisor.workers["shard-0"].remote
            assert supervisor.shard_map.get("remote-0").state == ACTIVE

            await supervisor._reconcile(ShardMap([local]), 2)
            assert "remote-0" not in supervisor.workers
            assert "remote-0" not in supervisor.shard_map
            return [event["event"] for event in supervisor.events]

        events = run(go())
        assert "adopted" in events
        assert "released" in events

    def test_foreign_placeholder_is_not_spawned(self):
        """A port-0 descriptor for another host is that host's spawn
        request — this supervisor must neither spawn nor adopt it."""

        async def go():
            supervisor = FleetSupervisor(1, ShardWorkerSpec())
            local = ShardDescriptor(name="shard-0", host="127.0.0.1", port=5555)
            foreign = ShardDescriptor(
                name="other-0", host="10.0.0.2", port=0, state=DOWN
            )
            await supervisor._reconcile(ShardMap([local, foreign]), 1)
            return dict(supervisor.workers)

        workers = run(go())
        assert "other-0" not in workers


@pytest.fixture(scope="module")
def fleet_pack(tmp_path_factory, devices):
    path = str(tmp_path_factory.mktemp("reconfig") / "fleet.pack")
    build_pack(path, [device.compile(include_circuit=False) for device in devices])
    return path


class TestSupervisedReconfiguration:
    def test_scale_then_drain_a_live_subprocess_fleet(
        self, fleet_pack, devices, tmp_path
    ):
        """The full tentpole path: CLI-style file mutations reconfigure a
        running supervised fleet — spawn on scale-up, settle-then-SIGTERM
        on drain — while an external router keeps serving."""
        map_path = str(tmp_path / "map.json")

        async def go():
            spec = ShardWorkerSpec(pack=fleet_pack, rounds=1, seed=13)
            supervisor = FleetSupervisor(
                2,
                spec,
                map_file=map_path,
                map_poll_interval=FAST_POLL,
                probe_interval=0.25,
                restart_policy=RetryPolicy(base_delay=0.05, max_delay=0.2, seed=0),
            )
            results = {}
            await supervisor.start()
            try:
                # The router knows the fleet ONLY through the file — no
                # shared objects with the supervisor.
                async with FleetRouter(
                    map_file=map_path, map_poll_interval=FAST_POLL
                ) as router:
                    outcomes = await asyncio.gather(
                        *(_authenticate(router.port, d) for d in devices)
                    )
                    assert all(o.accepted for o in outcomes)

                    before = {
                        d: router.shard_map.shard_for(d).name
                        for d in SYNTHETIC_IDS
                    }

                    # --- scale 2→3 exactly as `repro fleet scale` does ---
                    ShardMapFile(map_path).mutate(
                        lambda m: m.add(
                            ShardDescriptor(
                                name="shard-2",
                                host="127.0.0.1",
                                port=0,
                                state=DOWN,
                            )
                        )
                    )
                    await _wait_for(
                        lambda: (
                            "shard-2" in router.shard_map
                            and router.shard_map.get("shard-2").state == ACTIVE
                            and router.shard_map.get("shard-2").port != 0
                        ),
                        timeout=60.0,
                        what="scale-up to propagate through supervisor to router",
                    )
                    results["after"] = {
                        d: router.shard_map.shard_for(d).name
                        for d in SYNTHETIC_IDS
                    }
                    results["before"] = before

                    # Zero failed verdicts across the membership change.
                    outcomes = await asyncio.gather(
                        *(_authenticate(router.port, d) for d in devices)
                    )
                    assert all(o.accepted for o in outcomes)

                    # --- drain shard-0 as `repro fleet drain` does ---
                    ShardMapFile(map_path).mutate(lambda m: m.drain("shard-0"))
                    await _wait_for(
                        lambda: "shard-0" not in router.shard_map,
                        timeout=60.0,
                        what="drained shard to settle and leave the map",
                    )
                    await _wait_for(
                        lambda: "shard-0" not in supervisor.workers,
                        timeout=60.0,
                        what="supervisor to decommission the drained worker",
                    )

                    # Devices shard-0 owned remapped and still authenticate.
                    outcomes = await asyncio.gather(
                        *(_authenticate(router.port, d) for d in devices)
                    )
                    assert all(o.accepted for o in outcomes)
                    results["events"] = [
                        event["event"] for event in supervisor.events
                    ]
            finally:
                await supervisor.stop()
            return results

        results = run(go())
        moved = sum(
            1
            for d in SYNTHETIC_IDS
            if results["after"][d] != results["before"][d]
        )
        assert 0 < moved <= 400, moved
        for event in ("spawned", "draining", "settled", "stopped"):
            assert event in results["events"], event
