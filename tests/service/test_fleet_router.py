"""FleetRouter against in-process shard servers: routing, stats, failure.

These tests keep every shard in-process (real ``PpufAuthServer``s on
ephemeral loopback ports) so the wire path is identical to production
while tier-1 stays fast; the subprocess supervisor is exercised
separately in ``test_fleet.py``.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ppuf import Ppuf
from repro.ppuf.io import ppuf_to_dict
from repro.service import PpufAuthServer, ServiceClient, wire
from repro.service.fleet import FleetRouter, ShardDescriptor, ShardMap
from repro.service.registry import device_id_for


@pytest.fixture(scope="module")
def devices():
    # Seed base 60: the six ids split 3/3 across two rendezvous shards.
    return [Ppuf.create(8, 2, np.random.default_rng(60 + i)) for i in range(6)]


def run(coroutine):
    return asyncio.run(coroutine)


class Fleet:
    """Two in-process shards behind a router, torn down in one place."""

    def __init__(self, shard_count=2):
        self.shard_count = shard_count
        self.shard_map = ShardMap()
        self.servers = []
        self.router = None

    async def __aenter__(self):
        for index in range(self.shard_count):
            server = PpufAuthServer(workers=0, rounds=2, seed=5)
            await server.start()
            self.servers.append(server)
            self.shard_map.add(
                ShardDescriptor(name=f"shard-{index}", port=server.port)
            )
        self.router = await FleetRouter(
            self.shard_map, shard_connect_timeout=1.0, stats_timeout=1.0
        ).start()
        return self

    async def __aexit__(self, *exc_info):
        await self.router.stop()
        for server in self.servers:
            await server.stop()

    def owner_index(self, device) -> int:
        device_id = device_id_for(ppuf_to_dict(device))
        return int(self.shard_map.shard_for(device_id).name.split("-")[1])


class TestRoutedEnrollment:
    def test_one_connection_enrolls_onto_owner_shards(self, devices):
        """Each ENROLL on a shared connection lands on its own owner."""

        async def go():
            async with Fleet() as fleet:
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    for device in devices:
                        device_id = await client.enroll(device)
                        assert device_id == device_id_for(ppuf_to_dict(device))
                placements = [set(s.registry.ids()) for s in fleet.servers]
                owners = [fleet.owner_index(d) for d in devices]
            return placements, owners

        placements, owners = run(go())
        for device_index, owner in enumerate(owners):
            for shard_index, ids in enumerate(placements):
                device = devices[device_index]
                device_id = device_id_for(ppuf_to_dict(device))
                assert (device_id in ids) == (shard_index == owner)
        assert len({*owners}) > 1, "fixture devices all hash to one shard"

    def test_authenticate_through_router(self, devices):
        async def go():
            async with Fleet() as fleet:
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    for device in devices:
                        await client.enroll(device)
                outcomes = []
                for device in devices:
                    async with ServiceClient(
                        "127.0.0.1", fleet.router.port
                    ) as client:
                        outcomes.append(await client.authenticate(device, rounds=1))
                per_shard = [s.stats.snapshot() for s in fleet.servers]
                owners = [fleet.owner_index(d) for d in devices]
            return outcomes, per_shard, owners

        outcomes, per_shard, owners = run(go())
        assert all(o.accepted for o in outcomes)
        # Sessions landed exactly where rendezvous says they must.
        for shard_index, snapshot in enumerate(per_shard):
            want = sum(1 for owner in owners if owner == shard_index)
            assert snapshot["sessions_accepted"] == want

    def test_tampered_claim_rejected_through_router(self, devices):
        async def go():
            async with Fleet() as fleet:
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    await client.enroll(devices[0])
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    return await client.authenticate(
                        devices[0],
                        rounds=1,
                        tamper=lambda c: {**c, "value": c["value"] * 2.0},
                    )

        outcome = run(go())
        assert not outcome.accepted and outcome.reason == "incorrect"


class TestFleetStats:
    def test_merged_equals_sum_of_shards(self, devices):
        async def go():
            async with Fleet() as fleet:
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    for device in devices:
                        await client.enroll(device)
                for device in devices:
                    async with ServiceClient(
                        "127.0.0.1", fleet.router.port
                    ) as client:
                        await client.authenticate(device, rounds=1)
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    reply = await client.request_ok({"type": wire.STATS})
                per_shard = [s.stats.snapshot() for s in fleet.servers]
            return reply, per_shard

        reply, per_shard = run(go())
        merged, fleet_info = reply["stats"], reply["fleet"]
        for counter in (
            "enrollments",
            "sessions_opened",
            "sessions_accepted",
            "claims_verified",
        ):
            assert merged[counter] == sum(s[counter] for s in per_shard), counter
        assert merged["enrollments"] == len(devices)
        assert merged["verify_latency"]["observations"] == sum(
            s["verify_latency"]["observations"] for s in per_shard
        )
        assert fleet_info["healthy_shards"] == 2
        assert len(fleet_info["shards"]) == 2
        assert fleet_info["router"]["connections_routed"] == len(devices)
        assert fleet_info["router"]["protocol_errors"] == 0

    def test_existing_client_stats_helper_works_on_a_fleet(self, devices):
        """ServiceClient.stats() sees a fleet exactly like one server."""

        async def go():
            async with Fleet() as fleet:
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    await client.enroll(devices[0])
                    return await client.stats()

        stats = run(go())
        assert stats["enrollments"] == 1
        assert "verify_latency" in stats

    def test_down_shard_reported_not_fatal(self, devices):
        async def go():
            async with Fleet() as fleet:
                await fleet.servers[0].stop()  # shard dies, router stays up
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    return await client.request_ok({"type": wire.STATS})

        reply = run(go())
        assert reply["fleet"]["healthy_shards"] == 1
        states = {s["name"]: s["healthy"] for s in reply["fleet"]["shards"]}
        assert states == {"shard-0": False, "shard-1": True}


class TestRouterFailureModes:
    def test_hello_for_down_shard_gets_clean_error(self, devices):
        async def go():
            async with Fleet() as fleet:
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    for device in devices:
                        await client.enroll(device)
                victim = fleet.owner_index(devices[0])
                await fleet.servers[victim].stop()
                async with ServiceClient(
                    "127.0.0.1", fleet.router.port, timeout=5.0
                ) as client:
                    with pytest.raises(ServiceError, match="unavailable"):
                        await client.authenticate(devices[0], rounds=1)
                router_stats = fleet.router.stats.snapshot()
            return router_stats

        stats = run(go())
        assert stats["shard_unavailable"] >= 1

    def test_unroutable_first_frame_gets_error_not_hang(self):
        async def go():
            async with Fleet() as fleet:
                async with ServiceClient(
                    "127.0.0.1", fleet.router.port, timeout=5.0
                ) as client:
                    reply = await client.request(
                        {"type": wire.CLAIM, "session": "x", "nonce": "y"}
                    )
                router_stats = fleet.router.stats.snapshot()
            return reply, router_stats

        reply, stats = run(go())
        assert reply["type"] == wire.ERROR
        assert "hello" in reply["error"]
        assert stats["unroutable_frames"] == 1

    def test_malformed_hello_counted_as_protocol_error(self):
        async def go():
            async with Fleet() as fleet:
                async with ServiceClient(
                    "127.0.0.1", fleet.router.port, timeout=5.0
                ) as client:
                    reply = await client.request(
                        {"type": wire.HELLO, "device_id": 17}
                    )
                router_stats = fleet.router.stats.snapshot()
            return reply, router_stats

        reply, stats = run(go())
        assert reply["type"] == wire.ERROR
        assert stats["protocol_errors"] == 1

    def test_all_draining_fleet_error_names_the_drain(self, devices):
        """The ERROR frame distinguishes a planned drain from an outage."""

        async def go():
            shard_map = ShardMap()
            shard_map.add(ShardDescriptor(name="shard-0", port=1))
            shard_map.drain("shard-0")
            async with FleetRouter(shard_map) as router:
                async with ServiceClient(
                    "127.0.0.1", router.port, timeout=5.0
                ) as client:
                    return await client.request(
                        {"type": wire.HELLO, "device_id": "ab" * 32}
                    )

        reply = run(go())
        assert reply["type"] == wire.ERROR
        assert "fleet is draining" in reply["error"]

    def test_empty_map_error_names_the_emptiness(self):
        async def go():
            async with FleetRouter(ShardMap()) as router:
                async with ServiceClient(
                    "127.0.0.1", router.port, timeout=5.0
                ) as client:
                    return await client.request(
                        {"type": wire.HELLO, "device_id": "ab" * 32}
                    )

        reply = run(go())
        assert reply["type"] == wire.ERROR
        assert "shard map is empty" in reply["error"]

    def test_concurrent_sessions_through_router(self, devices):
        async def one(port, device):
            async with ServiceClient("127.0.0.1", port) as client:
                return await client.authenticate(device, rounds=1)

        async def go():
            async with Fleet() as fleet:
                async with ServiceClient("127.0.0.1", fleet.router.port) as client:
                    for device in devices:
                        await client.enroll(device)
                outcomes = await asyncio.gather(
                    *(
                        one(fleet.router.port, devices[i % len(devices)])
                        for i in range(16)
                    )
                )
                per_shard = [s.stats.snapshot() for s in fleet.servers]
            return outcomes, per_shard

        outcomes, per_shard = run(go())
        assert len(outcomes) == 16
        assert all(o.accepted for o in outcomes)
        assert sum(s["sessions_accepted"] for s in per_shard) == 16
