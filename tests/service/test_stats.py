"""Counters and the verify-latency histogram."""

import pytest

from repro.service import LatencyHistogram, ServerStats


class TestLatencyHistogram:
    def test_buckets_are_cumulative_edges(self):
        histogram = LatencyHistogram(edges=(1e-3, 1e-2, 1e-1))
        for value in (5e-4, 5e-3, 5e-2, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.observations == 4
        assert histogram.max_seconds == 5.0
        assert histogram.mean_seconds == pytest.approx((5e-4 + 5e-3 + 5e-2 + 5.0) / 4)

    def test_snapshot_shape(self):
        histogram = LatencyHistogram(edges=(1e-3, 1.0))
        histogram.observe(2.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"le_0.001": 0, "le_1": 0, "inf": 1}
        assert snapshot["observations"] == 1

    def test_empty_histogram_mean_is_zero(self):
        assert LatencyHistogram().mean_seconds == 0.0


class TestServerStats:
    def test_snapshot_contains_every_counter(self):
        stats = ServerStats()
        stats.sessions_opened += 2
        stats.deadline_misses += 1
        stats.verify_latency.observe(0.5)
        snapshot = stats.snapshot()
        assert snapshot["sessions_opened"] == 2
        assert snapshot["deadline_misses"] == 1
        assert snapshot["verify_latency"]["observations"] == 1
        for key in (
            "enrollments",
            "sessions_accepted",
            "sessions_rejected",
            "sessions_expired",
            "rounds_issued",
            "claims_verified",
            "replays_rejected",
            "unknown_devices",
            "protocol_errors",
            "solver_latency",
        ):
            assert key in snapshot

    def test_observe_verify_attributes_per_algorithm(self):
        stats = ServerStats()
        stats.observe_verify("dinic", 0.01)
        stats.observe_verify("push_relabel", 0.02)
        stats.observe_verify("push_relabel", 0.03)
        assert stats.claims_verified == 3
        assert stats.verify_latency.observations == 3
        snapshot = stats.snapshot()["solver_latency"]
        assert snapshot["dinic"]["observations"] == 1
        assert snapshot["push_relabel"]["observations"] == 2

    def test_unregistered_algorithm_bucketed_as_unknown(self):
        stats = ServerStats()
        for label in ("simplex", None, 42, "also-not-a-solver"):
            stats.observe_verify(label, 0.01)
        assert set(stats.solver_latency) == {"unknown"}
        assert stats.solver_latency["unknown"].observations == 4
