"""Counters and the verify-latency histogram."""

import random

import pytest

from repro.errors import ServiceError
from repro.service import LatencyHistogram, ServerStats
from repro.service.stats import merge_histogram_snapshots


class TestLatencyHistogram:
    def test_buckets_are_cumulative_edges(self):
        histogram = LatencyHistogram(edges=(1e-3, 1e-2, 1e-1))
        for value in (5e-4, 5e-3, 5e-2, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.observations == 4
        assert histogram.max_seconds == 5.0
        assert histogram.mean_seconds == pytest.approx((5e-4 + 5e-3 + 5e-2 + 5.0) / 4)

    def test_snapshot_shape(self):
        histogram = LatencyHistogram(edges=(1e-3, 1.0))
        histogram.observe(2.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"le_0.001": 0, "le_1": 0, "inf": 1}
        assert snapshot["observations"] == 1

    def test_empty_histogram_mean_is_zero(self):
        assert LatencyHistogram().mean_seconds == 0.0


class TestServerStats:
    def test_snapshot_contains_every_counter(self):
        stats = ServerStats()
        stats.sessions_opened += 2
        stats.deadline_misses += 1
        stats.verify_latency.observe(0.5)
        snapshot = stats.snapshot()
        assert snapshot["sessions_opened"] == 2
        assert snapshot["deadline_misses"] == 1
        assert snapshot["verify_latency"]["observations"] == 1
        for key in (
            "enrollments",
            "sessions_accepted",
            "sessions_rejected",
            "sessions_expired",
            "rounds_issued",
            "claims_verified",
            "replays_rejected",
            "unknown_devices",
            "protocol_errors",
            "solver_latency",
        ):
            assert key in snapshot

    def test_observe_verify_attributes_per_algorithm(self):
        stats = ServerStats()
        stats.observe_verify("dinic", 0.01)
        stats.observe_verify("push_relabel", 0.02)
        stats.observe_verify("push_relabel", 0.03)
        assert stats.claims_verified == 3
        assert stats.verify_latency.observations == 3
        snapshot = stats.snapshot()["solver_latency"]
        assert snapshot["dinic"]["observations"] == 1
        assert snapshot["push_relabel"]["observations"] == 2

    def test_unregistered_algorithm_bucketed_as_unknown(self):
        stats = ServerStats()
        for label in ("simplex", None, 42, "also-not-a-solver"):
            stats.observe_verify(label, 0.01)
        assert set(stats.solver_latency) == {"unknown"}
        assert stats.solver_latency["unknown"].observations == 4


class TestHistogramMerge:
    def test_merge_is_bucketwise_exact(self):
        """merge(a, b) == one histogram that observed the union."""
        rng = random.Random(5)
        samples_a = [rng.uniform(1e-4, 2.0) for _ in range(200)]
        samples_b = [rng.uniform(1e-4, 2.0) for _ in range(300)]
        a, b, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for value in samples_a:
            a.observe(value)
            union.observe(value)
        for value in samples_b:
            b.observe(value)
            union.observe(value)
        a.merge(b)
        assert a.counts == union.counts
        assert a.observations == union.observations == 500
        assert a.max_seconds == union.max_seconds
        assert a.mean_seconds == pytest.approx(union.mean_seconds)

    def test_merge_rejects_mismatched_edges(self):
        with pytest.raises(ServiceError):
            LatencyHistogram().merge(LatencyHistogram(edges=(1.0, 2.0)))

    def test_snapshot_level_merge_matches_object_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for value in (1e-4, 5e-3, 0.2):
            a.observe(value)
        for value in (2e-4, 7.0):
            b.observe(value)
        merged = merge_histogram_snapshots(a.snapshot(), b.snapshot())
        a.merge(b)
        want = a.snapshot()
        assert merged["buckets"] == want["buckets"]
        assert merged["observations"] == want["observations"]
        assert merged["max_seconds"] == want["max_seconds"]
        assert merged["mean_seconds"] == pytest.approx(want["mean_seconds"])

    def test_snapshot_merge_rejects_mismatched_buckets(self):
        a = LatencyHistogram().snapshot()
        b = LatencyHistogram(edges=(1.0,)).snapshot()
        with pytest.raises(ServiceError):
            merge_histogram_snapshots(a, b)


class TestMergeSnapshot:
    def _stats_observing(self, accepted, rejected, latencies):
        stats = ServerStats()
        stats.sessions_opened += accepted + rejected
        stats.sessions_accepted += accepted
        stats.sessions_rejected += rejected
        for latency in latencies:
            stats.observe_verify("dinic", latency)
        return stats

    def test_merged_counters_are_the_sum(self):
        a = self._stats_observing(3, 1, [0.01, 0.02])
        b = self._stats_observing(5, 0, [0.3])
        merged = ServerStats.merge_snapshot([a.snapshot(), b.snapshot()])
        assert merged["sessions_opened"] == 9
        assert merged["sessions_accepted"] == 8
        assert merged["sessions_rejected"] == 1
        assert merged["claims_verified"] == 3
        assert merged["verify_latency"]["observations"] == 3
        assert merged["solver_latency"]["dinic"]["observations"] == 3

    def test_merge_equals_single_observer(self):
        """Merging N shard snapshots == one server observing everything."""
        rng = random.Random(9)
        union = ServerStats()
        snapshots = []
        for _ in range(4):
            shard = ServerStats()
            for _ in range(rng.randrange(1, 20)):
                latency = rng.uniform(1e-4, 1.0)
                algorithm = rng.choice(["dinic", "push_relabel"])
                shard.observe_verify(algorithm, latency)
                union.observe_verify(algorithm, latency)
                shard.sessions_accepted += 1
                union.sessions_accepted += 1
            snapshots.append(shard.snapshot())
        merged = ServerStats.merge_snapshot(snapshots)
        want = union.snapshot()
        assert merged["sessions_accepted"] == want["sessions_accepted"]
        assert merged["claims_verified"] == want["claims_verified"]
        assert (
            merged["verify_latency"]["buckets"] == want["verify_latency"]["buckets"]
        )
        for name in ("dinic", "push_relabel"):
            assert (
                merged["solver_latency"][name]["buckets"]
                == want["solver_latency"][name]["buckets"]
            )

    def test_merge_of_nothing_is_empty(self):
        merged = ServerStats.merge_snapshot([])
        assert merged["sessions_opened"] == 0
        assert merged["verify_latency"]["observations"] == 0

    def test_disjoint_solver_buckets_union(self):
        a, b = ServerStats(), ServerStats()
        a.observe_verify("dinic", 0.01)
        b.observe_verify("push_relabel", 0.02)
        merged = ServerStats.merge_snapshot([a.snapshot(), b.snapshot()])
        assert set(merged["solver_latency"]) == {"dinic", "push_relabel"}
