"""Server fault containment: the satellite-bug regressions.

Each class pins one hardening guarantee: dispatch shape validation (the
missing-``type`` KeyError), worker-exception containment (a structurally
broken claim must not kill the connection), sweeper survival, the bounded
worker device cache, connection limits, verification timeouts, and
graceful drain on stop.
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ppuf import Ppuf
from repro.service import PpufAuthServer, ServiceClient, VerificationPool
from repro.runtime import provision as provision_module
from repro.service import server as server_module
from repro.service.sessions import SessionLimitExceeded, SessionManager
from repro.service import wire


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(8, 2, np.random.default_rng(41))


@pytest.fixture(scope="module")
def devices():
    return [Ppuf.create(8, 2, np.random.default_rng(100 + k)) for k in range(3)]


def run(coroutine):
    return asyncio.run(coroutine)


class TestDispatchShapeValidation:
    """Regression: a message without a 'type' key crashed ``_dispatch``."""

    @pytest.mark.parametrize(
        "message",
        [{}, {"typ": "hello"}, {"type": None}, {"type": 3}, {"type": ["hello"]}],
    )
    def test_missing_or_nonstring_type_is_protocol_error(self, message):
        server = PpufAuthServer(workers=0)
        reply = run(server._dispatch(message))
        assert reply["type"] == wire.ERROR
        assert "type" in reply["error"]
        assert server.stats.protocol_errors == 1

    def test_over_the_wire_missing_type(self, device):
        """Raw frame without 'type': an ERROR reply, not a dead handler."""

        async def go():
            async with PpufAuthServer(workers=0, seed=5) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b'{"no_type_here": 1}\n')
                await writer.drain()
                reply = json.loads(await reader.readline())
                writer.close()
                stats = server.stats
            return reply, stats

        reply, stats = run(go())
        assert reply["type"] == "error"
        assert stats.protocol_errors == 1
        assert stats.internal_errors == 0

    def test_client_rejects_typeless_reply(self):
        """``request_ok`` treats a typeless server reply as a protocol error."""

        async def fake_server(reader, writer):
            await reader.readline()
            writer.write(b"{}\n")
            await writer.drain()

        async def go():
            server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with ServiceClient("127.0.0.1", port, timeout=2.0) as client:
                    with pytest.raises(ServiceError, match="'type'"):
                        await client.request_ok({"type": wire.STATS})
            finally:
                server.close()
                await server.wait_closed()

        run(go())


class TestWorkerFaultContainment:
    """Regression: an exception escaping ``_verify_claim_task`` killed the
    connection.  ``float(10**400)`` raises ``OverflowError`` — outside the
    old ``(VerificationError, ServiceError)`` catch."""

    def test_structurally_broken_claim_is_contained(self, device):
        def break_claim(claim_wire):
            claim_wire = dict(claim_wire)
            claim_wire["value"] = 10**400  # OverflowError in claim_from_wire
            return claim_wire

        async def go():
            async with PpufAuthServer(workers=0, rounds=1, seed=5) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    outcome = await client.authenticate(device, tamper=break_claim)
                    # Same connection still works: the handler survived.
                    stats = await client.stats()
            return outcome, stats

        outcome, stats = run(go())
        assert not outcome.accepted
        assert outcome.reason == "infeasible"
        assert stats["worker_faults"] == 1
        assert stats["sessions_rejected"] == 1

    def test_verify_task_returns_fault_marker(self, device):
        from repro.ppuf.challenge import ChallengeSpace
        from repro.ppuf.io import ppuf_to_dict
        from repro.service.registry import device_id_for

        public = ppuf_to_dict(device)
        challenge = ChallengeSpace(device.crossbar).random(
            np.random.default_rng(0)
        )
        claim_wire = {
            "challenge": wire.challenge_to_wire(challenge),
            "paths": [],
            "value": 10**400,  # float() of this raises OverflowError
        }
        accepted, reason, seconds, fault = server_module._verify_claim_task(
            device_id_for(public), public, "a", claim_wire, 1e-9
        )
        assert (accepted, reason) == (False, "infeasible")
        assert seconds >= 0
        assert fault is not None and "OverflowError" in fault

    def test_expected_rejections_are_not_faults(self, device):
        """Malformed-but-anticipated claims count as infeasible, not faults."""

        def overflow_paths(claim):
            claim = dict(claim)
            claim["paths"] = [
                {**p, "value": p["value"] * 100.0} for p in claim["paths"]
            ]
            return claim

        async def go():
            async with PpufAuthServer(workers=0, rounds=1, seed=5) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    outcome = await client.authenticate(
                        device, tamper=overflow_paths
                    )
                    stats = await client.stats()
            return outcome, stats

        outcome, stats = run(go())
        assert not outcome.accepted and outcome.reason == "infeasible"
        assert stats["worker_faults"] == 0


class TestSweeperSurvival:
    """Regression: one ``expire_idle`` exception silently killed the sweeper."""

    def test_sweeper_survives_and_keeps_sweeping(self, device):
        async def go():
            async with PpufAuthServer(
                workers=0, seed=5, idle_timeout=0.1
            ) as server:
                real_expire = server.sessions.expire_idle
                failures = iter([RuntimeError("boom"), RuntimeError("boom again")])

                def flaky_expire():
                    try:
                        raise next(failures)
                    except StopIteration:
                        return real_expire()

                server.sessions.expire_idle = flaky_expire
                # Park a session so a later sweep has something to expire.
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    from repro.ppuf.io import ppuf_to_dict
                    from repro.service.registry import device_id_for

                    await client.request_ok(
                        {
                            "type": wire.HELLO,
                            "device_id": device_id_for(ppuf_to_dict(device)),
                            "network": "a",
                        }
                    )
                await asyncio.sleep(0.5)  # several sweep intervals
                assert not server._sweeper.done()
                stats = server.stats
            return stats

        stats = run(go())
        assert stats.sweeper_faults == 2
        assert stats.sessions_expired >= 1  # it kept sweeping afterwards


class TestWorkerDeviceCache:
    """Regression: the per-worker device cache grew with the enrolled fleet.

    The cache now lives in :mod:`repro.runtime.provision` (one LRU for
    every transport); the server's verify tasks go through it.
    """

    def test_cache_is_bounded_and_eviction_preserves_correctness(
        self, devices, monkeypatch
    ):
        monkeypatch.setattr(provision_module, "WORKER_DEVICE_CACHE_SIZE", 2)
        provision_module.clear_cache()

        async def go():
            # workers=0 verifies in-thread, sharing this process's cache.
            async with PpufAuthServer(workers=0, rounds=1, seed=5) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    for ppuf in devices:
                        await client.enroll(ppuf)
                    outcomes = [
                        await client.authenticate(ppuf) for ppuf in devices
                    ]
                    # The first device was evicted (3 devices, cap 2):
                    # re-verification must rebuild it and still accept.
                    outcomes.append(await client.authenticate(devices[0]))
            return outcomes

        outcomes = run(go())
        assert all(outcome.accepted for outcome in outcomes)
        assert provision_module.cache_size() <= 2

    def test_lru_order(self, monkeypatch):
        monkeypatch.setattr(provision_module, "WORKER_DEVICE_CACHE_SIZE", 2)
        provision_module.clear_cache()
        calls = []

        def fake_build(public):
            calls.append(public["id"])
            return object()

        monkeypatch.setattr(provision_module, "ppuf_from_dict", fake_build)
        a = provision_module.provision_device("a", {"id": "a"})
        provision_module.provision_device("b", {"id": "b"})
        # hit, bumps a
        assert provision_module.provision_device("a", {"id": "a"}) is a
        provision_module.provision_device("c", {"id": "c"})  # evicts b (LRU)
        assert list(provision_module._WORKER_DEVICES) == ["a", "c"]
        provision_module.provision_device("b", {"id": "b"})  # rebuild
        assert calls == ["a", "b", "c", "b"]
        provision_module.clear_cache()


class TestConnectionLimits:
    def test_total_connection_limit_rejects_with_error(self, device):
        async def go():
            async with PpufAuthServer(
                workers=0, seed=5, max_connections=1
            ) as server:
                async with ServiceClient("127.0.0.1", server.port) as holder:
                    await holder.enroll(device)
                    # Second concurrent connection is over the cap.
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    reply = json.loads(await reader.readline())
                    writer.close()
                    stats_mid = server.stats.connections_rejected
                # Holder gone: the server accepts again.
                async with ServiceClient("127.0.0.1", server.port) as client:
                    outcome = await client.authenticate(device)
                stats = server.stats
            return reply, stats_mid, outcome, stats

        reply, rejected_mid, outcome, stats = run(go())
        assert reply["type"] == "error"
        assert "capacity" in reply["error"]
        assert rejected_mid == 1
        assert outcome.accepted
        assert stats.connections_rejected == 1

    def test_per_connection_message_limit(self, device):
        async def go():
            async with PpufAuthServer(
                workers=0, seed=5, max_messages_per_connection=3
            ) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                replies = []
                for _ in range(4):
                    writer.write(b'{"type": "stats"}\n')
                    await writer.drain()
                    line = await reader.readline()
                    if not line:
                        break
                    replies.append(json.loads(line))
                writer.close()
                stats = server.stats
            return replies, stats

        replies, stats = run(go())
        assert [r["type"] for r in replies[:3]] == ["stats"] * 3
        assert replies[3]["type"] == "error"
        assert "limit" in replies[3]["error"]
        assert stats.connections_rejected == 1

    def test_session_limit_backpressure(self, device):
        manager = SessionManager(max_sessions=2, seed=0)
        manager.open("d", device, "a", 1)
        manager.open("d", device, "a", 1)
        with pytest.raises(SessionLimitExceeded):
            manager.open("d", device, "a", 1)
        # Closing frees capacity.
        session = next(iter(manager._sessions.values()))
        manager.close(session)
        manager.open("d", device, "a", 1)

    def test_session_limit_over_the_wire_is_an_error_reply(self, device):
        async def go():
            async with PpufAuthServer(
                workers=0, seed=5, max_sessions=1, idle_timeout=60.0
            ) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    from repro.ppuf.io import ppuf_to_dict
                    from repro.service.registry import device_id_for

                    hello = {
                        "type": wire.HELLO,
                        "device_id": device_id_for(ppuf_to_dict(device)),
                        "network": "a",
                    }
                    await client.request_ok(hello)
                    with pytest.raises(ServiceError, match="capacity"):
                        await client.request_ok(hello)
                    stats = await client.stats()
            return stats

        stats = run(go())
        assert stats["active_sessions"] == 1


class TestVerifyTimeout:
    def test_wedged_verification_is_cut_off(self, device, monkeypatch):
        def wedged(device_id, public, network, claim_wire, rtol):
            time.sleep(0.5)
            return True, "ok", 0.0, None

        def wedged_batch(jobs, rtol):
            time.sleep(0.5)
            return [(True, "ok", 0.0, None) for _ in jobs]

        monkeypatch.setattr(server_module, "_verify_claim_task", wedged)
        monkeypatch.setattr(server_module, "_verify_claims_task", wedged_batch)

        async def go():
            async with PpufAuthServer(
                workers=0, rounds=1, seed=5, verify_timeout=0.1
            ) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    outcome = await client.authenticate(device)
                    stats = await client.stats()
            return outcome, stats

        outcome, stats = run(go())
        assert not outcome.accepted
        assert outcome.reason == "verify_timeout"
        assert stats["verify_timeouts"] == 1
        assert stats["sessions_rejected"] == 1

    def test_pool_validates_timeout(self):
        with pytest.raises(ServiceError):
            VerificationPool(0, timeout=-1.0)


class TestConnectionIdleTimeout:
    def test_stalled_connection_is_disconnected(self, device):
        async def go():
            async with PpufAuthServer(
                workers=0, seed=5, connection_timeout=0.15
            ) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # Say nothing; the server should cut us off.
                line = await asyncio.wait_for(reader.readline(), timeout=2.0)
                reply = json.loads(line)
                tail = await asyncio.wait_for(reader.readline(), timeout=2.0)
                writer.close()
                stats = server.stats
            return reply, tail, stats

        reply, tail, stats = run(go())
        assert reply["type"] == "error"
        assert "idle" in reply["error"]
        assert tail == b""  # connection closed after the error
        assert stats.connection_timeouts == 1


class TestGracefulDrain:
    def test_stop_waits_for_inflight_verification(self, device, monkeypatch):
        completed = []

        def slow_verify(device_id, public, network, claim_wire, rtol):
            time.sleep(0.3)
            completed.append(device_id)
            return True, "ok", 0.3, None

        def slow_verify_batch(jobs, rtol):
            time.sleep(0.3)
            completed.extend(job[0] for job in jobs)
            return [(True, "ok", 0.3, None) for _ in jobs]

        monkeypatch.setattr(server_module, "_verify_claim_task", slow_verify)
        monkeypatch.setattr(server_module, "_verify_claims_task", slow_verify_batch)

        async def go():
            server = PpufAuthServer(workers=0, rounds=1, seed=5, drain_seconds=5.0)
            await server.start()
            async with ServiceClient("127.0.0.1", server.port) as client:
                await client.enroll(device)
                task = asyncio.create_task(client.authenticate(device))
                # Let the claim reach the pool, then stop the server.
                while server.pool.active == 0:
                    await asyncio.sleep(0.01)
                await server.stop()
                # The in-flight verification was drained, not abandoned.
                assert len(completed) == 1
                outcome = await asyncio.wait_for(task, timeout=2.0)
            return outcome, list(completed)

        outcome, done = run(go())
        assert len(done) == 1
        assert outcome.accepted


class TestCliResilienceFlags:
    def test_auth_flags_parse(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["auth", "--timeout", "5", "--retries", "4"]
        )
        assert arguments.timeout == 5.0
        assert arguments.retries == 4

    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            [
                "serve",
                "--timeout",
                "10",
                "--verify-timeout",
                "0",
                "--max-connections",
                "8",
            ]
        )
        assert arguments.timeout == 10.0
        assert arguments.verify_timeout == 0.0
        assert arguments.max_connections == 8
