"""Claim micro-batching (ISSUE 8): verdicts are batch-composition invariant.

The contract the server's :class:`ClaimMicroBatcher` rests on: verifying a
claim coalesced with 1..K strangers yields a verdict *bit-identical* to
verifying it alone — including when a neighbouring claim is poisoned and
dies with a worker fault.  The property is exercised at three layers: the
pure :func:`verify_compact_claims` verifier, the batcher's asyncio
machinery, and the full loopback server under concurrent sessions.
"""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.errors import ServiceError, ServiceTimeout
from repro.flow.decomposition import PathFlow
from repro.ppuf import Ppuf
from repro.ppuf.verification import (
    ClaimVerdict,
    PpufProver,
    PpufVerifier,
    verify_compact_claims,
)
from repro.service import PpufAuthServer, ServiceClient
from repro.service.server import ClaimMicroBatcher
from repro.service.stats import ServerStats


@pytest.fixture(scope="module")
def ppuf():
    return Ppuf.create(10, 3, np.random.default_rng(21))


@pytest.fixture(scope="module")
def claim_pool(ppuf):
    """A mix of honest, tampered, sub-maximal, poisoned and faulting claims."""
    rng = np.random.default_rng(22)
    prover = PpufProver(ppuf.network_a)
    space = ppuf.challenge_space()
    honest = [prover.answer_compact(space.random(rng)) for _ in range(6)]

    tampered_value = dataclasses.replace(honest[0], value=honest[0].value * 1.25)
    submaximal = dataclasses.replace(
        honest[1],
        paths=[
            PathFlow(vertices=p.vertices, value=p.value * 0.5)
            for p in honest[1].paths
        ],
        value=honest[1].value * 0.5,
    )
    # Poisoned: a path through a vertex that does not exist — the solo
    # verifier raises VerificationError ("infeasible", no fault).
    poisoned = dataclasses.replace(
        honest[2], paths=[PathFlow(vertices=(0, 99, 9), value=1.0)]
    )
    # Faulting: malformed beyond what validation anticipates — the worker
    # trips an unexpected exception, contained into a per-claim fault.
    faulting = dataclasses.replace(honest[3], paths=None)
    return honest + [tampered_value, submaximal, poisoned, faulting]


class TestCompositionInvariance:
    def test_solo_equals_coalesced_for_every_claim(self, ppuf, claim_pool):
        network = ppuf.network_a
        rng = np.random.default_rng(23)
        solo = {
            index: verify_compact_claims(network, [claim])[0]
            for index, claim in enumerate(claim_pool)
        }
        for index, claim in enumerate(claim_pool):
            for strangers in range(1, 5):
                others = [
                    claim_pool[int(i)]
                    for i in rng.integers(0, len(claim_pool), size=strangers)
                ]
                position = int(rng.integers(0, strangers + 1))
                batch = others[:position] + [claim] + others[position:]
                verdicts = verify_compact_claims(network, batch)
                assert verdicts[position] == solo[index], (index, strangers)

    def test_verdict_taxonomy(self, ppuf, claim_pool):
        verdicts = verify_compact_claims(ppuf.network_a, claim_pool)
        for verdict in verdicts[:6]:  # the honest claims
            assert verdict == ClaimVerdict(accepted=True)
        tampered, submaximal, poisoned, faulting = verdicts[6:]
        assert not tampered.accepted and tampered.kind == "incorrect"
        assert not submaximal.accepted and submaximal.kind == "incorrect"
        assert "not maximal" in submaximal.reason
        assert not poisoned.accepted and poisoned.kind == "infeasible"
        assert poisoned.fault is None  # anticipated rejection, not a fault
        assert not faulting.accepted and faulting.kind == "infeasible"
        assert faulting.fault is not None  # contained worker fault

    def test_poisoned_neighbours_never_leak(self, ppuf, claim_pool):
        # Every honest claim sandwiched between the two worst neighbours
        # must still come back accepted with no fault.
        poisoned, faulting = claim_pool[8], claim_pool[9]
        for claim in claim_pool[:6]:
            verdicts = verify_compact_claims(
                ppuf.network_a, [poisoned, claim, faulting]
            )
            assert verdicts[1] == ClaimVerdict(accepted=True)

    def test_verifier_batch_matches_scalar_verify(self, ppuf, claim_pool):
        verifier = PpufVerifier(ppuf.network_a)
        verdicts = verifier.verify_compact_batch(claim_pool[:8])
        for claim, verdict in zip(claim_pool[:8], verdicts):
            assert verdict.accepted == verifier.verify_compact(claim)


class FakePool:
    """Records dispatched batches; resolves with a canned per-claim result."""

    def __init__(self, error=None):
        self.batches = []
        self.error = error

    async def verify_batch(self, jobs, rtol):
        self.batches.append(list(jobs))
        if self.error is not None:
            raise self.error
        return [(True, "ok", 0.0, None) for _ in jobs]


def claim_job(index):
    return (f"device-{index}", None, "a", {"claim": index})


class TestClaimMicroBatcher:
    def test_full_batch_dispatches_immediately(self):
        async def go():
            stats = ServerStats()
            batcher = ClaimMicroBatcher(
                FakePool(), stats, batch_size=4, linger_seconds=60.0
            )
            results = await asyncio.gather(
                *(batcher.verify(*claim_job(i)) for i in range(4))
            )
            return stats, results, batcher

        stats, results, batcher = asyncio.run(go())
        assert all(result == (True, "ok", 0.0, None) for result in results)
        assert stats.claim_batches == 1
        assert stats.claims_batched == 4
        assert stats.claim_batch_occupancy == {"4": 1}
        assert not batcher.busy

    def test_lone_claim_pays_only_the_linger(self):
        async def go():
            stats = ServerStats()
            pool = FakePool()
            batcher = ClaimMicroBatcher(
                pool, stats, batch_size=16, linger_seconds=0.005
            )
            loop = asyncio.get_running_loop()
            start = loop.time()
            result = await asyncio.wait_for(
                batcher.verify(*claim_job(0)), timeout=2.0
            )
            return stats, result, loop.time() - start, pool

        stats, result, elapsed, pool = asyncio.run(go())
        assert result == (True, "ok", 0.0, None)
        assert stats.claim_batch_occupancy == {"1": 1}
        assert len(pool.batches) == 1
        assert elapsed < 1.0  # linger-bounded, not stuck until batch_size

    def test_flush_drains_a_forming_batch(self):
        async def go():
            batcher = ClaimMicroBatcher(FakePool(), batch_size=16, linger_seconds=60.0)
            waiters = [
                asyncio.ensure_future(batcher.verify(*claim_job(i)))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let the claims enqueue
            assert batcher.busy
            batcher.flush()
            results = await asyncio.wait_for(asyncio.gather(*waiters), timeout=2.0)
            return results, batcher

        results, batcher = asyncio.run(go())
        assert len(results) == 3
        assert not batcher.busy

    @pytest.mark.parametrize(
        "raised,expected",
        [(ServiceTimeout("pool wedged"), ServiceTimeout), (RuntimeError("boom"), ServiceError)],
        ids=["timeout", "fault"],
    )
    def test_pool_failures_fail_every_claim_distinctly(self, raised, expected):
        async def go():
            batcher = ClaimMicroBatcher(
                FakePool(error=raised), batch_size=2, linger_seconds=60.0
            )
            return await asyncio.gather(
                *(batcher.verify(*claim_job(i)) for i in range(2)),
                return_exceptions=True,
            )

        results = asyncio.run(go())
        assert len(results) == 2
        for result in results:
            assert isinstance(result, expected)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ServiceError):
            ClaimMicroBatcher(FakePool(), batch_size=0)
        with pytest.raises(ServiceError):
            ClaimMicroBatcher(FakePool(), linger_seconds=-1.0)


class TestServerMicroBatchE2E:
    SESSIONS = 32

    def test_concurrent_sessions_coalesce_and_all_verify(self, ppuf):
        async def go():
            server = PpufAuthServer(
                workers=0,
                rounds=1,
                seed=5,
                deadline_seconds=30.0,
                claim_batch_size=8,
                claim_batch_linger=0.005,
            )
            async with server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(ppuf)

                async def one_session():
                    async with ServiceClient("127.0.0.1", server.port) as client:
                        return await client.authenticate(ppuf)

                outcomes = await asyncio.gather(
                    *(one_session() for _ in range(self.SESSIONS))
                )
                snapshot = server.stats.snapshot()
            return outcomes, snapshot

        outcomes, snapshot = asyncio.run(go())
        assert all(outcome.accepted for outcome in outcomes)
        assert snapshot["claims_verified"] == self.SESSIONS
        assert snapshot["claims_batched"] == self.SESSIONS
        assert 1 <= snapshot["claim_batches"] <= self.SESSIONS
        occupancy = snapshot["claim_batch_occupancy"]
        assert sum(occupancy.values()) == snapshot["claim_batches"]
        assert (
            sum(int(size) * count for size, count in occupancy.items())
            == self.SESSIONS
        )

    def test_batching_disabled_still_verifies(self, ppuf):
        async def go():
            server = PpufAuthServer(
                workers=0, rounds=2, seed=5, deadline_seconds=30.0, claim_batch_size=1
            )
            assert server.batcher is None
            async with server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(ppuf)
                    outcome = await client.authenticate(ppuf)
                snapshot = server.stats.snapshot()
            return outcome, snapshot

        outcome, snapshot = asyncio.run(go())
        assert outcome.accepted
        assert snapshot["claims_batched"] == 0
        assert snapshot["claim_batch_occupancy"] == {}


class TestOccupancyMergesAcrossShards:
    def test_merge_snapshot_sums_occupancy_per_size(self):
        a = ServerStats()
        a.claim_batches, a.claims_batched = 3, 9
        a.claim_batch_occupancy = {"1": 1, "4": 2}
        b = ServerStats()
        b.claim_batches, b.claims_batched = 2, 9
        b.claim_batch_occupancy = {"4": 1, "5": 1}
        merged = ServerStats.merge_snapshot([a.snapshot(), b.snapshot()])
        assert merged["claim_batches"] == 5
        assert merged["claims_batched"] == 18
        assert merged["claim_batch_occupancy"] == {"1": 1, "4": 3, "5": 1}
