"""End-to-end loopback: enroll → authenticate → tamper → deadline → stats.

Every test spins up a real ``PpufAuthServer`` on an ephemeral loopback
port and talks to it through ``ServiceClient`` — the full wire path, with
devices kept tiny (n=8) so tier-1 stays fast.  Verification runs in the
thread executor (``workers=0``) except for the dedicated process-pool
test.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ppuf import Ppuf
from repro.service import PpufAuthServer, ServiceClient, wire


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(8, 2, np.random.default_rng(11))


@pytest.fixture(scope="module")
def other_device():
    return Ppuf.create(8, 2, np.random.default_rng(12))


def run(coroutine):
    return asyncio.run(coroutine)


async def serve(**kwargs):
    defaults = dict(workers=0, rounds=3, seed=5, deadline_seconds=30.0)
    defaults.update(kwargs)
    return PpufAuthServer(**defaults)


class TestHappyPath:
    def test_enroll_then_authenticate(self, device):
        async def go():
            async with await serve() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    device_id = await client.enroll(device)
                    assert len(device_id) == 64
                    outcome = await client.authenticate(device)
                    stats = await client.stats()
            return outcome, stats

        outcome, stats = run(go())
        assert outcome.accepted and outcome.reason == "ok"
        assert outcome.rounds_run == 3
        assert len(outcome.transcript) == 3
        assert stats["enrollments"] == 1
        assert stats["sessions_opened"] == 1
        assert stats["sessions_accepted"] == 1
        assert stats["sessions_rejected"] == 0
        assert stats["claims_verified"] == 3
        assert stats["verify_latency"]["observations"] == 3
        assert stats["verify_latency"]["mean_seconds"] > 0
        assert stats["solver_latency"]["dinic"]["observations"] == 3
        assert stats["active_sessions"] == 0

    def test_per_algorithm_verify_telemetry(self, device):
        async def go():
            async with await serve() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    for algorithm in ("dinic", "push_relabel", "push_relabel"):
                        outcome = await client.authenticate(
                            device, rounds=1, algorithm=algorithm
                        )
                        assert outcome.accepted

                    # A spoofed solver label must not grow the snapshot —
                    # unregistered names share the "unknown" bucket.
                    def spoof(claim_wire):
                        claim_wire["algorithm"] = "totally-made-up"
                        return claim_wire

                    outcome = await client.authenticate(
                        device, rounds=1, tamper=spoof
                    )
                    assert outcome.accepted  # label is telemetry, not auth
                    return await client.stats()

        stats = run(go())
        latency = stats["solver_latency"]
        assert latency["dinic"]["observations"] == 1
        assert latency["push_relabel"]["observations"] == 2
        assert latency["unknown"]["observations"] == 1
        assert "totally-made-up" not in latency
        assert stats["claims_verified"] == 4

    def test_both_networks_authenticate(self, device):
        async def go():
            async with await serve(rounds=2) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    a = await client.authenticate(device, network="a")
                    b = await client.authenticate(device, network="b")
            return a, b

        a, b = run(go())
        assert a.accepted and b.accepted

    def test_process_pool_verification(self, device):
        async def go():
            async with await serve(workers=1, rounds=2) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    return await client.authenticate(device)

        assert run(go()).accepted


class TestCompiledVerification:
    """The server's compiled fast path must not change any verdict."""

    def test_verdict_identical_with_and_without_compiled(self, device):
        async def authenticate(use_compiled):
            async with await serve(use_compiled=use_compiled) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    honest = await client.authenticate(device)
                    tampered = await client.authenticate(
                        device, tamper=lambda c: {**c, "value": c["value"] * 2.0}
                    )
            return honest, tampered

        for use_compiled in (True, False):
            honest, tampered = run(authenticate(use_compiled))
            assert honest.accepted and honest.reason == "ok"
            assert not tampered.accepted and tampered.reason == "incorrect"

    def test_compiled_with_process_pool(self, device):
        async def go():
            async with await serve(workers=1, rounds=2) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    return await client.authenticate(device)

        assert run(go()).accepted

    def test_prover_can_run_off_the_artifact(self, device):
        # A holder carrying only the compiled artifact (repro auth
        # --compiled) authenticates like one holding the full description.
        artifact = device.compile(include_circuit=False)

        async def go():
            async with await serve(rounds=2) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    return await client.authenticate(artifact)

        outcome = run(go())
        assert outcome.accepted and outcome.reason == "ok"


class TestRejections:
    def test_tampered_value_rejected(self, device):
        async def go():
            async with await serve() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    outcome = await client.authenticate(
                        device, tamper=lambda c: {**c, "value": c["value"] * 2.0}
                    )
                    stats = await client.stats()
            return outcome, stats

        outcome, stats = run(go())
        assert not outcome.accepted
        assert outcome.reason == "incorrect"
        assert stats["sessions_rejected"] == 1
        assert stats["sessions_accepted"] == 0

    def test_submaximal_flow_rejected(self, device):
        def halve_paths(claim):
            claim = dict(claim)
            claim["paths"] = [
                {**p, "value": p["value"] * 0.5} for p in claim["paths"]
            ]
            claim["value"] = claim["value"] * 0.5
            return claim

        async def go():
            async with await serve() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    return await client.authenticate(device, tamper=halve_paths)

        outcome = run(go())
        assert not outcome.accepted
        assert outcome.reason == "incorrect"

    def test_infeasible_flow_rejected(self, device):
        def overflow_paths(claim):
            claim = dict(claim)
            claim["paths"] = [
                {**p, "value": p["value"] * 100.0} for p in claim["paths"]
            ]
            return claim

        async def go():
            async with await serve() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    return await client.authenticate(device, tamper=overflow_paths)

        outcome = run(go())
        assert not outcome.accepted
        assert outcome.reason == "infeasible"

    def test_deadline_overrun_rejected(self, device):
        async def go():
            async with await serve(deadline_seconds=0.05) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    outcome = await client.authenticate(device, delay=0.2)
                    stats = await client.stats()
            return outcome, stats

        outcome, stats = run(go())
        assert not outcome.accepted
        assert outcome.reason == "deadline"
        assert stats["deadline_misses"] == 1
        assert stats["sessions_rejected"] == 1
        # a deadline miss is rejected without wasting a verification
        assert stats["claims_verified"] == 0

    def test_unknown_device_rejected(self, device, other_device):
        async def go():
            async with await serve() as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    with pytest.raises(ServiceError):
                        await client.authenticate(other_device)
                    return await client.stats()

        stats = run(go())
        assert stats["unknown_devices"] == 1

    def test_wire_enrollment_can_be_disabled(self, device):
        async def go():
            async with await serve(allow_enroll=False) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ServiceError):
                        await client.enroll(device)

        run(go())


class TestReplayAndExpiry:
    def test_replayed_claim_rejected(self, device):
        async def go():
            async with await serve(rounds=2) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    from repro.ppuf import PpufProver
                    from repro.service.registry import device_id_for
                    from repro.ppuf.io import ppuf_to_dict

                    device_id = device_id_for(ppuf_to_dict(device))
                    challenge_msg = await client.request_ok(
                        {"type": wire.HELLO, "device_id": device_id, "network": "a"}
                    )
                    challenge = wire.challenge_from_wire(challenge_msg["challenge"])
                    claim = PpufProver(device.network_a).answer_compact(challenge)
                    claim_msg = {
                        "type": wire.CLAIM,
                        "session": challenge_msg["session"],
                        "nonce": challenge_msg["nonce"],
                        "claim": wire.claim_to_wire(claim),
                    }
                    second_challenge = await client.request_ok(claim_msg)
                    assert second_challenge["type"] == wire.CHALLENGE
                    replay_reply = await client.request(claim_msg)  # verbatim replay
                    stats = await client.stats()
            return replay_reply, stats

        reply, stats = run(go())
        assert reply["type"] == wire.ERROR
        assert "consumed" in reply["error"]
        assert stats["replays_rejected"] == 1
        assert stats["protocol_errors"] == 0

    def test_idle_session_expires(self, device):
        async def go():
            async with await serve(idle_timeout=0.1) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    from repro.service.registry import device_id_for
                    from repro.ppuf.io import ppuf_to_dict

                    device_id = device_id_for(ppuf_to_dict(device))
                    challenge_msg = await client.request_ok(
                        {"type": wire.HELLO, "device_id": device_id, "network": "a"}
                    )
                    await asyncio.sleep(0.4)  # sweeper interval is idle/4
                    reply = await client.request(
                        {
                            "type": wire.CLAIM,
                            "session": challenge_msg["session"],
                            "nonce": challenge_msg["nonce"],
                            "claim": {"challenge": {}, "paths": [], "value": 0.0},
                        }
                    )
                    stats = await client.stats()
            return reply, stats

        reply, stats = run(go())
        assert reply["type"] == wire.ERROR
        assert stats["sessions_expired"] >= 1
        assert stats["active_sessions"] == 0


class TestConcurrency:
    def test_eight_simultaneous_sessions(self, device):
        """≥8 concurrent sessions, each on its own connection, no leakage."""

        async def one_session(port):
            async with ServiceClient("127.0.0.1", port) as client:
                return await client.authenticate(device, rounds=2)

        async def go():
            async with await serve(rounds=2) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                outcomes = await asyncio.gather(
                    *(one_session(server.port) for _ in range(8))
                )
                async with ServiceClient("127.0.0.1", server.port) as client:
                    stats = await client.stats()
            return outcomes, stats

        outcomes, stats = run(go())
        assert len(outcomes) == 8
        assert all(outcome.accepted for outcome in outcomes)
        # distinct sessions, distinct nonces: nothing shared across sessions
        session_ids = {outcome.session_id for outcome in outcomes}
        assert len(session_ids) == 8
        nonces = {
            entry["nonce"] for outcome in outcomes for entry in outcome.transcript
        }
        assert len(nonces) == 16  # 8 sessions x 2 rounds, all unique
        assert stats["sessions_opened"] == 8
        assert stats["sessions_accepted"] == 8
        assert stats["sessions_rejected"] == 0
        assert stats["claims_verified"] == 16
