"""Session state machine: nonces, replays, deadlines, idle expiry.

A fake monotonic clock drives the time-dependent paths deterministically.
"""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ppuf import Ppuf
from repro.service import (
    ReplayRejected,
    SessionExpired,
    SessionManager,
    UnknownSession,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(6, 2, np.random.default_rng(77))


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def manager(clock):
    return SessionManager(
        deadline_seconds=2.0, idle_timeout=10.0, rounds=3, seed=1, clock=clock
    )


class TestStateMachine:
    def test_open_issues_challenge_and_nonce(self, manager, device):
        session = manager.open("dev", device, "a", None)
        assert session.challenge is not None
        assert len(session.nonce) == 32
        assert session.rounds_total == 3
        assert len(manager) == 1

    def test_claim_measures_elapsed_on_monotonic_clock(self, manager, device, clock):
        session = manager.open("dev", device, "a", None)
        clock.now += 1.5
        admitted, elapsed = manager.admit_claim(session.session_id, session.nonce)
        assert admitted is session
        assert elapsed == pytest.approx(1.5)

    def test_advance_rotates_nonce_and_challenge(self, manager, device):
        session = manager.open("dev", device, "a", None)
        first_nonce, first_challenge = session.nonce, session.challenge
        manager.admit_claim(session.session_id, session.nonce)
        assert manager.advance(session, device)
        assert session.nonce != first_nonce
        assert session.round_index == 1
        assert session.challenge.key() != first_challenge.key()

    def test_session_closes_after_final_round(self, manager, device):
        session = manager.open("dev", device, "a", 1)
        manager.admit_claim(session.session_id, session.nonce)
        assert not manager.advance(session, device)
        assert len(manager) == 0

    def test_unknown_session_rejected(self, manager):
        with pytest.raises(UnknownSession):
            manager.admit_claim("nope", "nonce")

    def test_invalid_network_rejected(self, manager, device):
        with pytest.raises(ServiceError):
            manager.open("dev", device, "c", None)


class TestReplayRejection:
    def test_consumed_nonce_is_replay(self, manager, device):
        session = manager.open("dev", device, "a", None)
        nonce = session.nonce
        manager.admit_claim(session.session_id, nonce)
        manager.advance(session, device)
        with pytest.raises(ReplayRejected):
            manager.admit_claim(session.session_id, nonce)

    def test_foreign_nonce_rejected(self, manager, device):
        session = manager.open("dev", device, "a", None)
        with pytest.raises(ServiceError):
            manager.admit_claim(session.session_id, "f" * 32)

    def test_nonces_are_unique_across_sessions(self, manager, device):
        nonces = {manager.open("dev", device, "a", None).nonce for _ in range(16)}
        assert len(nonces) == 16


class TestIdleExpiry:
    def test_idle_session_expires(self, manager, device, clock):
        session = manager.open("dev", device, "a", None)
        clock.now += 11.0
        with pytest.raises(SessionExpired):
            manager.admit_claim(session.session_id, session.nonce)
        assert len(manager) == 0

    def test_expire_idle_sweeps_only_stale(self, manager, device, clock):
        manager.open("dev", device, "a", None)
        clock.now += 11.0
        fresh = manager.open("dev", device, "a", None)
        assert manager.expire_idle() == 1
        assert len(manager) == 1
        manager.admit_claim(fresh.session_id, fresh.nonce)  # fresh one survives
