"""The ``serve`` / ``auth`` CLI round trip against a real subprocess server."""

import os
import re
import signal
import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture
def device_path(tmp_path, capsys):
    path = str(tmp_path / "device.json")
    assert main(["create", "--nodes", "8", "--grid", "2", "--output", path]) == 0
    capsys.readouterr()
    return path


@pytest.fixture
def server_port(tmp_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "0",
            "--rounds",
            "2",
            "--seed",
            "9",
            "--registry",
            str(tmp_path / "registry"),
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = process.stderr.readline()
        match = re.search(r"serving on [\d.]+:(\d+)", line)
        assert match, f"no listen line from serve: {line!r}"
        yield int(match.group(1))
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


class TestServeAuthRoundtrip:
    def test_enroll_and_authenticate(self, device_path, server_port, capsys):
        code = main(
            [
                "auth",
                "--host",
                "127.0.0.1",
                "--port",
                str(server_port),
                "--ppuf",
                device_path,
                "--enroll",
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ACCEPTED" in out
        assert '"sessions_accepted": 1' in out

    def test_unenrolled_device_fails(self, device_path, server_port, capsys):
        code = main(
            [
                "auth",
                "--host",
                "127.0.0.1",
                "--port",
                str(server_port),
                "--ppuf",
                device_path,
            ]
        )
        assert code == 2  # ServiceError surfaced through the CLI error path
        assert "unknown device" in capsys.readouterr().err
