"""The ``serve`` / ``auth`` CLI round trip against a real subprocess server."""

import json
import os
import re
import signal
import subprocess
import sys

import pytest

from repro.cli import main


def _serve_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture
def device_path(tmp_path, capsys):
    path = str(tmp_path / "device.json")
    assert main(["create", "--nodes", "8", "--grid", "2", "--output", path]) == 0
    capsys.readouterr()
    return path


@pytest.fixture
def server_port(tmp_path):
    env = _serve_env()
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "0",
            "--rounds",
            "2",
            "--seed",
            "9",
            "--registry",
            str(tmp_path / "registry"),
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = process.stderr.readline()
        match = re.search(r"serving on [\d.]+:(\d+)", line)
        assert match, f"no listen line from serve: {line!r}"
        yield int(match.group(1))
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


class TestServeAuthRoundtrip:
    def test_enroll_and_authenticate(self, device_path, server_port, capsys):
        code = main(
            [
                "auth",
                "--host",
                "127.0.0.1",
                "--port",
                str(server_port),
                "--ppuf",
                device_path,
                "--enroll",
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ACCEPTED" in out
        assert '"sessions_accepted": 1' in out

    def test_unenrolled_device_fails(self, device_path, server_port, capsys):
        code = main(
            [
                "auth",
                "--host",
                "127.0.0.1",
                "--port",
                str(server_port),
                "--ppuf",
                device_path,
            ]
        )
        assert code == 2  # ServiceError surfaced through the CLI error path
        assert "unknown device" in capsys.readouterr().err


class TestServeLifecycle:
    """Machine-readable port discovery + graceful SIGTERM shutdown."""

    def _spawn(self, tmp_path):
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--workers",
                "0",
                "--rounds",
                "2",
                "--registry",
                str(tmp_path / "registry"),
            ],
            env=_serve_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_listening_event_on_stdout_and_sigterm_exits_zero(self, tmp_path):
        process = self._spawn(tmp_path)
        try:
            line = process.stdout.readline()
            event = json.loads(line)  # first stdout line is the event, alone
            assert event["event"] == "listening"
            assert isinstance(event["port"], int) and event["port"] > 0
            assert event["host"] == "127.0.0.1"

            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            assert code == 0  # graceful stop, not a KeyboardInterrupt trace
            stderr = process.stderr.read()
            assert "server stopped" in stderr
            assert "Traceback" not in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_sigint_also_exits_zero(self, tmp_path):
        process = self._spawn(tmp_path)
        try:
            event = json.loads(process.stdout.readline())
            assert event["event"] == "listening"
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
