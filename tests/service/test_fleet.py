"""Fleet acceptance: supervised subprocess shards behind the router.

The full production topology on loopback — a shared artifact pack, two
``repro serve`` worker subprocesses spawned and babysat by
:class:`FleetSupervisor`, and a :class:`FleetRouter` front door.  Pinned
here: ≥16 concurrent clients authenticate with deterministic routing,
merged fleet STATS equal the sum of per-shard counters, and a shard
killed outright is restarted by the supervisor with service restored.
"""

import asyncio

import numpy as np
import pytest

from repro.ppuf import Ppuf, build_pack
from repro.service import RetryPolicy, ServiceClient, wire
from repro.service.fleet import (
    ACTIVE,
    FleetRouter,
    FleetSupervisor,
    ShardMap,
    ShardWorkerSpec,
    probe_stats,
)

DEVICE_COUNT = 6


@pytest.fixture(scope="module")
def fleet_pack(tmp_path_factory):
    """A pack of tiny devices plus the live Ppufs that prove against it."""
    # Seed base 60: ids split 3/3 over two rendezvous shards (see
    # test_fleet_router.py).
    devices = [
        Ppuf.create(8, 2, np.random.default_rng(60 + index))
        for index in range(DEVICE_COUNT)
    ]
    path = str(tmp_path_factory.mktemp("fleet") / "fleet.pack")
    build_pack(path, [device.compile(include_circuit=False) for device in devices])
    return path, devices


def run(coroutine):
    return asyncio.run(coroutine)


async def _authenticate(port, device, *, timeout=30.0):
    async with ServiceClient(
        "127.0.0.1", port, timeout=timeout, retry=RetryPolicy.no_retry()
    ) as client:
        return await client.authenticate(device, rounds=1)


async def _wait_for(predicate, *, timeout, interval=0.05, what="condition"):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        if predicate():
            return
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(interval)


class TestSupervisedFleet:
    def test_e2e_routing_stats_and_restart(self, fleet_pack):
        pack_path, devices = fleet_pack

        async def go():
            shard_map = ShardMap()
            spec = ShardWorkerSpec(pack=pack_path, rounds=1, seed=13)
            supervisor = FleetSupervisor(
                2,
                spec,
                shard_map=shard_map,
                probe_interval=0.25,
                restart_policy=RetryPolicy(
                    base_delay=0.05, max_delay=0.2, seed=0
                ),
            )
            results = {}
            await supervisor.start()
            try:
                async with FleetRouter(shard_map) as router:
                    # --- ≥16 concurrent clients through the front door ---
                    outcomes = await asyncio.gather(
                        *(
                            _authenticate(
                                router.port, devices[index % len(devices)]
                            )
                            for index in range(16)
                        )
                    )
                    results["outcomes"] = outcomes

                    # --- deterministic routing + merged == sum ---
                    per_shard = {
                        shard.name: await probe_stats(shard.host, shard.port)
                        for shard in shard_map.shards()
                    }
                    results["per_shard"] = per_shard
                    results["expected"] = {
                        shard.name: 0 for shard in shard_map.shards()
                    }
                    for index in range(16):
                        device = devices[index % len(devices)]
                        owner = shard_map.shard_for(device.compile().device_id)
                        results["expected"][owner.name] += 1
                    async with ServiceClient("127.0.0.1", router.port) as client:
                        results["merged"] = await client.request_ok(
                            {"type": wire.STATS}
                        )

                    # --- kill one shard; the supervisor must restore it ---
                    victim = shard_map.shard_for(
                        devices[0].compile().device_id
                    ).name
                    old_port = shard_map.get(victim).port
                    supervisor.workers[victim].process.kill()
                    await _wait_for(
                        lambda: (
                            shard_map.get(victim).state == ACTIVE
                            and shard_map.get(victim).port != old_port
                        ),
                        timeout=30.0,
                        what=f"supervisor restart of {victim}",
                    )
                    results["restarts"] = supervisor.restarts()
                    results["events"] = list(supervisor.events)
                    # The restarted shard serves its devices again.
                    results["after_restart"] = await _authenticate(
                        router.port, devices[0]
                    )
            finally:
                await supervisor.stop()
            results["exit_codes"] = {
                name: worker.process.returncode
                for name, worker in supervisor.workers.items()
            }
            return results

        results = run(go())

        # 16/16 accepted.
        assert len(results["outcomes"]) == 16
        assert all(outcome.accepted for outcome in results["outcomes"])

        # Every session landed on the shard rendezvous hashing names.
        for name, snapshot in results["per_shard"].items():
            assert snapshot["sessions_accepted"] == results["expected"][name], name
        assert all(count > 0 for count in results["expected"].values()), (
            "fixture must exercise both shards"
        )

        # Merged fleet STATS == sum of the per-shard counters.
        merged = results["merged"]["stats"]
        for counter in ("sessions_opened", "sessions_accepted", "claims_verified"):
            assert merged[counter] == sum(
                snapshot[counter] for snapshot in results["per_shard"].values()
            ), counter
        assert merged["verify_latency"]["observations"] == sum(
            snapshot["verify_latency"]["observations"]
            for snapshot in results["per_shard"].values()
        )
        assert results["merged"]["fleet"]["healthy_shards"] == 2

        # The kill was noticed, restarted exactly once, and service restored.
        assert sum(results["restarts"].values()) == 1
        assert {event["event"] for event in results["events"]} >= {
            "spawned",
            "died",
            "restarting",
        }
        assert results["after_restart"].accepted

        # Shutdown was graceful: SIGTERM → drain → exit 0.
        assert set(results["exit_codes"].values()) == {0}
