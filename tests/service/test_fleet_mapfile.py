"""The shared shard-map file: versioning, atomicity, watch semantics.

Pinned here: the protocol invariants every fleet participant leans on —
versions only grow, mutate() is a serialized read-modify-write, a
corrupt file never kills (or hot-loops) a watcher, and two independent
``ShardMap``s loaded from the same file agree on ``shard_for`` for ten
thousand random device ids (the multi-router determinism guarantee).
"""

import asyncio
import json
import os

import pytest

from repro.errors import ServiceError
from repro.ppuf.io import atomic_write_text
from repro.service.fleet import (
    DOWN,
    DRAINING,
    MAPFILE_FORMAT,
    ShardDescriptor,
    ShardMap,
    ShardMapFile,
    decode_shard_map,
    encode_shard_map,
)


def two_shard_map():
    return ShardMap(
        [
            ShardDescriptor(name="shard-0", port=9001),
            ShardDescriptor(name="shard-1", port=9002, state=DRAINING),
        ]
    )


@pytest.fixture
def map_path(tmp_path):
    return str(tmp_path / "fleet-map.json")


class TestEncodeDecode:
    def test_roundtrip_preserves_shards_and_version(self):
        text = encode_shard_map(two_shard_map(), version=7)
        shard_map, version = decode_shard_map(text)
        assert version == 7
        assert [s.to_dict() for s in shard_map.shards()] == [
            s.to_dict() for s in two_shard_map().shards()
        ]

    def test_format_key_present(self):
        payload = json.loads(encode_shard_map(ShardMap(), version=0))
        assert payload["format"] == MAPFILE_FORMAT

    def test_rejects_malformed_json(self):
        with pytest.raises(ServiceError, match="malformed"):
            decode_shard_map("{not json", path="p")

    def test_rejects_non_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            decode_shard_map("[1, 2]", path="p")

    def test_rejects_unknown_format(self):
        text = json.dumps({"format": 99, "version": 1, "shards": []})
        with pytest.raises(ServiceError, match="format"):
            decode_shard_map(text, path="p")

    @pytest.mark.parametrize("version", [-1, "7", None, True])
    def test_rejects_bad_version(self, version):
        text = json.dumps(
            {"format": MAPFILE_FORMAT, "version": version, "shards": []}
        )
        with pytest.raises(ServiceError, match="version"):
            decode_shard_map(text, path="p")

    def test_rejects_bad_descriptor_in_file(self):
        text = json.dumps(
            {
                "format": MAPFILE_FORMAT,
                "version": 1,
                "shards": [{"name": "s", "port": 99999}],
            }
        )
        with pytest.raises(ServiceError, match="'port'"):
            decode_shard_map(text, path="p")


class TestPublish:
    def test_versions_advance_monotonically(self, map_path):
        map_file = ShardMapFile(map_path)
        assert map_file.publish(two_shard_map()) == 1
        assert map_file.publish(two_shard_map()) == 2
        _, version = map_file.load()
        assert version == 2

    def test_explicit_version_must_advance(self, map_path):
        map_file = ShardMapFile(map_path)
        map_file.publish(two_shard_map(), version=5)
        with pytest.raises(ServiceError, match="monotonically"):
            map_file.publish(two_shard_map(), version=5)
        with pytest.raises(ServiceError, match="monotonically"):
            map_file.publish(two_shard_map(), version=3)
        assert map_file.publish(two_shard_map(), version=9) == 9

    def test_mutate_is_read_modify_write(self, map_path):
        map_file = ShardMapFile(map_path)
        map_file.publish(two_shard_map())

        shard_map, version = map_file.mutate(lambda m: m.drain("shard-0"))
        assert version == 2
        assert shard_map.get("shard-0").state == DRAINING
        # A second writer with its own instance sees the first's edit.
        other = ShardMapFile(map_path)
        shard_map2, version2 = other.mutate(
            lambda m: m.add(ShardDescriptor(name="shard-2", port=9003))
        )
        assert version2 == 3
        assert shard_map2.get("shard-0").state == DRAINING
        assert "shard-2" in shard_map2

    def test_raising_mutator_leaves_file_untouched(self, map_path):
        map_file = ShardMapFile(map_path)
        map_file.publish(two_shard_map())

        def bad(shard_map):
            shard_map.drain("shard-0")
            raise RuntimeError("abort")

        with pytest.raises(RuntimeError):
            map_file.mutate(bad)
        shard_map, version = ShardMapFile(map_path).load()
        assert version == 1
        assert shard_map.get("shard-0").state != DRAINING

    def test_mutate_starts_from_empty_when_no_file(self, map_path):
        shard_map, version = ShardMapFile(map_path).mutate(
            lambda m: m.add(ShardDescriptor(name="shard-0", port=1))
        )
        assert version == 1
        assert len(shard_map) == 1


class TestPoll:
    def test_poll_none_until_change_then_new_version(self, map_path):
        writer = ShardMapFile(map_path)
        watcher = ShardMapFile(map_path)
        assert watcher.poll() is None  # no file yet
        writer.publish(two_shard_map())
        shard_map, version = watcher.poll()
        assert version == 1 and len(shard_map) == 2
        assert watcher.poll() is None  # nothing new
        writer.mutate(lambda m: m.drain("shard-0"))
        shard_map, version = watcher.poll()
        assert version == 2
        assert shard_map.get("shard-0").state == DRAINING

    def test_load_marks_version_seen(self, map_path):
        writer = ShardMapFile(map_path)
        writer.publish(two_shard_map())
        watcher = ShardMapFile(map_path)
        watcher.load()
        assert watcher.poll() is None

    def test_stale_version_not_redelivered(self, map_path):
        writer = ShardMapFile(map_path)
        writer.publish(two_shard_map(), version=5)
        watcher = ShardMapFile(map_path)
        assert watcher.poll()[1] == 5
        # A rogue writer regressing the version must be ignored, not
        # delivered as an "update" that would roll a router back.
        atomic_write_text(map_path, encode_shard_map(ShardMap(), version=2))
        assert watcher.poll() is None

    def test_corrupt_file_raises_once_not_every_tick(self, map_path):
        writer = ShardMapFile(map_path)
        writer.publish(two_shard_map())
        watcher = ShardMapFile(map_path)
        watcher.load()
        atomic_write_text(map_path, "{torn")
        with pytest.raises(ServiceError):
            watcher.poll()
        # Stat was remembered before the decode, so the same bad bytes
        # don't raise again...
        assert watcher.poll() is None
        # ...and the next publish heals both writer and watcher: the
        # writer treats the junk as empty-at-its-last-written-version
        # instead of wedging forever.
        writer.publish(two_shard_map())
        shard_map, version = watcher.poll()
        assert version == 2


class TestWatch:
    def test_watch_delivers_each_version_and_survives_corruption(
        self, map_path
    ):
        async def go():
            writer = ShardMapFile(map_path)
            watcher = ShardMapFile(map_path)
            seen = []
            task = asyncio.create_task(
                watcher.watch(
                    lambda m, v: seen.append((v, len(m))), poll_interval=0.01
                )
            )
            try:
                writer.publish(two_shard_map())
                await _until(lambda: len(seen) == 1)
                atomic_write_text(map_path, "{torn")  # logged, skipped
                await asyncio.sleep(0.05)
                writer.publish(ShardMap(), version=9)
                await _until(lambda: len(seen) == 2)
            finally:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            return seen

        seen = asyncio.run(go())
        assert seen == [(1, 2), (9, 0)]

    def test_async_callback_supported(self, map_path):
        async def go():
            writer = ShardMapFile(map_path)
            watcher = ShardMapFile(map_path)
            seen = []

            async def on_update(shard_map, version):
                await asyncio.sleep(0)
                seen.append(version)

            task = asyncio.create_task(
                watcher.watch(on_update, poll_interval=0.01)
            )
            try:
                writer.publish(two_shard_map())
                await _until(lambda: seen == [1])
            finally:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            return seen

        assert asyncio.run(go()) == [1]


async def _until(predicate, *, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("timed out")
        await asyncio.sleep(0.01)


class TestMultiRouterDeterminism:
    def test_two_maps_from_one_file_agree_on_10k_ids(self, map_path):
        """The multi-host guarantee: same file => identical routing."""
        ShardMapFile(map_path).publish(
            ShardMap(
                [
                    ShardDescriptor(name=f"shard-{i}", port=9000 + i)
                    for i in range(5)
                ]
            )
        )
        first, _ = ShardMapFile(map_path).load()
        second, _ = ShardMapFile(map_path).load()
        assert first is not second
        device_ids = [os.urandom(32).hex() for _ in range(10_000)]
        assert [first.shard_for(d).name for d in device_ids] == [
            second.shard_for(d).name for d in device_ids
        ]

    def test_published_file_is_complete_json_at_all_times(self, map_path):
        """publish goes through atomic rename — a reader never sees a
        torn prefix even when racing the writer byte-for-byte."""
        map_file = ShardMapFile(map_path)
        for round_ in range(20):
            map_file.publish(two_shard_map())
            with open(map_path) as handle:
                json.loads(handle.read())  # must always parse
