"""Load-generation harness: honest/hostile mixes, merging, validation."""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.ppuf import Ppuf
from repro.service import PpufAuthServer, ServiceClient
from repro.service.faults import DROP, S2C, FaultPlan
from repro.service.fleet import LoadReport, run_load


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(8, 2, np.random.default_rng(21))


def run(coroutine):
    return asyncio.run(coroutine)


async def _serve_enrolled(device):
    server = PpufAuthServer(workers=0, rounds=1, seed=5)
    await server.start()
    async with ServiceClient("127.0.0.1", server.port) as client:
        await client.enroll(device)
    return server


class TestRunLoad:
    def test_honest_load_all_accepted(self, device):
        async def go():
            server = await _serve_enrolled(device)
            try:
                report = await run_load(
                    "127.0.0.1",
                    server.port,
                    [device],
                    clients=4,
                    duration_seconds=1.0,
                )
                stats = server.stats.snapshot()
            finally:
                await server.stop()
            return report, stats

        report, stats = run(go())
        assert report.sessions > 0
        assert report.accepted == report.sessions
        assert report.rejected == report.errors == 0
        assert report.hostile_sessions == 0
        assert len(report.latencies_ms) == report.sessions
        assert report.sessions_per_second > 0
        assert stats["sessions_accepted"] == report.sessions

    def test_hostile_fraction_all_rejected(self, device):
        """Every tampered session must come back rejected — none accepted."""

        async def go():
            server = await _serve_enrolled(device)
            try:
                return await run_load(
                    "127.0.0.1",
                    server.port,
                    [device],
                    clients=4,
                    duration_seconds=1.0,
                    hostile_fraction=0.5,
                )
            finally:
                await server.stop()

        report = run(go())
        assert report.hostile_sessions > 0
        assert report.hostile_rejected == report.hostile_sessions
        assert report.rejected == report.hostile_sessions
        assert report.accepted == report.sessions - report.hostile_sessions

    def test_chaos_plan_counts_errors_not_hangs(self, device):
        async def go():
            server = await _serve_enrolled(device)
            try:
                plan = FaultPlan()
                for _ in range(3):
                    plan.inject(DROP, direction=S2C, message_type="challenge")
                return await run_load(
                    "127.0.0.1",
                    server.port,
                    [device],
                    clients=2,
                    duration_seconds=1.0,
                    timeout=0.3,
                    fault_plan=plan,
                )
            finally:
                await server.stop()

        report = run(go())
        assert report.errors >= 1  # dropped challenges surfaced as errors
        assert report.sessions > 0  # and the run still made progress

    def test_validation(self, device):
        async def empty():
            await run_load("127.0.0.1", 1, [])

        async def bad_clients():
            await run_load("127.0.0.1", 1, [device], clients=0)

        async def bad_fraction():
            await run_load("127.0.0.1", 1, [device], hostile_fraction=1.5)

        for bad in (empty, bad_clients, bad_fraction):
            with pytest.raises(ServiceError):
                run(bad())


class TestLoadReport:
    def test_merge_sums_counts_and_extends_latencies(self):
        a = LoadReport(
            clients=2,
            duration_seconds=1.0,
            sessions=10,
            accepted=8,
            rejected=2,
            hostile_sessions=2,
            hostile_rejected=2,
            latencies_ms=[1.0, 2.0],
        )
        b = LoadReport(
            clients=3,
            duration_seconds=2.0,
            sessions=5,
            accepted=5,
            errors=1,
            latencies_ms=[3.0],
        )
        a.merge(b)
        assert a.clients == 5
        assert a.duration_seconds == 2.0  # max, not sum: workers overlap
        assert a.sessions == 15
        assert a.accepted == 13
        assert a.errors == 1
        assert a.latencies_ms == [1.0, 2.0, 3.0]
        assert a.sessions_per_second == pytest.approx(7.5)

    def test_to_dict_reports_percentiles(self):
        report = LoadReport(
            clients=1,
            duration_seconds=1.0,
            sessions=100,
            accepted=100,
            latencies_ms=[float(v) for v in range(1, 101)],
        )
        payload = report.to_dict()
        assert payload["latency_ms"]["p50"] == pytest.approx(50.5)
        assert payload["latency_ms"]["p99"] == pytest.approx(99.01)
        assert payload["latency_ms"]["max"] == 100.0
        assert payload["sessions_per_second"] == 100.0

    def test_empty_report_is_all_zero(self):
        payload = LoadReport(clients=0, duration_seconds=0.0).to_dict()
        assert payload["sessions_per_second"] == 0.0
        assert payload["latency_ms"] == {"p50": 0.0, "p99": 0.0, "max": 0.0}


class TestGenerateLoadValidation:
    def test_needs_exactly_one_source(self):
        from repro.service.fleet import generate_load

        with pytest.raises(ServiceError):
            generate_load("127.0.0.1", 1)
        with pytest.raises(ServiceError):
            generate_load("127.0.0.1", 1, devices=[object()], pack="x")

    def test_chaos_needs_single_process(self, device):
        from repro.service.fleet import generate_load

        with pytest.raises(ServiceError):
            generate_load(
                "127.0.0.1",
                1,
                devices=[device],
                processes=2,
                fault_plan=FaultPlan(),
            )
