"""ShardMap: rendezvous hashing, membership motion, drain lifecycle."""

import dataclasses

import pytest

from repro.errors import ServiceError
from repro.service.fleet import (
    ACTIVE,
    DOWN,
    DRAINING,
    ShardDescriptor,
    ShardMap,
    default_shard_names,
    shard_score,
)

DEVICE_IDS = [f"{index:064x}" for index in range(1000)]


def two_shard_map():
    shard_map = ShardMap()
    shard_map.add(ShardDescriptor(name="shard-0", port=9001))
    shard_map.add(ShardDescriptor(name="shard-1", port=9002))
    return shard_map


class TestShardDescriptor:
    def test_roundtrips_through_dict(self):
        shard = ShardDescriptor(name="shard-3", host="10.0.0.7", port=4242)
        assert ShardDescriptor.from_dict(shard.to_dict()) == shard

    def test_rejects_bad_state(self):
        with pytest.raises(ServiceError):
            ShardDescriptor(name="s", state="zombie")

    def test_rejects_empty_name(self):
        with pytest.raises(ServiceError):
            ShardDescriptor(name="")

    def test_only_active_is_routable(self):
        assert ShardDescriptor(name="s", state=ACTIVE).routable
        assert not ShardDescriptor(name="s", state=DRAINING).routable
        assert not ShardDescriptor(name="s", state=DOWN).routable


class TestRendezvousHashing:
    def test_deterministic(self):
        shard_map = two_shard_map()
        first = {d: shard_map.shard_for(d).name for d in DEVICE_IDS[:100]}
        second = {d: shard_map.shard_for(d).name for d in DEVICE_IDS[:100]}
        assert first == second

    def test_score_depends_on_both_inputs(self):
        assert shard_score("a", "device") != shard_score("b", "device")
        assert shard_score("a", "device") != shard_score("a", "other")

    def test_placement_is_by_highest_score(self):
        shard_map = two_shard_map()
        for device_id in DEVICE_IDS[:50]:
            want = max(
                ("shard-0", "shard-1"),
                key=lambda name: shard_score(name, device_id),
            )
            assert shard_map.shard_for(device_id).name == want

    def test_roughly_balanced(self):
        shard_map = two_shard_map()
        assignments = shard_map.assignments(DEVICE_IDS)
        sizes = sorted(len(ids) for ids in assignments.values())
        # 1000 ids over 2 shards: binomial(1000, 1/2) stays within ±10%.
        assert sizes[0] > 400 and sizes[1] < 600

    def test_adding_a_shard_moves_only_a_fraction(self):
        """The rendezvous property: growth moves ~1/(n+1) of the keys."""
        shard_map = two_shard_map()
        before = {d: shard_map.shard_for(d).name for d in DEVICE_IDS}
        shard_map.add(ShardDescriptor(name="shard-2", port=9003))
        moved = sum(
            1 for d in DEVICE_IDS if shard_map.shard_for(d).name != before[d]
        )
        # Exactly the keys now owned by shard-2 moved; nothing reshuffled
        # between the survivors.
        for device_id in DEVICE_IDS:
            owner = shard_map.shard_for(device_id).name
            if owner != "shard-2":
                assert owner == before[device_id]
        assert 200 < moved < 470  # ~1/3 expected

    def test_restart_on_new_port_moves_nothing(self):
        """Identity is the *name*: a new ephemeral port must not reshard."""
        shard_map = two_shard_map()
        before = {d: shard_map.shard_for(d).name for d in DEVICE_IDS[:200]}
        shard_map.update(ShardDescriptor(name="shard-0", port=59999))
        after = {d: shard_map.shard_for(d).name for d in DEVICE_IDS[:200]}
        assert before == after
        assert shard_map.get("shard-0").port == 59999


class TestMembership:
    def test_add_duplicate_rejected(self):
        shard_map = two_shard_map()
        with pytest.raises(ServiceError):
            shard_map.add(ShardDescriptor(name="shard-0", port=1))

    def test_update_unknown_rejected(self):
        with pytest.raises(ServiceError):
            two_shard_map().update(ShardDescriptor(name="nope", port=1))

    def test_drain_diverts_new_placements(self):
        shard_map = two_shard_map()
        shard_map.drain("shard-0")
        assert shard_map.get("shard-0").state == DRAINING
        for device_id in DEVICE_IDS[:50]:
            assert shard_map.shard_for(device_id).name == "shard-1"

    def test_remove_then_no_routable_shard(self):
        shard_map = two_shard_map()
        shard_map.remove("shard-0")
        shard_map.set_state("shard-1", DOWN)
        with pytest.raises(ServiceError):
            shard_map.shard_for(DEVICE_IDS[0])

    def test_len_and_contains(self):
        shard_map = two_shard_map()
        assert len(shard_map) == 2
        assert "shard-1" in shard_map
        assert "shard-9" not in shard_map

    def test_roundtrips_through_dict(self):
        shard_map = two_shard_map()
        shard_map.drain("shard-1")
        restored = ShardMap.from_dict(shard_map.to_dict())
        assert [s.to_dict() for s in restored.shards()] == [
            s.to_dict() for s in shard_map.shards()
        ]

    def test_default_shard_names(self):
        assert default_shard_names(3) == ["shard-0", "shard-1", "shard-2"]
        with pytest.raises(ServiceError):
            default_shard_names(0)


class TestDescriptorValidation:
    """from_dict must reject junk addresses, naming the offending field."""

    @pytest.mark.parametrize("port", [-1, -443, 65536, 99999])
    def test_out_of_range_port_rejected(self, port):
        with pytest.raises(ServiceError, match="'port'"):
            ShardDescriptor(name="s", port=port)
        with pytest.raises(ServiceError, match="'port'"):
            ShardDescriptor.from_dict({"name": "s", "port": port})

    @pytest.mark.parametrize("host", ["", "   ", "\t"])
    def test_blank_host_rejected(self, host):
        with pytest.raises(ServiceError, match="'host'"):
            ShardDescriptor(name="s", host=host)
        with pytest.raises(ServiceError, match="'host'"):
            ShardDescriptor.from_dict({"name": "s", "host": host})

    def test_error_names_the_shard(self):
        with pytest.raises(ServiceError, match="'shard-7'"):
            ShardDescriptor(name="shard-7", port=70000)

    @pytest.mark.parametrize("port", [0, 1, 65535])
    def test_boundary_ports_roundtrip(self, port):
        shard = ShardDescriptor(name="s", port=port)
        assert ShardDescriptor.from_dict(shard.to_dict()) == shard

    def test_descriptors_are_frozen(self):
        shard = ShardDescriptor(name="s", port=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            shard.state = DOWN


class TestCopyOnWrite:
    """State changes replace descriptors; snapshots are true snapshots."""

    def test_snapshot_unaffected_by_later_drain(self):
        shard_map = two_shard_map()
        snapshot = shard_map.shards()
        drained = shard_map.drain("shard-0")
        # The regression this pins: the captured list used to silently
        # flip to DRAINING because drain() mutated the shared object.
        assert snapshot[0].state == ACTIVE
        assert drained.state == DRAINING
        assert shard_map.get("shard-0") is drained
        assert drained is not snapshot[0]

    def test_set_state_returns_the_new_descriptor(self):
        shard_map = two_shard_map()
        down = shard_map.set_state("shard-1", DOWN)
        assert down.state == DOWN
        assert down.port == 9002  # address survives the state change
        assert shard_map.get("shard-1") is down

    def test_with_state_validates(self):
        with pytest.raises(ServiceError):
            ShardDescriptor(name="s").with_state("zombie")


class TestNoShardReasons:
    """Operators must be able to tell a planned drain from an outage."""

    def test_empty_map_says_empty(self):
        with pytest.raises(ServiceError, match="shard map is empty"):
            ShardMap().shard_for(DEVICE_IDS[0])

    def test_all_draining_says_draining(self):
        shard_map = two_shard_map()
        shard_map.drain("shard-0")
        shard_map.drain("shard-1")
        with pytest.raises(ServiceError, match="fleet is draining"):
            shard_map.shard_for(DEVICE_IDS[0])

    def test_all_down_says_down(self):
        shard_map = two_shard_map()
        shard_map.set_state("shard-0", DOWN)
        shard_map.set_state("shard-1", DOWN)
        with pytest.raises(ServiceError, match="fleet is down"):
            shard_map.shard_for(DEVICE_IDS[0])

    def test_mixed_drain_and_down_counts_both(self):
        shard_map = two_shard_map()
        shard_map.drain("shard-0")
        shard_map.set_state("shard-1", DOWN)
        with pytest.raises(
            ServiceError, match=r"1 draining, 1 down of 2 shards"
        ):
            shard_map.shard_for(DEVICE_IDS[0])


class TestReplaceAll:
    def test_swaps_membership_preserving_identity(self):
        shard_map = two_shard_map()
        alias = shard_map  # a router holding the map by reference
        shard_map.replace_all(
            [
                ShardDescriptor(name="shard-1", port=7001),
                ShardDescriptor(name="shard-2", port=7002),
            ]
        )
        assert alias is shard_map
        assert [s.name for s in alias.shards()] == ["shard-1", "shard-2"]
        assert alias.get("shard-1").port == 7001

    def test_duplicate_names_rejected_atomically(self):
        shard_map = two_shard_map()
        with pytest.raises(ServiceError, match="duplicate"):
            shard_map.replace_all(
                [
                    ShardDescriptor(name="x", port=1),
                    ShardDescriptor(name="x", port=2),
                ]
            )
        # The failed swap left the old membership untouched.
        assert [s.name for s in shard_map.shards()] == ["shard-0", "shard-1"]
