"""ShardMap: rendezvous hashing, membership motion, drain lifecycle."""

import pytest

from repro.errors import ServiceError
from repro.service.fleet import (
    ACTIVE,
    DOWN,
    DRAINING,
    ShardDescriptor,
    ShardMap,
    default_shard_names,
    shard_score,
)

DEVICE_IDS = [f"{index:064x}" for index in range(1000)]


def two_shard_map():
    shard_map = ShardMap()
    shard_map.add(ShardDescriptor(name="shard-0", port=9001))
    shard_map.add(ShardDescriptor(name="shard-1", port=9002))
    return shard_map


class TestShardDescriptor:
    def test_roundtrips_through_dict(self):
        shard = ShardDescriptor(name="shard-3", host="10.0.0.7", port=4242)
        assert ShardDescriptor.from_dict(shard.to_dict()) == shard

    def test_rejects_bad_state(self):
        with pytest.raises(ServiceError):
            ShardDescriptor(name="s", state="zombie")

    def test_rejects_empty_name(self):
        with pytest.raises(ServiceError):
            ShardDescriptor(name="")

    def test_only_active_is_routable(self):
        assert ShardDescriptor(name="s", state=ACTIVE).routable
        assert not ShardDescriptor(name="s", state=DRAINING).routable
        assert not ShardDescriptor(name="s", state=DOWN).routable


class TestRendezvousHashing:
    def test_deterministic(self):
        shard_map = two_shard_map()
        first = {d: shard_map.shard_for(d).name for d in DEVICE_IDS[:100]}
        second = {d: shard_map.shard_for(d).name for d in DEVICE_IDS[:100]}
        assert first == second

    def test_score_depends_on_both_inputs(self):
        assert shard_score("a", "device") != shard_score("b", "device")
        assert shard_score("a", "device") != shard_score("a", "other")

    def test_placement_is_by_highest_score(self):
        shard_map = two_shard_map()
        for device_id in DEVICE_IDS[:50]:
            want = max(
                ("shard-0", "shard-1"),
                key=lambda name: shard_score(name, device_id),
            )
            assert shard_map.shard_for(device_id).name == want

    def test_roughly_balanced(self):
        shard_map = two_shard_map()
        assignments = shard_map.assignments(DEVICE_IDS)
        sizes = sorted(len(ids) for ids in assignments.values())
        # 1000 ids over 2 shards: binomial(1000, 1/2) stays within ±10%.
        assert sizes[0] > 400 and sizes[1] < 600

    def test_adding_a_shard_moves_only_a_fraction(self):
        """The rendezvous property: growth moves ~1/(n+1) of the keys."""
        shard_map = two_shard_map()
        before = {d: shard_map.shard_for(d).name for d in DEVICE_IDS}
        shard_map.add(ShardDescriptor(name="shard-2", port=9003))
        moved = sum(
            1 for d in DEVICE_IDS if shard_map.shard_for(d).name != before[d]
        )
        # Exactly the keys now owned by shard-2 moved; nothing reshuffled
        # between the survivors.
        for device_id in DEVICE_IDS:
            owner = shard_map.shard_for(device_id).name
            if owner != "shard-2":
                assert owner == before[device_id]
        assert 200 < moved < 470  # ~1/3 expected

    def test_restart_on_new_port_moves_nothing(self):
        """Identity is the *name*: a new ephemeral port must not reshard."""
        shard_map = two_shard_map()
        before = {d: shard_map.shard_for(d).name for d in DEVICE_IDS[:200]}
        shard_map.update(ShardDescriptor(name="shard-0", port=59999))
        after = {d: shard_map.shard_for(d).name for d in DEVICE_IDS[:200]}
        assert before == after
        assert shard_map.get("shard-0").port == 59999


class TestMembership:
    def test_add_duplicate_rejected(self):
        shard_map = two_shard_map()
        with pytest.raises(ServiceError):
            shard_map.add(ShardDescriptor(name="shard-0", port=1))

    def test_update_unknown_rejected(self):
        with pytest.raises(ServiceError):
            two_shard_map().update(ShardDescriptor(name="nope", port=1))

    def test_drain_diverts_new_placements(self):
        shard_map = two_shard_map()
        shard_map.drain("shard-0")
        assert shard_map.get("shard-0").state == DRAINING
        for device_id in DEVICE_IDS[:50]:
            assert shard_map.shard_for(device_id).name == "shard-1"

    def test_remove_then_no_routable_shard(self):
        shard_map = two_shard_map()
        shard_map.remove("shard-0")
        shard_map.set_state("shard-1", DOWN)
        with pytest.raises(ServiceError):
            shard_map.shard_for(DEVICE_IDS[0])

    def test_len_and_contains(self):
        shard_map = two_shard_map()
        assert len(shard_map) == 2
        assert "shard-1" in shard_map
        assert "shard-9" not in shard_map

    def test_roundtrips_through_dict(self):
        shard_map = two_shard_map()
        shard_map.drain("shard-1")
        restored = ShardMap.from_dict(shard_map.to_dict())
        assert [s.to_dict() for s in restored.shards()] == [
            s.to_dict() for s in shard_map.shards()
        ]

    def test_default_shard_names(self):
        assert default_shard_names(3) == ["shard-0", "shard-1", "shard-2"]
        with pytest.raises(ServiceError):
            default_shard_names(0)
