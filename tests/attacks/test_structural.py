"""The structural-simulator attacker."""

import pytest

from repro.attacks import StructuralSimulator
from repro.errors import AttackError
from repro.ppuf.delay import lin_mead_delay_bound


class TestStructuralSimulator:
    def test_perfect_prediction_on_public_model(self, small_ppuf, rng):
        challenges = small_ppuf.challenge_space().random_batch(8, rng)
        references = small_ppuf.response_bits(challenges)
        attacker = StructuralSimulator(small_ppuf)
        assert attacker.prediction_error(challenges, references) == 0.0

    def test_latency_recorded_per_query(self, small_ppuf, rng):
        attacker = StructuralSimulator(small_ppuf)
        challenges = small_ppuf.challenge_space().random_batch(3, rng)
        for challenge in challenges:
            attacker.predict(challenge)
        assert len(attacker.query_seconds) == 3
        assert attacker.mean_query_seconds > 0

    def test_latency_ratio_vs_device(self, small_ppuf, rng):
        attacker = StructuralSimulator(small_ppuf)
        attacker.predict(small_ppuf.challenge_space().random(rng))
        ratio = attacker.latency_ratio(lin_mead_delay_bound(small_ppuf.n))
        # Even a tiny 10-node device outruns software simulation by orders
        # of magnitude.
        assert ratio > 100

    def test_validation(self, small_ppuf, rng):
        attacker = StructuralSimulator(small_ppuf)
        with pytest.raises(AttackError):
            attacker.mean_query_seconds
        with pytest.raises(AttackError):
            attacker.prediction_error([], [])
        challenge = small_ppuf.challenge_space().random(rng)
        with pytest.raises(AttackError):
            attacker.prediction_error([challenge], [0, 1])
        attacker.predict(challenge)
        with pytest.raises(AttackError):
            attacker.latency_ratio(0.0)

    def test_solver_choice_does_not_change_predictions(self, small_ppuf, rng):
        challenges = small_ppuf.challenge_space().random_batch(5, rng)
        fast = StructuralSimulator(small_ppuf, algorithm="push_relabel")
        slow = StructuralSimulator(small_ppuf, algorithm="edmonds_karp")
        assert [fast.predict(c) for c in challenges] == [
            slow.predict(c) for c in challenges
        ]
