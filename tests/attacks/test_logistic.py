"""Logistic-regression attacker."""

import numpy as np
import pytest

from repro.attacks.logistic import LogisticAttacker
from repro.errors import AttackError

from tests.attacks.test_learners import blob_dataset, xor_dataset


class TestLogistic:
    def test_learns_separable_blobs(self, rng):
        x, y = blob_dataset(rng)
        model = LogisticAttacker().fit(x[:80], y[:80])
        assert model.error_rate(x[80:], y[80:]) < 0.1

    def test_cannot_learn_xor(self, rng):
        x, y = xor_dataset(rng)
        model = LogisticAttacker().fit(x[:150], y[:150])
        assert model.error_rate(x[150:], y[150:]) > 0.3

    def test_breaks_arbiter_on_parity_features(self, rng):
        from repro.baselines import ArbiterPuf

        puf = ArbiterPuf(16, rng)
        challenges = rng.integers(0, 2, size=(2000, 16), dtype=np.uint8)
        features = ArbiterPuf.parity_features(challenges)
        labels = puf.respond(challenges) * 2.0 - 1.0
        model = LogisticAttacker().fit(features[:1500], labels[:1500])
        assert model.error_rate(features[1500:], labels[1500:]) < 0.06

    def test_constant_labels_degenerate(self, rng):
        x = rng.normal(size=(10, 3))
        model = LogisticAttacker().fit(x, -np.ones(10))
        assert np.all(model.predict(x) == -1.0)

    def test_validation(self, rng):
        x = rng.normal(size=(6, 2))
        with pytest.raises(AttackError):
            LogisticAttacker().fit(x, np.zeros(6))
        with pytest.raises(AttackError):
            LogisticAttacker(ridge=0.0).fit(x, np.array([1.0, -1, 1, -1, 1, -1]))
        with pytest.raises(AttackError):
            LogisticAttacker().predict(x)

    def test_decision_function_is_calibrated_sign(self, rng):
        x, y = blob_dataset(rng, n=100)
        model = LogisticAttacker().fit(x, y)
        scores = model.decision_function(x)
        predictions = model.predict(x)
        assert np.all((scores >= 0) == (predictions == 1.0))
