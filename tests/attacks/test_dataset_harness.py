"""Attack datasets and the Fig. 10 harness."""

import numpy as np
import pytest

from repro.attacks.dataset import (
    build_attack_dataset,
    build_ppuf_attack_dataset,
    challenge_features,
)
from repro.attacks.harness import KNN_KS, attack_curve, best_prediction_error
from repro.errors import AttackError


def parity_responder(words):
    return (np.sum(words, axis=1) % 2).astype(np.uint8)


class TestBuildAttackDataset:
    def test_shapes_and_encoding(self, rng):
        dataset = build_attack_dataset(parity_responder, 6, 40, 20, rng)
        assert dataset.num_train == 40
        assert dataset.num_test == 20
        assert set(np.unique(dataset.train_x)) <= {-1.0, 1.0}
        assert set(np.unique(dataset.train_y)) <= {-1.0, 1.0}

    def test_feature_map_applied(self, rng):
        def doubler(words):
            return np.hstack([words, words]).astype(np.float64)

        dataset = build_attack_dataset(parity_responder, 6, 10, 5, rng, feature_map=doubler)
        assert dataset.train_x.shape == (10, 12)

    def test_bad_responder_shape_rejected(self, rng):
        with pytest.raises(AttackError):
            build_attack_dataset(lambda w: np.zeros(3), 6, 10, 5, rng)

    def test_truncation_keeps_test_set(self, rng):
        dataset = build_attack_dataset(parity_responder, 6, 40, 20, rng)
        small = dataset.truncated(10)
        assert small.num_train == 10
        assert np.array_equal(small.test_x, dataset.test_x)

    def test_truncation_validation(self, rng):
        dataset = build_attack_dataset(parity_responder, 6, 10, 5, rng)
        with pytest.raises(AttackError):
            dataset.truncated(0)
        with pytest.raises(AttackError):
            dataset.truncated(11)


class TestChallengeFeatures:
    def test_layout(self, small_ppuf, rng):
        challenge = small_ppuf.challenge_space().random(rng)
        features = challenge_features(challenge, small_ppuf.n)
        n = small_ppuf.n
        assert features.size == 2 * n + challenge.num_bits
        assert features[:n].sum() == 1.0  # one-hot source
        assert features[n:2 * n].sum() == 1.0  # one-hot sink


class TestPpufAttackDataset:
    def test_full_challenge_dataset(self, small_ppuf, rng):
        dataset = build_ppuf_attack_dataset(small_ppuf, 30, 10, rng)
        assert dataset.train_x.shape == (30, 2 * small_ppuf.n + 9)

    def test_fixed_terminals_reduce_feature_variety(self, small_ppuf, rng):
        dataset = build_ppuf_attack_dataset(small_ppuf, 20, 5, rng, fixed_terminals=True)
        n = small_ppuf.n
        # The one-hot terminal fields are constant across samples.
        assert np.all(dataset.train_x[:, :2 * n] == dataset.train_x[0, :2 * n])


class TestHarness:
    def test_best_error_keys(self, rng):
        dataset = build_attack_dataset(parity_responder, 5, 60, 30, rng)
        errors = best_prediction_error(dataset)
        assert {"svm", "knn", "best"} <= set(errors)
        assert errors["best"] <= min(errors["svm"], errors["knn"])

    def test_curve_is_per_size(self, rng):
        dataset = build_attack_dataset(parity_responder, 5, 80, 30, rng)
        points = attack_curve(dataset, [10, 40, 80])
        assert [p.num_crps for p in points] == [10, 40, 80]
        for point in points:
            assert 0.0 <= point.best_error <= 1.0

    def test_knn_sweep_matches_paper(self):
        assert KNN_KS == tuple(range(1, 22, 2))

    def test_minimum_training_size(self, rng):
        dataset = build_attack_dataset(parity_responder, 5, 10, 5, rng)
        with pytest.raises(AttackError):
            best_prediction_error(dataset.truncated(1))

    def test_learnable_target_improves_with_data(self, rng):
        """A linearly separable target: error decreases with more CRPs."""

        weights = rng.normal(size=8)

        def linear_target(words):
            signs = words * 2.0 - 1.0
            return (signs @ weights > 0).astype(np.uint8)

        dataset = build_attack_dataset(linear_target, 8, 600, 300, rng)
        points = attack_curve(dataset, [20, 600])
        assert points[-1].best_error < points[0].best_error
        assert points[-1].best_error < 0.1
