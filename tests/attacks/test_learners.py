"""The attack learners: kernels, LS-SVM, linear ridge, RFF, KNN."""

import numpy as np
import pytest

from repro.attacks.kernels import linear_kernel, median_heuristic_gamma, rbf_kernel
from repro.attacks.knn import KNNClassifier
from repro.attacks.linear import LinearRidgeClassifier
from repro.attacks.lssvm import LSSVM
from repro.attacks.rff import RFFRidge
from repro.errors import AttackError


def blob_dataset(rng, n=120, separation=3.0):
    """Two Gaussian blobs in 4 dims, linearly separable."""
    half = n // 2
    x = np.vstack(
        [
            rng.normal(-separation / 2, 1.0, size=(half, 4)),
            rng.normal(separation / 2, 1.0, size=(half, 4)),
        ]
    )
    y = np.concatenate([-np.ones(half), np.ones(half)])
    order = rng.permutation(n)
    return x[order], y[order]


def xor_dataset(rng, n=200):
    """The XOR problem: not linearly separable, RBF/KNN territory."""
    x = rng.uniform(-1, 1, size=(n, 2))
    y = np.where(x[:, 0] * x[:, 1] > 0, 1.0, -1.0)
    return x, y


class TestKernels:
    def test_rbf_diagonal_is_one(self, rng):
        x = rng.normal(size=(5, 3))
        kernel = rbf_kernel(x, x, gamma=0.5)
        assert np.allclose(np.diag(kernel), 1.0)

    def test_rbf_decays_with_distance(self):
        x = np.array([[0.0], [1.0], [5.0]])
        kernel = rbf_kernel(x, x, gamma=1.0)
        assert kernel[0, 1] > kernel[0, 2]

    def test_rbf_gamma_validation(self, rng):
        x = rng.normal(size=(3, 2))
        with pytest.raises(AttackError):
            rbf_kernel(x, x, gamma=0.0)

    def test_linear_kernel_is_gram(self, rng):
        x = rng.normal(size=(4, 3))
        assert np.allclose(linear_kernel(x, x), x @ x.T)

    def test_median_heuristic_positive(self, rng):
        x = rng.normal(size=(50, 4))
        assert median_heuristic_gamma(x) > 0

    def test_median_heuristic_degenerate(self):
        x = np.zeros((10, 3))
        with pytest.raises(AttackError):
            median_heuristic_gamma(x)


class TestLSSVM:
    def test_learns_separable_blobs(self, rng):
        x, y = blob_dataset(rng)
        model = LSSVM().fit(x[:80], y[:80])
        assert model.error_rate(x[80:], y[80:]) < 0.1

    def test_rbf_learns_xor(self, rng):
        x, y = xor_dataset(rng)
        model = LSSVM().fit(x[:150], y[:150])
        assert model.error_rate(x[150:], y[150:]) < 0.25

    def test_linear_kernel_fails_xor(self, rng):
        x, y = xor_dataset(rng)
        model = LSSVM(kernel="linear").fit(x[:150], y[:150])
        assert model.error_rate(x[150:], y[150:]) > 0.3

    def test_constant_labels_degenerate_fit(self, rng):
        x = rng.normal(size=(10, 3))
        model = LSSVM().fit(x, np.ones(10))
        assert np.all(model.predict(x) == 1.0)

    def test_label_validation(self, rng):
        x = rng.normal(size=(6, 2))
        with pytest.raises(AttackError):
            LSSVM().fit(x, np.array([0, 1, 0, 1, 0, 1]))

    def test_unfitted_predict_rejected(self, rng):
        with pytest.raises(AttackError):
            LSSVM().predict(rng.normal(size=(2, 2)))

    def test_unknown_kernel(self, rng):
        x, y = blob_dataset(rng, n=20)
        with pytest.raises(AttackError):
            LSSVM(kernel="poly").fit(x, y)


class TestLinearRidge:
    def test_learns_separable_blobs(self, rng):
        x, y = blob_dataset(rng)
        model = LinearRidgeClassifier().fit(x[:80], y[:80])
        assert model.error_rate(x[80:], y[80:]) < 0.1

    def test_scales_to_large_n(self, rng):
        x, y = blob_dataset(rng, n=5000)
        model = LinearRidgeClassifier().fit(x, y)
        assert model.error_rate(x, y) < 0.1

    def test_validation(self, rng):
        with pytest.raises(AttackError):
            LinearRidgeClassifier(ridge=0.0).fit(rng.normal(size=(4, 2)), np.ones(4))


class TestRFF:
    def test_approximates_rbf_on_xor(self, rng):
        x, y = xor_dataset(rng, n=400)
        model = RFFRidge(num_features=512, seed=1).fit(x[:300], y[:300])
        assert model.error_rate(x[300:], y[300:]) < 0.25

    def test_agrees_with_exact_lssvm_on_blobs(self, rng):
        x, y = blob_dataset(rng, n=160)
        exact = LSSVM().fit(x[:120], y[:120])
        approx = RFFRidge(num_features=1024, seed=2).fit(x[:120], y[:120])
        exact_err = exact.error_rate(x[120:], y[120:])
        approx_err = approx.error_rate(x[120:], y[120:])
        assert abs(exact_err - approx_err) < 0.15

    def test_deterministic_per_seed(self, rng):
        x, y = blob_dataset(rng, n=60)
        a = RFFRidge(seed=9).fit(x, y).decision_function(x)
        b = RFFRidge(seed=9).fit(x, y).decision_function(x)
        assert np.allclose(a, b)

    def test_validation(self, rng):
        x, y = blob_dataset(rng, n=20)
        with pytest.raises(AttackError):
            RFFRidge(num_features=0).fit(x, y)
        with pytest.raises(AttackError):
            RFFRidge(ridge=0.0).fit(x, y)


class TestKNN:
    def test_one_nn_memorises_training_set(self, rng):
        x, y = blob_dataset(rng, n=60)
        model = KNNClassifier(k=1).fit(x, y)
        assert model.error_rate(x, y) == 0.0

    def test_learns_xor(self, rng):
        x, y = xor_dataset(rng, n=400)
        model = KNNClassifier(k=5).fit(x[:300], y[:300])
        assert model.error_rate(x[300:], y[300:]) < 0.25

    def test_k_larger_than_train_rejected(self, rng):
        x, y = blob_dataset(rng, n=10)
        with pytest.raises(AttackError):
            KNNClassifier(k=11).fit(x, y)

    def test_even_k_tie_break_is_nearest(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([-1.0, 1.0])
        model = KNNClassifier(k=2).fit(x, y)
        assert model.predict(np.array([[0.1]]))[0] == -1.0
        assert model.predict(np.array([[0.9]]))[0] == 1.0

    def test_unfitted_predict_rejected(self):
        with pytest.raises(AttackError):
            KNNClassifier().predict(np.zeros((1, 2)))
