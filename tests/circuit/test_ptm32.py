"""Technology card and operating conditions."""

import dataclasses

import pytest

from repro.circuit.ptm32 import (
    CAPACITY_REFERENCE_VOLTAGE,
    NOMINAL_CONDITIONS,
    OperatingConditions,
    PTM32,
)
from repro.errors import DeviceError
from repro.units import celsius


class TestTechnology:
    def test_default_card_is_valid(self):
        assert PTM32.vt0 > 0
        assert PTM32.k_prime > 0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("k_prime", 0.0),
            ("lam", -0.1),
            ("subthreshold_theta", 0.0),
            ("diode_is", 0.0),
            ("r_degeneration", -1.0),
            ("sigma_vt", -0.001),
            ("c_edge", 0.0),
            ("temperature", 0.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(DeviceError):
            dataclasses.replace(PTM32, **{field: value})

    def test_at_temperature_shifts_vt_down_when_hot(self):
        hot = PTM32.at_temperature(PTM32.temperature + 50.0)
        assert hot.vt0 < PTM32.vt0
        assert hot.temperature == PTM32.temperature + 50.0

    def test_at_temperature_reduces_mobility_when_hot(self):
        hot = PTM32.at_temperature(PTM32.temperature + 50.0)
        assert hot.k_prime < PTM32.k_prime

    def test_at_temperature_roundtrip_is_identity(self):
        there = PTM32.at_temperature(350.0)
        back = there.at_temperature(PTM32.temperature)
        assert back.vt0 == pytest.approx(PTM32.vt0)
        assert back.k_prime == pytest.approx(PTM32.k_prime, rel=1e-12)

    def test_at_temperature_rejects_nonpositive(self):
        with pytest.raises(DeviceError):
            PTM32.at_temperature(-1.0)


class TestOperatingConditions:
    def test_defaults_match_paper_section5(self):
        assert NOMINAL_CONDITIONS.v_supply == 2.0
        assert NOMINAL_CONDITIONS.v_b == 0.1
        assert NOMINAL_CONDITIONS.v_c == 1.2
        assert NOMINAL_CONDITIONS.vgs_bit1 == 0.5

    def test_gate_biases_sum_to_vc(self):
        for bit in (0, 1):
            vgs0, vgs1 = NOMINAL_CONDITIONS.gate_biases(bit)
            assert vgs0 + vgs1 == pytest.approx(NOMINAL_CONDITIONS.v_c)

    def test_gate_biases_differ_per_bit(self):
        assert NOMINAL_CONDITIONS.gate_biases(0) != NOMINAL_CONDITIONS.gate_biases(1)

    def test_gate_biases_reject_non_binary(self):
        with pytest.raises(DeviceError):
            NOMINAL_CONDITIONS.gate_biases(2)

    def test_supply_scaling(self):
        scaled = NOMINAL_CONDITIONS.with_supply_scale(1.1)
        assert scaled.v_supply == pytest.approx(2.2)
        with pytest.raises(DeviceError):
            NOMINAL_CONDITIONS.with_supply_scale(0.0)

    def test_temperature_corner(self):
        cold = NOMINAL_CONDITIONS.with_temperature_celsius(-20.0)
        assert cold.temperature == pytest.approx(celsius(-20.0))

    def test_invalid_bias_rejected(self):
        with pytest.raises(DeviceError):
            OperatingConditions(vgs_bit1=1.5)


def test_capacity_reference_inside_supply():
    assert 0 < CAPACITY_REFERENCE_VOLTAGE < NOMINAL_CONDITIONS.v_supply
