"""Process-variation sampling."""

import numpy as np
import pytest

from repro.circuit.variation import (
    M1_TOP,
    M2_BOTTOM,
    VariationModel,
    VariationSample,
)
from repro.errors import DeviceError


class TestVariationSample:
    def test_nominal_sample_is_zero(self):
        sample = VariationSample.nominal(7)
        assert sample.num_edges == 7
        assert np.all(sample.delta_vt == 0)
        assert np.all(sample.systematic == 0)

    def test_total_adds_systematic(self):
        sample = VariationSample(
            delta_vt=np.ones((3, 4)) * 0.01,
            systematic=np.full(3, 0.005),
        )
        assert np.allclose(sample.total(M1_TOP), 0.015)

    def test_shape_validation(self):
        with pytest.raises(DeviceError):
            VariationSample(delta_vt=np.zeros((3, 3)), systematic=np.zeros(3))
        with pytest.raises(DeviceError):
            VariationSample(delta_vt=np.zeros((3, 4)), systematic=np.zeros(2))


class TestVariationModel:
    def test_sample_statistics(self, tech, rng):
        sample = VariationModel(tech).sample(5000, rng)
        assert sample.delta_vt.std() == pytest.approx(tech.sigma_vt, rel=0.05)
        assert sample.systematic.std() == pytest.approx(
            tech.sigma_vt_systematic, rel=0.1
        )
        assert abs(sample.delta_vt.mean()) < tech.sigma_vt / 10

    def test_columns_are_independent(self, tech, rng):
        sample = VariationModel(tech).sample(5000, rng)
        correlation = np.corrcoef(sample.delta_vt[:, M1_TOP], sample.delta_vt[:, M2_BOTTOM])
        assert abs(correlation[0, 1]) < 0.05

    def test_side_by_side_shares_systematic(self, tech, rng):
        a, b = VariationModel(tech).sample_pair(100, rng, side_by_side=True)
        assert np.array_equal(a.systematic, b.systematic)
        assert not np.array_equal(a.delta_vt, b.delta_vt)

    def test_separate_placement_draws_independent_systematic(self, tech, rng):
        a, b = VariationModel(tech).sample_pair(100, rng, side_by_side=False)
        assert not np.array_equal(a.systematic, b.systematic)

    def test_invalid_edge_count(self, tech, rng):
        with pytest.raises(DeviceError):
            VariationModel(tech).sample(0, rng)

    def test_determinism(self, tech):
        a = VariationModel(tech).sample(10, np.random.default_rng(3))
        b = VariationModel(tech).sample(10, np.random.default_rng(3))
        assert np.array_equal(a.delta_vt, b.delta_vt)
