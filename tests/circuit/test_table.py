"""Shared-voltage-grid edge tables."""

import numpy as np
import pytest

from repro.circuit.table import GMIN, EdgeTable
from repro.errors import DeviceError


def linear_v_of_i(resistances):
    """Simple ohmic test elements: V = I * R per edge row."""

    def v_of_i(current_matrix):
        return current_matrix * resistances[:, None]

    return v_of_i


@pytest.fixture
def ohmic_table():
    resistances = np.array([1.0, 2.0, 4.0])
    scales = np.array([3.0, 1.5, 0.75])  # I at V = v_max per edge roughly
    return (
        EdgeTable.build(linear_v_of_i(resistances), scales, v_max=2.0, num_points=201),
        resistances,
    )


class TestBuild:
    def test_shapes(self, ohmic_table):
        table, _ = ohmic_table
        assert table.num_edges == 3
        assert table.v_grid[0] == 0.0
        assert table.v_max == 2.0
        assert table.currents.shape == table.cocontent.shape

    def test_linear_elements_reproduced(self, ohmic_table):
        table, resistances = ohmic_table
        dv = np.array([0.5, 1.0, 1.5])
        current, conductance, _ = table.evaluate(dv)
        assert current == pytest.approx(dv / resistances, rel=1e-6)
        assert conductance == pytest.approx(1.0 / resistances, rel=1e-6)

    def test_cocontent_is_quadratic_for_ohmic(self, ohmic_table):
        table, resistances = ohmic_table
        dv = np.array([1.0, 1.0, 1.0])
        _, _, cocontent = table.evaluate(dv)
        assert cocontent == pytest.approx(0.5 * dv**2 / resistances, rel=1e-4)

    def test_monotone_currents(self, ohmic_table):
        table, _ = ohmic_table
        assert np.all(np.diff(table.currents, axis=1) >= 0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(DeviceError):
            EdgeTable.build(lambda i: i, np.array([0.0]), v_max=1.0)
        with pytest.raises(DeviceError):
            EdgeTable.build(lambda i: i, np.array([1.0]), v_max=-1.0)


class TestEvaluate:
    def test_zero_voltage(self, ohmic_table):
        table, _ = ohmic_table
        current, conductance, cocontent = table.evaluate(np.zeros(3))
        assert np.all(current == 0.0)
        assert np.all(conductance >= GMIN)
        assert np.all(cocontent == 0.0)

    def test_negative_voltage_gmin_leak(self, ohmic_table):
        table, _ = ohmic_table
        current, conductance, cocontent = table.evaluate(np.array([-1.0, -0.5, 0.0]))
        assert current[0] == pytest.approx(-GMIN)
        assert conductance[0] == GMIN
        assert cocontent[0] == pytest.approx(0.5 * GMIN)

    def test_wrong_shape_rejected(self, ohmic_table):
        table, _ = ohmic_table
        with pytest.raises(DeviceError):
            table.evaluate(np.zeros(4))

    def test_conductance_floor(self):
        # A flat element (zero slope) still reports GMIN.
        def flat(current_matrix):
            return current_matrix * 1e12  # immediately saturates the grid

        table = EdgeTable.build(flat, np.array([1e-9]), v_max=1.0, num_points=51)
        _, conductance, _ = table.evaluate(np.array([0.9]))
        assert conductance[0] >= GMIN


class TestAgainstRealEdges:
    def test_table_matches_exact_block(self, tech, conditions):
        """The tabulated edge agrees with the exact Brent-solved block."""
        from repro.blocks.edge import EdgeBlock, edge_saturation_scale, edge_voltage
        from repro.circuit.variation import VariationSample

        sample = VariationSample.nominal(1)
        bits = np.ones(1, dtype=np.uint8)

        def v_of_i(current_matrix):
            return edge_voltage(current_matrix, bits, sample, tech, conditions)

        scale = edge_saturation_scale(bits, sample, tech, conditions)
        table = EdgeTable.build(v_of_i, scale, v_max=conditions.v_supply)
        block = EdgeBlock(tech, conditions, bit=1)
        # Tight in the saturated operating region; looser in the diode
        # exponential region where linear interpolation rounds corners.
        for voltage, rel in ((0.2, 0.1), (0.6, 2e-3), (1.0, 2e-3), (1.5, 2e-3), (1.95, 2e-3)):
            tabulated, _, _ = table.evaluate(np.array([voltage]))
            exact = block.current(voltage)
            assert tabulated[0] == pytest.approx(exact, rel=rel, abs=1e-12)
