"""Linearised RC settling and small-signal extraction."""

import numpy as np
import pytest

from repro.circuit.linearize import conductance_laplacian
from repro.circuit.rc import node_capacitances, settling_time_linearized
from repro.errors import GraphError, SolverError


class TestNodeCapacitances:
    def test_linear_growth_with_incident_edges(self):
        counts = np.array([2, 4, 8])
        caps = node_capacitances(3, counts, c_edge=1e-15, c_node0=2e-15)
        assert caps == pytest.approx([4e-15, 6e-15, 10e-15])

    def test_shape_validation(self):
        with pytest.raises(GraphError):
            node_capacitances(3, np.array([1, 2]), 1e-15, 0.0)

    def test_positive_capacitance_required(self):
        with pytest.raises(GraphError):
            node_capacitances(2, np.array([1, 1]), 0.0, 0.0)


class TestConductanceLaplacian:
    def test_laplacian_rows_sum_to_zero(self):
        src = np.array([0, 1, 0])
        dst = np.array([1, 2, 2])
        g = np.array([1.0, 2.0, 3.0])
        laplacian = conductance_laplacian(3, src, dst, g)
        assert np.allclose(laplacian.sum(axis=1), 0.0)
        assert np.allclose(laplacian, laplacian.T)

    def test_diagonal_is_incident_sum(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        g = np.array([1.5, 2.5])
        laplacian = conductance_laplacian(3, src, dst, g)
        assert laplacian[1, 1] == pytest.approx(4.0)


class TestSettlingTime:
    def _rc_chain(self, g, c):
        """source - g - node - g - sink: single time constant c / (2g)."""
        laplacian = conductance_laplacian(
            3, np.array([0, 1]), np.array([1, 2]), np.array([g, g])
        )
        capacitance = np.full(3, c)
        return laplacian, capacitance

    def test_single_pole_time_constant(self):
        g, c = 1e-6, 1e-12
        laplacian, capacitance = self._rc_chain(g, c)
        settle = settling_time_linearized(
            laplacian, capacitance, pinned=(0, 2), settle_ratio=np.exp(-1)
        )
        assert settle == pytest.approx(c / (2 * g), rel=1e-9)

    def test_settle_ratio_scales_logarithmically(self):
        laplacian, capacitance = self._rc_chain(1e-6, 1e-12)
        t3 = settling_time_linearized(laplacian, capacitance, pinned=(0, 2), settle_ratio=1e-3)
        t6 = settling_time_linearized(laplacian, capacitance, pinned=(0, 2), settle_ratio=1e-6)
        assert t6 == pytest.approx(2 * t3, rel=1e-9)

    def test_disconnected_node_raises(self):
        laplacian = np.zeros((3, 3))
        capacitance = np.full(3, 1e-12)
        with pytest.raises(SolverError):
            settling_time_linearized(laplacian, capacitance, pinned=(0,))

    def test_validation(self):
        laplacian, capacitance = self._rc_chain(1e-6, 1e-12)
        with pytest.raises(GraphError):
            settling_time_linearized(laplacian, capacitance, pinned=(0, 1, 2))
        with pytest.raises(GraphError):
            settling_time_linearized(laplacian, capacitance, pinned=(0,), settle_ratio=2.0)
