"""Nonlinear transient simulation."""

import numpy as np
import pytest

from repro.circuit.table import EdgeTable
from repro.circuit.transient import simulate_turn_on
from repro.errors import GraphError


def ohmic_table(resistances, v_max=2.0):
    resistances = np.asarray(resistances, dtype=np.float64)

    def v_of_i(current_matrix):
        return current_matrix * resistances[:, None]

    return EdgeTable.build(
        v_of_i, v_max / resistances * 1.5, v_max=v_max, num_points=401
    )


class TestRCChargeUp:
    """source - R - node(C) - R - sink: an analytically solvable RC."""

    R = 1e6
    C = 1e-12

    def _simulate(self, duration, steps=400):
        table = ohmic_table([self.R, self.R])
        return simulate_turn_on(
            3,
            np.array([0, 1]),
            np.array([1, 2]),
            table,
            np.array([1e-18, self.C, 1e-18]),
            source=0,
            sink=2,
            v_supply=2.0,
            duration=duration,
            steps=steps,
            settle_ratio=1e-2,
        )

    def test_final_current_matches_dc(self):
        result = self._simulate(duration=20 * self.R * self.C / 2)
        assert result.final_current == pytest.approx(2.0 / (2 * self.R), rel=1e-3)

    def test_settling_time_matches_analytic_tau(self):
        # tau = C * (R/2) (two resistors in parallel from the node's view);
        # 1 % settling of the source current ~ tau * ln(100 / 2)...
        # assert the order instead of the exact constant: within [2, 8] tau.
        tau = self.C * self.R / 2
        result = self._simulate(duration=30 * tau, steps=600)
        assert result.settling_time is not None
        assert 1.0 * tau < result.settling_time < 8.0 * tau

    def test_current_decays_monotonically_after_the_step(self):
        # At t=0+ the node is at 0 V, so the source edge sees the full 2 V
        # and delivers 2/R; it then decays to the DC value 1/R.
        result = self._simulate(duration=10 * self.R * self.C)
        currents = result.source_currents[1:]  # drop the t=0 sample
        assert currents[0] > 1.5 * result.final_current
        assert np.all(np.diff(currents) <= 1e-12)

    def test_too_short_run_reports_unsettled(self):
        tau = self.C * self.R / 2
        result = self._simulate(duration=0.1 * tau, steps=20)
        assert result.settling_time is None


class TestValidation:
    def test_input_checks(self):
        table = ohmic_table([1.0])
        with pytest.raises(GraphError):
            simulate_turn_on(
                2, np.array([0]), np.array([1]), table, np.array([1e-12]),
                source=0, sink=1, v_supply=1.0, duration=1.0,
            )  # capacitance shape
        with pytest.raises(GraphError):
            simulate_turn_on(
                2, np.array([0]), np.array([1]), table, np.array([1e-12, 0.0]),
                source=0, sink=1, v_supply=1.0, duration=1.0,
            )  # nonpositive capacitance
        with pytest.raises(GraphError):
            simulate_turn_on(
                2, np.array([0]), np.array([1]), table, np.array([1e-12, 1e-12]),
                source=0, sink=0, v_supply=1.0, duration=1.0,
            )  # equal terminals
        with pytest.raises(GraphError):
            simulate_turn_on(
                2, np.array([0]), np.array([1]), table, np.array([1e-12, 1e-12]),
                source=0, sink=1, v_supply=1.0, duration=-1.0,
            )  # duration


class TestOnPpufNetwork:
    def test_transient_settles_to_maxflow_value(self, small_ppuf):
        from repro.ppuf.delay import transient_settling_time

        edges = small_ppuf.crossbar.num_edges
        bits = np.ones(edges, dtype=np.uint8)
        settle = transient_settling_time(small_ppuf.network_a, bits, 0, 9)
        assert settle > 0

    def test_transient_final_current_matches_dc_solution(self, small_ppuf):
        from repro.circuit.transient import simulate_turn_on
        from repro.ppuf.delay import lin_mead_delay_bound, node_capacitances_for

        network = small_ppuf.network_a
        edges = network.crossbar.num_edges
        bits = np.zeros(edges, dtype=np.uint8)
        src, dst = network.crossbar.edge_endpoints()
        result = simulate_turn_on(
            network.crossbar.n,
            src,
            dst,
            network.edge_table(bits),
            node_capacitances_for(network),
            source=0,
            sink=9,
            v_supply=network.conditions.v_supply,
            duration=40 * lin_mead_delay_bound(network.crossbar.n),
            steps=200,
        )
        dc_current = network.circuit_current(bits, 0, 9)
        assert result.final_current == pytest.approx(dc_current, rel=2e-3)

    def test_tighter_band_settles_later(self, small_ppuf):
        from repro.ppuf.delay import transient_settling_time

        bits = np.ones(small_ppuf.crossbar.num_edges, dtype=np.uint8)
        loose = transient_settling_time(
            small_ppuf.network_a, bits, 0, 9, settle_ratio=5e-2
        )
        tight = transient_settling_time(
            small_ppuf.network_a, bits, 0, 9, settle_ratio=5e-3
        )
        assert tight >= loose
