"""Property-based tests on device characteristics (hypothesis).

The whole ESG argument rests on incremental passivity, which in turn rests
on every composed characteristic being strictly monotone.  These properties
are checked over randomly drawn bias points and variation shifts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.devices.diode import diode_current, diode_voltage
from repro.circuit.devices.mosfet import drain_current, vds_from_current
from repro.circuit.devices.stack import stack_voltage
from repro.circuit.ptm32 import PTM32

SETTINGS = dict(max_examples=50, deadline=None)

gate_biases = st.floats(min_value=0.35, max_value=0.9)
vt_shifts = st.floats(min_value=-0.12, max_value=0.12)
currents = st.floats(min_value=1e-12, max_value=1e-7)


@given(gate_biases, vt_shifts, currents)
@settings(**SETTINGS)
def test_mosfet_inverse_roundtrip(vgs, dvt, current):
    vt = PTM32.vt0 + dvt
    vds = float(vds_from_current(current, vgs, vt, PTM32))
    assert vds > 0
    recovered = float(drain_current(vds, vgs, vt, PTM32))
    assert recovered == pytest.approx(current, rel=1e-6)


@given(gate_biases, vt_shifts)
@settings(**SETTINGS)
def test_mosfet_inverse_strictly_monotone(vgs, dvt):
    vt = PTM32.vt0 + dvt
    grid = np.geomspace(1e-12, 1e-7, 60)
    vds = vds_from_current(grid, vgs, vt, PTM32)
    assert np.all(np.diff(vds) > 0)


@given(currents)
@settings(**SETTINGS)
def test_diode_roundtrip(current):
    voltage = float(diode_voltage(current, PTM32))
    recovered = float(diode_current(voltage, PTM32))
    assert recovered == pytest.approx(current, rel=1e-6)


@given(gate_biases, vt_shifts, vt_shifts, st.integers(min_value=0, max_value=2))
@settings(**SETTINGS)
def test_stack_voltage_strictly_monotone(vgs, dvt_bottom, dvt_top, sd_levels):
    grid = np.geomspace(1e-12, 5e-8, 80)
    voltages = stack_voltage(
        grid,
        vgs,
        PTM32,
        sd_levels=sd_levels,
        delta_vt_bottom=dvt_bottom,
        delta_vt_top=dvt_top,
    )
    assert np.all(np.diff(voltages) > 0)
    assert np.all(voltages > 0)


@given(gate_biases, vt_shifts)
@settings(max_examples=25, deadline=None)
def test_edge_block_incrementally_passive(vgs, dvt):
    """Random-bias edge blocks pass the passivity check."""
    import dataclasses

    from repro.blocks.edge import EdgeBlock
    from repro.blocks.passivity import is_incrementally_passive
    from repro.circuit.ptm32 import NOMINAL_CONDITIONS

    conditions = dataclasses.replace(
        NOMINAL_CONDITIONS, vgs_bit1=min(vgs, NOMINAL_CONDITIONS.v_c - 0.05)
    )
    block = EdgeBlock(PTM32, conditions, bit=1, delta_vt=(dvt, -dvt, dvt / 2, 0.0))
    assert is_incrementally_passive(block.current, points=60)
