"""Spatially correlated systematic-variation fields."""

import numpy as np
import pytest

from repro.circuit.spatial import SpatialField, correlation_vs_distance
from repro.circuit.variation import VariationModel
from repro.errors import DeviceError


class TestSpatialField:
    def test_marginal_std_close_to_sigma(self, rng):
        field = SpatialField.sample(0.05, rng, modes=12)
        points = rng.uniform(0, 1, size=(5000, 2))
        assert field(points).std() == pytest.approx(0.05, rel=0.35)

    def test_zero_sigma_gives_zero_field(self, rng):
        field = SpatialField.sample(0.0, rng)
        points = rng.uniform(0, 1, size=(10, 2))
        assert np.all(field(points) == 0.0)

    def test_smooth_nearby_points_correlated(self, rng):
        field = SpatialField.sample(0.05, rng)
        near = correlation_vs_distance(field, rng, distance=0.02)
        far = correlation_vs_distance(field, rng, distance=0.5)
        assert near > 0.9
        assert near > far

    def test_deterministic_per_rng(self):
        a = SpatialField.sample(0.05, np.random.default_rng(3))
        b = SpatialField.sample(0.05, np.random.default_rng(3))
        points = np.random.default_rng(4).uniform(0, 1, size=(20, 2))
        assert np.array_equal(a(points), b(points))

    def test_validation(self, rng):
        with pytest.raises(DeviceError):
            SpatialField.sample(-1.0, rng)
        with pytest.raises(DeviceError):
            SpatialField.sample(0.1, rng, modes=0)
        field = SpatialField.sample(0.1, rng)
        with pytest.raises(DeviceError):
            field(np.zeros((3, 3)))
        with pytest.raises(DeviceError):
            correlation_vs_distance(field, rng, distance=2.0)


class TestVariationWithPositions:
    def test_positions_give_correlated_systematic(self, tech, rng):
        # Blocks at nearly identical positions see nearly identical shifts.
        positions = np.zeros((100, 2))
        positions[:50] = [0.1, 0.1]
        positions[50:] = [0.9, 0.9]
        sample = VariationModel(tech).sample(100, rng, positions=positions)
        group_a = sample.systematic[:50]
        group_b = sample.systematic[50:]
        assert group_a.std() < 1e-12
        assert group_b.std() < 1e-12

    def test_pair_with_positions_shares_field_when_side_by_side(self, tech, rng):
        positions = rng.uniform(0, 1, size=(60, 2))
        a, b = VariationModel(tech).sample_pair(
            60, rng, side_by_side=True, positions=positions
        )
        assert np.array_equal(a.systematic, b.systematic)

    def test_pair_without_side_by_side_differs(self, tech, rng):
        positions = rng.uniform(0, 1, size=(60, 2))
        a, b = VariationModel(tech).sample_pair(
            60, rng, side_by_side=False, positions=positions
        )
        assert not np.array_equal(a.systematic, b.systematic)

    def test_ppuf_create_uses_block_positions(self, rng):
        """Crossbar neighbours (same row/col band) get correlated shifts."""
        from repro.ppuf import Ppuf

        ppuf = Ppuf.create(12, 3, rng)
        crossbar = ppuf.crossbar
        positions = crossbar.block_positions()
        systematic = ppuf.network_a.sample.systematic
        # Correlation between the systematic value and a smooth function of
        # position should be visible; compare close-pair vs far-pair spread.
        distance = np.linalg.norm(positions[:, None, :] - positions[None, :, :], axis=2)
        close = np.abs(systematic[:, None] - systematic[None, :])[distance < 0.1]
        far = np.abs(systematic[:, None] - systematic[None, :])[distance > 0.8]
        assert close.mean() < far.mean()
