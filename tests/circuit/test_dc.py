"""Nonlinear DC solver: correctness on analytically solvable networks."""

import numpy as np
import pytest

from repro.circuit.dc import solve_dc
from repro.circuit.table import EdgeTable
from repro.errors import GraphError


def ohmic_table(resistances, v_max=2.0):
    resistances = np.asarray(resistances, dtype=np.float64)

    def v_of_i(current_matrix):
        return current_matrix * resistances[:, None]

    scales = v_max / resistances * 1.5
    return EdgeTable.build(v_of_i, scales, v_max=v_max, num_points=401)


class TestResistiveNetworks:
    def test_two_resistor_divider(self):
        # source -0- R=1 -1- R=1 -2- sink: middle node at half supply.
        table = ohmic_table([1.0, 1.0])
        solution = solve_dc(
            3,
            np.array([0, 1]),
            np.array([1, 2]),
            table,
            source=0,
            sink=2,
            v_supply=2.0,
        )
        assert solution.voltages[1] == pytest.approx(1.0, abs=1e-6)
        assert solution.source_current == pytest.approx(1.0, rel=1e-6)

    def test_unequal_divider(self):
        table = ohmic_table([1.0, 3.0])
        solution = solve_dc(
            3,
            np.array([0, 1]),
            np.array([1, 2]),
            table,
            source=0,
            sink=2,
            v_supply=2.0,
        )
        # I = 2 / 4 = 0.5; node 1 at 2 - 0.5 = 1.5.
        assert solution.voltages[1] == pytest.approx(1.5, abs=1e-6)
        assert solution.source_current == pytest.approx(0.5, rel=1e-6)

    def test_parallel_paths_add(self):
        # Two disjoint unit-resistor 2-hop paths: total I = 2 * (2/2) = 2.
        table = ohmic_table([1.0, 1.0, 1.0, 1.0])
        solution = solve_dc(
            4,
            np.array([0, 1, 0, 2]),
            np.array([1, 3, 2, 3]),
            table,
            source=0,
            sink=3,
            v_supply=2.0,
        )
        assert solution.source_current == pytest.approx(2.0, rel=1e-6)

    def test_wheatstone_bridge_balance(self):
        # Balanced bridge: no current through the cross edge.
        table = ohmic_table([1.0, 1.0, 1.0, 1.0, 1.0])
        src = np.array([0, 0, 1, 2, 1])
        dst = np.array([1, 2, 3, 3, 2])
        solution = solve_dc(4, src, dst, table, source=0, sink=3, v_supply=2.0)
        assert abs(solution.edge_currents[4]) < 1e-9
        assert solution.voltages[1] == pytest.approx(solution.voltages[2], abs=1e-9)


class TestKCL:
    def test_kcl_holds_at_internal_nodes(self):
        table = ohmic_table([1.0, 2.0, 3.0, 4.0, 5.0])
        src = np.array([0, 0, 1, 2, 1])
        dst = np.array([1, 2, 3, 3, 2])
        solution = solve_dc(4, src, dst, table, source=0, sink=3, v_supply=2.0)
        net = np.zeros(4)
        np.add.at(net, src, solution.edge_currents)
        np.subtract.at(net, dst, solution.edge_currents)
        assert abs(net[1]) < 1e-8
        assert abs(net[2]) < 1e-8

    def test_source_current_equals_sink_current(self):
        table = ohmic_table([1.0, 1.0, 1.0, 1.0])
        src = np.array([0, 1, 0, 2])
        dst = np.array([1, 3, 2, 3])
        solution = solve_dc(4, src, dst, table, source=0, sink=3, v_supply=2.0)
        into_sink = solution.edge_currents[np.asarray(dst) == 3].sum()
        assert solution.source_current == pytest.approx(into_sink, rel=1e-9)


class TestValidation:
    def test_rejects_mismatched_edges(self):
        table = ohmic_table([1.0, 1.0])
        with pytest.raises(GraphError):
            solve_dc(3, np.array([0]), np.array([1]), table, source=0, sink=2, v_supply=1.0)

    def test_rejects_equal_terminals(self):
        table = ohmic_table([1.0, 1.0])
        with pytest.raises(GraphError):
            solve_dc(
                3, np.array([0, 1]), np.array([1, 2]), table,
                source=0, sink=0, v_supply=1.0,
            )

    def test_rejects_supply_beyond_table(self):
        table = ohmic_table([1.0, 1.0], v_max=1.0)
        with pytest.raises(GraphError):
            solve_dc(
                3, np.array([0, 1]), np.array([1, 2]), table,
                source=0, sink=2, v_supply=2.0,
            )


class TestConvergenceReporting:
    def test_reports_iterations_and_residual(self):
        table = ohmic_table([1.0, 1.0])
        solution = solve_dc(
            3, np.array([0, 1]), np.array([1, 2]), table,
            source=0, sink=2, v_supply=2.0,
        )
        assert solution.iterations >= 1
        assert solution.residual_norm < 1e-7 * float(table.currents.max()) + 1e-12
