"""Series-stack composition and source degeneration."""

import numpy as np
import pytest

from repro.circuit.devices.stack import (
    SeriesStack,
    stack_saturation_current,
    stack_voltage,
)
from repro.errors import DeviceError


class TestStackVoltage:
    def test_zero_current_zero_voltage(self, tech):
        assert stack_voltage(0.0, 0.5, tech, sd_levels=2) == pytest.approx(0.0)

    def test_monotone_in_current(self, tech):
        currents = np.linspace(0.0, 3e-8, 200)
        for levels in (0, 1, 2):
            voltages = stack_voltage(currents, 0.5, tech, sd_levels=levels)
            assert np.all(np.diff(voltages) > 0), f"sd_levels={levels}"

    def test_more_sd_levels_more_voltage(self, tech):
        current = 1e-8
        v0 = stack_voltage(current, 0.5, tech, sd_levels=0)
        v1 = stack_voltage(current, 0.5, tech, sd_levels=1)
        v2 = stack_voltage(current, 0.5, tech, sd_levels=2)
        assert v0 < v1 < v2

    def test_invalid_sd_levels(self, tech):
        with pytest.raises(DeviceError):
            stack_voltage(1e-9, 0.5, tech, sd_levels=3)

    def test_broadcasts_edge_by_current_grids(self, tech):
        currents = np.linspace(0, 2e-8, 10)[None, :] * np.ones((5, 1))
        shifts = np.linspace(-0.02, 0.02, 5)[:, None]
        voltages = stack_voltage(
            currents, 0.5, tech, sd_levels=2, delta_vt_bottom=shifts
        )
        assert voltages.shape == (5, 10)

    def test_higher_vt_more_voltage_needed(self, tech):
        current = 1e-8
        nominal = stack_voltage(current, 0.5, tech, sd_levels=2)
        shifted = stack_voltage(current, 0.5, tech, sd_levels=2, delta_vt_bottom=0.05)
        assert shifted > nominal


class TestStackSaturationCurrent:
    def test_degeneration_reduces_current(self, tech):
        bare = stack_saturation_current(0.5, tech, sd_levels=0)
        degenerated = stack_saturation_current(0.5, tech, sd_levels=1)
        assert degenerated < bare

    def test_fixed_point_self_consistency(self, tech):
        from repro.circuit.devices.mosfet import saturation_current

        isat = float(stack_saturation_current(0.5, tech, sd_levels=2))
        implied = float(
            saturation_current(0.5 - isat * tech.r_degeneration, tech.vt0, tech)
        )
        assert isat == pytest.approx(implied, rel=1e-6)

    def test_monotone_in_gate_bias(self, tech):
        biases = np.linspace(0.45, 0.65, 9)
        currents = stack_saturation_current(biases, tech, sd_levels=2)
        assert np.all(np.diff(currents) > 0)

    def test_vectorised_over_vt_shifts(self, tech):
        shifts = np.array([-0.05, 0.0, 0.05])
        currents = stack_saturation_current(0.5, tech, delta_vt_bottom=shifts)
        assert currents.shape == (3,)
        assert currents[0] > currents[1] > currents[2]


class TestSeriesStackObject:
    def test_current_voltage_roundtrip(self, tech):
        stack = SeriesStack(tech=tech, gate_bias=0.5)
        isat = stack.saturation_current()
        for fraction in (0.3, 0.9, 1.01):
            current = fraction * isat
            voltage = stack.voltage(current)
            assert stack.current(voltage) == pytest.approx(current, rel=1e-6)

    def test_zero_and_negative_voltage_give_zero_current(self, tech):
        stack = SeriesStack(tech=tech, gate_bias=0.5)
        assert stack.current(0.0) == 0.0
        assert stack.current(-0.3) == 0.0

    def test_saturation_region_is_flat(self, tech):
        stack = SeriesStack(tech=tech, gate_bias=0.5)
        isat = stack.saturation_current()
        i_low = stack.current(0.8)
        i_high = stack.current(1.6)
        assert i_low == pytest.approx(isat, rel=0.05)
        assert (i_high - i_low) / i_high < 0.01
