"""Property test: the nonlinear DC solver against direct linear algebra.

For *linear* (ohmic) edge tables the co-content minimum is the solution of
the conductance-Laplacian linear system, which we can compute directly.
The Newton solver must land on it for arbitrary random resistive networks.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.dc import solve_dc
from repro.circuit.table import EdgeTable


@st.composite
def resistive_networks(draw):
    """Random connected resistive networks with a ring backbone."""
    n = draw(st.integers(min_value=3, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    # Ring backbone guarantees connectivity; extra random chords.
    src = list(range(n))
    dst = [(v + 1) % n for v in src]
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u != v:
            src.append(u)
            dst.append(v)
    resistances = rng.uniform(0.5, 5.0, size=len(src))
    return n, np.array(src), np.array(dst), resistances


@given(resistive_networks())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_dc_solution_satisfies_kcl_and_bounds(network):
    n, src, dst, resistances = network

    def v_of_i(current_matrix):
        return current_matrix * resistances[:, None]

    table = EdgeTable.build(v_of_i, 2.0 / resistances * 2, v_max=2.0, num_points=201)
    solution = solve_dc(n, src, dst, table, source=0, sink=n - 1, v_supply=2.0)

    # KCL at every internal node.
    net = np.zeros(n)
    np.add.at(net, src, solution.edge_currents)
    np.subtract.at(net, dst, solution.edge_currents)
    internal = [v for v in range(n) if v not in (0, n - 1)]
    scale = float(np.abs(solution.edge_currents).max()) + 1e-12
    for vertex in internal:
        assert abs(net[vertex]) < 1e-6 * scale + 1e-12

    # Node voltages inside the supply range; terminals pinned.
    assert solution.voltages[0] == pytest.approx(2.0)
    assert solution.voltages[n - 1] == pytest.approx(0.0)
    assert solution.voltages.min() >= -1e-9
    assert solution.voltages.max() <= 2.0 + 1e-9

    # Source delivers what the sink absorbs.
    into_sink = float(
        solution.edge_currents[dst == n - 1].sum()
        - solution.edge_currents[src == n - 1].sum()
    )
    assert solution.source_current == pytest.approx(into_sink, rel=1e-6, abs=1e-12)


@given(resistive_networks())
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_dc_matches_bidirectional_laplacian_when_symmetric(network):
    """With both edge directions present, forward-conducting tables behave
    like bidirectional resistors, and the direct Laplacian solve applies."""
    n, src, dst, resistances = network
    # Symmetrise: add the reverse of every edge with the same resistance.
    src2 = np.concatenate([src, dst])
    dst2 = np.concatenate([dst, src])
    resistances2 = np.concatenate([resistances, resistances])

    def v_of_i(current_matrix):
        return current_matrix * resistances2[:, None]

    table = EdgeTable.build(v_of_i, 2.0 / resistances2 * 2, v_max=2.0, num_points=201)
    solution = solve_dc(n, src2, dst2, table, source=0, sink=n - 1, v_supply=2.0)

    conductances = 1.0 / resistances
    laplacian = np.zeros((n, n))
    np.add.at(laplacian, (src, src), conductances)
    np.add.at(laplacian, (dst, dst), conductances)
    np.subtract.at(laplacian, (src, dst), conductances)
    np.subtract.at(laplacian, (dst, src), conductances)

    keep = [v for v in range(n) if v not in (0, n - 1)]
    voltages = np.zeros(n)
    voltages[0] = 2.0
    if keep:
        rhs = -laplacian[np.ix_(keep, [0])] @ np.array([2.0])
        reduced = laplacian[np.ix_(keep, keep)]
        voltages[keep] = np.linalg.solve(reduced, rhs.ravel())

    assert np.allclose(solution.voltages, voltages, atol=2e-3)
