"""MOSFET, diode and resistor device models."""

import numpy as np
import pytest

from repro.circuit.devices.diode import Diode, diode_current, diode_voltage
from repro.circuit.devices.mosfet import (
    Mosfet,
    drain_current,
    saturation_current,
    softplus_overdrive,
    vds_from_current,
)
from repro.circuit.devices.resistor import Resistor, resistor_voltage
from repro.errors import DeviceError


class TestSoftplusOverdrive:
    def test_strong_inversion_approaches_identity(self, tech):
        theta = tech.subthreshold_theta
        assert softplus_overdrive(0.5, theta) == pytest.approx(0.5, rel=1e-4)

    def test_below_threshold_stays_positive(self, tech):
        value = softplus_overdrive(-0.3, tech.subthreshold_theta)
        assert 0 < value < 1e-2

    def test_deep_off_is_floored_not_zero(self, tech):
        assert softplus_overdrive(-100.0, tech.subthreshold_theta) > 0

    def test_monotone(self, tech):
        xs = np.linspace(-0.5, 0.5, 101)
        ys = softplus_overdrive(xs, tech.subthreshold_theta)
        assert np.all(np.diff(ys) > 0)


class TestMosfetForward:
    def test_zero_vds_zero_current(self, tech):
        assert drain_current(0.0, 0.5, tech.vt0, tech) == 0.0

    def test_negative_vds_blocks(self, tech):
        assert drain_current(-0.5, 0.5, tech.vt0, tech) == 0.0

    def test_saturation_current_square_law(self, tech):
        # Well above threshold, Isat ~ k * ov^2.
        vgs = tech.vt0 + 0.3
        expected = tech.k_prime * 0.3**2
        assert saturation_current(vgs, tech.vt0, tech) == pytest.approx(expected, rel=0.01)

    def test_current_monotone_in_vds(self, tech):
        vds = np.linspace(0.0, 2.0, 200)
        current = drain_current(vds, 0.5, tech.vt0, tech)
        assert np.all(np.diff(current) >= 0)

    def test_channel_length_modulation_slope(self, tech):
        vgs = tech.vt0 + 0.1
        i1 = drain_current(1.0, vgs, tech.vt0, tech)
        i2 = drain_current(1.5, vgs, tech.vt0, tech)
        isat = saturation_current(vgs, tech.vt0, tech)
        assert i2 > i1
        assert (i2 - i1) == pytest.approx(tech.lam * isat * 0.5, rel=0.05)

    def test_higher_vgs_more_current(self, tech):
        low = drain_current(1.0, tech.vt0 + 0.05, tech.vt0, tech)
        high = drain_current(1.0, tech.vt0 + 0.15, tech.vt0, tech)
        assert high > low


class TestMosfetInverse:
    def test_roundtrip_triode(self, tech):
        vgs = tech.vt0 + 0.2
        isat = saturation_current(vgs, tech.vt0, tech)
        for fraction in (0.1, 0.5, 0.9):
            current = fraction * isat
            vds = vds_from_current(current, vgs, tech.vt0, tech)
            assert drain_current(vds, vgs, tech.vt0, tech) == pytest.approx(
                current, rel=1e-9
            )

    def test_roundtrip_saturation(self, tech):
        vgs = tech.vt0 + 0.2
        isat = saturation_current(vgs, tech.vt0, tech)
        current = 1.02 * isat
        vds = vds_from_current(current, vgs, tech.vt0, tech)
        assert drain_current(vds, vgs, tech.vt0, tech) == pytest.approx(current, rel=1e-9)

    def test_inverse_monotone(self, tech):
        vgs = tech.vt0 + 0.1
        isat = saturation_current(vgs, tech.vt0, tech)
        currents = np.linspace(0.0, 1.3, 300) * isat
        vds = vds_from_current(currents, vgs, tech.vt0, tech)
        assert np.all(np.diff(vds) > 0)

    def test_negative_current_rejected(self, tech):
        with pytest.raises(DeviceError):
            vds_from_current(-1e-9, 0.5, tech.vt0, tech)

    def test_object_wrapper(self, tech):
        device = Mosfet(tech, delta_vt=0.01)
        assert device.vt == pytest.approx(tech.vt0 + 0.01)
        assert device.isat(0.5) > 0
        vds = device.vds(device.isat(0.5) * 0.5, 0.5)
        assert device.current(vds, 0.5) == pytest.approx(device.isat(0.5) * 0.5, rel=1e-9)


class TestDiode:
    def test_forward_drop_scale(self, tech):
        # Tens of nA through the scaled diode: a few hundred mV.
        drop = diode_voltage(20e-9, tech)
        assert 0.1 < drop < 0.4

    def test_voltage_current_roundtrip(self, tech):
        for current in (1e-12, 1e-9, 1e-6):
            voltage = diode_voltage(current, tech)
            assert diode_current(voltage, tech) == pytest.approx(current, rel=1e-6)

    def test_reverse_bias_blocks(self, tech):
        assert diode_current(-0.5, tech) == 0.0

    def test_negative_current_rejected(self, tech):
        with pytest.raises(DeviceError):
            diode_voltage(-1e-9, tech)

    def test_temperature_raises_thermal_voltage(self, tech):
        cold = diode_voltage(1e-9, tech, temperature_k=250.0)
        hot = diode_voltage(1e-9, tech, temperature_k=350.0)
        assert hot > cold

    def test_object_wrapper(self, tech):
        diode = Diode(tech)
        assert diode.current(diode.voltage(5e-9)) == pytest.approx(5e-9, rel=1e-6)


class TestResistor:
    def test_ohms_law(self):
        assert resistor_voltage(2e-9, 1e6) == pytest.approx(2e-3)

    def test_negative_resistance_rejected(self):
        with pytest.raises(DeviceError):
            resistor_voltage(1.0, -1.0)
        with pytest.raises(DeviceError):
            Resistor(-5.0)

    def test_object_roundtrip(self):
        resistor = Resistor(2e6)
        assert resistor.current(resistor.voltage(3e-9)) == pytest.approx(3e-9)

    def test_zero_ohm_current_undefined(self):
        with pytest.raises(DeviceError):
            Resistor(0.0).current(1.0)
