"""Telemetry merges are exact: associative, order-independent, lossless.

The fleet design leans on three folds — :meth:`RuntimeStats.merge`
(per-pool counters), :meth:`SolveStats.merge` (solver telemetry) and
:func:`merge_histogram_snapshots` (wire-form latency histograms) — all
claimed to be *exact*: merging shard records in any order or grouping
equals what one observer of the union would have recorded.  Hypothesis
checks the claim.

Float fields use dyadic rationals (multiples of 2^-10 with bounded
magnitude), which IEEE doubles add without rounding, so sums really are
order-independent and ``==`` is the right comparison; only the histogram
*mean* (a division by a merged count) is compared with ``isclose``.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flow.registry import SolveStats
from repro.runtime.stats import RuntimeStats, merge_runtime_snapshots
from repro.service.stats import LatencyHistogram, merge_histogram_snapshots

SETTINGS = dict(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# Dyadic rationals: exactly representable, sums never round.
dyadic = st.integers(min_value=0, max_value=2**20).map(lambda v: v / 1024.0)
small_int = st.integers(min_value=0, max_value=1_000)

runtime_records = st.lists(
    st.builds(
        RuntimeStats,
        tasks_submitted=small_int,
        tasks_completed=small_int,
        tasks_failed=small_int,
        task_timeouts=small_int,
        worker_crashes=small_int,
        pool_restarts=small_int,
        batches_dispatched=small_int,
        queue_high_water=small_int,
    ),
    min_size=1,
    max_size=6,
)


def _fold_runtime(records):
    merged = RuntimeStats()
    for record in records:
        merged.merge(record)
    return merged


class TestRuntimeStatsMerge:
    @given(records=runtime_records, seed=st.randoms(use_true_random=False))
    @settings(**SETTINGS)
    def test_order_independent(self, records, seed):
        shuffled = list(records)
        seed.shuffle(shuffled)
        assert _fold_runtime(shuffled).snapshot() == _fold_runtime(records).snapshot()

    @given(a=runtime_records, b=runtime_records, c=runtime_records)
    @settings(**SETTINGS)
    def test_associative(self, a, b, c):
        left = _fold_runtime([_fold_runtime(a), _fold_runtime(b)])
        left.merge(_fold_runtime(c))
        right = _fold_runtime(a)
        right.merge(_fold_runtime([_fold_runtime(b), _fold_runtime(c)]))
        assert left.snapshot() == right.snapshot()

    @given(records=runtime_records)
    @settings(**SETTINGS)
    def test_merged_equals_one_observer(self, records):
        merged = _fold_runtime(records).snapshot()
        for key in (
            "tasks_submitted", "tasks_completed", "tasks_failed",
            "task_timeouts", "worker_crashes", "pool_restarts",
            "batches_dispatched",
        ):
            assert merged[key] == sum(getattr(r, key) for r in records)
        # the gauge merges by max, not sum
        assert merged["queue_high_water"] == max(
            r.queue_high_water for r in records
        )

    @given(records=runtime_records, seed=st.randoms(use_true_random=False))
    @settings(**SETTINGS)
    def test_wire_form_matches_object_form(self, records, seed):
        snapshots = [r.snapshot() for r in records]
        seed.shuffle(snapshots)
        merged = snapshots[0]
        for snapshot in snapshots[1:]:
            merged = merge_runtime_snapshots(merged, snapshot)
        assert merged == _fold_runtime(records).snapshot()


PHASES = ("prepare", "solve", "compare")
COUNTERS = ("augmentations", "phases", "pushes", "rounds")

solve_records = st.lists(
    st.builds(
        SolveStats,
        algorithm=st.sampled_from(["", "dinic", "edmonds_karp", "push_relabel"]),
        solves=small_int,
        total_seconds=dyadic,
        phase_seconds=st.dictionaries(
            st.sampled_from(PHASES), dyadic, max_size=len(PHASES)
        ),
        counters=st.dictionaries(
            st.sampled_from(COUNTERS), small_int, max_size=len(COUNTERS)
        ),
    ),
    min_size=1,
    max_size=6,
)


def _fold_solve(records):
    merged = SolveStats()
    for record in records:
        merged.merge(record)
    return merged


def _solve_key(stats):
    return (
        stats.algorithm,
        stats.solves,
        stats.total_seconds,
        dict(stats.phase_seconds),
        dict(stats.counters),
    )


class TestSolveStatsMerge:
    @given(records=solve_records, seed=st.randoms(use_true_random=False))
    @settings(**SETTINGS)
    def test_order_independent(self, records, seed):
        shuffled = list(records)
        seed.shuffle(shuffled)
        assert _solve_key(_fold_solve(shuffled)) == _solve_key(
            _fold_solve(records)
        )

    @given(a=solve_records, b=solve_records)
    @settings(**SETTINGS)
    def test_grouping_independent(self, a, b):
        pairwise = _fold_solve(a)
        pairwise.merge(_fold_solve(b))
        flat = _fold_solve(a + b)
        assert _solve_key(pairwise) == _solve_key(flat)

    @given(records=solve_records)
    @settings(**SETTINGS)
    def test_merged_equals_one_observer(self, records):
        merged = _fold_solve(records)
        assert merged.solves == sum(r.solves for r in records)
        assert merged.total_seconds == sum(r.total_seconds for r in records)
        for phase in PHASES:
            assert merged.phase_seconds.get(phase, 0.0) == sum(
                r.phase_seconds.get(phase, 0.0) for r in records
            )
        for counter in COUNTERS:
            assert merged.counters.get(counter, 0) == sum(
                r.counters.get(counter, 0) for r in records
            )


latency_streams = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=16 * 1024).map(lambda v: v / 1024.0),
        max_size=20,
    ),
    min_size=1,
    max_size=5,
)


def _histogram(latencies):
    histogram = LatencyHistogram()
    for seconds in latencies:
        histogram.observe(seconds)
    return histogram


class TestHistogramSnapshotMerge:
    @given(streams=latency_streams, seed=st.randoms(use_true_random=False))
    @settings(**SETTINGS)
    def test_merged_equals_one_observer(self, streams, seed):
        snapshots = [_histogram(stream).snapshot() for stream in streams]
        seed.shuffle(snapshots)
        merged = snapshots[0]
        for snapshot in snapshots[1:]:
            merged = merge_histogram_snapshots(merged, snapshot)
        combined = _histogram(
            [seconds for stream in streams for seconds in stream]
        ).snapshot()
        assert merged["observations"] == combined["observations"]
        assert merged["buckets"] == combined["buckets"]
        assert merged["max_seconds"] == combined["max_seconds"]
        assert math.isclose(
            merged["mean_seconds"],
            combined["mean_seconds"],
            rel_tol=1e-9,
            abs_tol=1e-12,
        )

    @given(streams=latency_streams)
    @settings(**SETTINGS)
    def test_grouping_independent(self, streams):
        snapshots = [_histogram(stream).snapshot() for stream in streams]
        left = snapshots[0]
        for snapshot in snapshots[1:]:
            left = merge_histogram_snapshots(left, snapshot)
        right = snapshots[-1]
        for snapshot in reversed(snapshots[:-1]):
            right = merge_histogram_snapshots(snapshot, right)
        assert left["observations"] == right["observations"]
        assert left["buckets"] == right["buckets"]
        assert left["max_seconds"] == right["max_seconds"]
        assert math.isclose(
            left["mean_seconds"], right["mean_seconds"],
            rel_tol=1e-9, abs_tol=1e-12,
        )

    def test_mismatched_buckets_rejected(self):
        from repro.errors import ServiceError

        base = _histogram([0.001]).snapshot()
        other = _histogram([0.001]).snapshot()
        other["buckets"] = {"le_1": 1, "inf": 0}
        with pytest.raises(ServiceError, match="different buckets"):
            merge_histogram_snapshots(base, other)
