"""Runtime chaos: a pool worker SIGKILLed mid-batch is contained.

The crash-supervision contract end-to-end over the wire: with a
one-worker process pool, a task occupies the worker and kills it while a
real claim verification is queued behind it.  The server must (a) turn
the lost verification into a contained *rejected* verdict — the claim's
session ends in ``infeasible``, the connection survives, and the fault is
counted in ``worker_faults``; (b) restart the pool underneath
(``pool_restarts`` in the runtime telemetry); and (c) verify the very
next authentication normally on the fresh worker.

This is the test CI's chaos step runs.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.errors import WorkerCrash
from repro.ppuf import Ppuf
from repro.service import PpufAuthServer, ServiceClient


def _occupy_then_die(delay):
    """Hold the pool's only worker, then die the way an OOM kill looks."""
    time.sleep(delay)
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(8, 2, np.random.default_rng(61))


class TestWorkerKilledMidBatch:
    def test_crash_is_contained_and_pool_recovers(self, device):
        async def go():
            async with PpufAuthServer(workers=1, rounds=1, seed=7) as server:
                async with ServiceClient("127.0.0.1", server.port) as client:
                    await client.enroll(device)
                    # Warm-up: the worker process boots and verifies once.
                    warm = await client.authenticate(device)
                    # Occupy the lone worker with a task that will SIGKILL
                    # it; the claim submitted next queues behind it and
                    # dies with the worker.
                    killer = asyncio.ensure_future(
                        server.pool.runtime.run(_occupy_then_die, 0.75)
                    )
                    await asyncio.sleep(0.05)
                    crashed = await client.authenticate(device)
                    with pytest.raises(WorkerCrash):
                        await killer
                    # The pool restarted underneath: the next session
                    # verifies on a fresh worker, same connection.
                    recovered = await client.authenticate(device)
                    runtime_stats = server.pool.runtime.stats
                return warm, crashed, recovered, server.stats, runtime_stats

        warm, crashed, recovered, stats, runtime_stats = asyncio.run(go())
        assert warm.accepted
        # crash-to-verdict: rejected, not a dead connection or a hang
        assert not crashed.accepted
        assert crashed.reason == "infeasible"
        assert recovered.accepted
        assert stats.worker_faults >= 1
        assert runtime_stats.worker_crashes >= 1
        assert runtime_stats.pool_restarts >= 1
