"""Worker-side provisioning: every transport materialises the same device.

:func:`materialise_payload` accepts four transports (public dict, pack
reference, shared-memory block, pickled device); whichever one ships the
artifact, the worker must end up answering challenges with the same bits.
The LRU cache behind :func:`provision_device` is bounded and
recency-ordered, and producer-side :class:`ShippedArtifact` owns the shm
segment lifecycle.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ppuf import Ppuf
from repro.ppuf.compiled import compile_ppuf
from repro.runtime import provision
from repro.runtime.provision import (
    ShippedArtifact,
    materialise_payload,
    provision_device,
    ship_compiled,
)


@pytest.fixture(scope="module")
def device():
    return Ppuf.create(8, 2, np.random.default_rng(71))


@pytest.fixture(scope="module")
def compiled(device):
    return compile_ppuf(device, include_circuit=False)


@pytest.fixture(scope="module")
def probe(device):
    space = device.challenge_space()
    rng = np.random.default_rng(72)
    return [space.random(rng) for _ in range(4)]


@pytest.fixture(autouse=True)
def fresh_cache():
    provision.clear_cache()
    yield
    provision.clear_cache()


class TestMaterialise:
    def test_device_object_passes_through(self, compiled):
        assert materialise_payload(compiled) is compiled

    def test_pickle_payload_unwraps(self, compiled):
        assert materialise_payload(("pickle", compiled)) is compiled

    def test_public_dict_rebuilds_device(self, device, probe):
        from repro.ppuf.io import ppuf_to_dict

        rebuilt = materialise_payload(ppuf_to_dict(device))
        for challenge in probe:
            assert rebuilt.response(challenge) == device.response(challenge)

    def test_shm_payload_maps_same_bits(self, device, compiled, probe):
        shipped = ship_compiled(compiled, share_memory=True)
        try:
            kind, name, manifest = shipped.payload
            assert kind == "shm"
            attached = materialise_payload(shipped.payload)
            for challenge in probe:
                assert attached.response(challenge) == device.response(challenge)
        finally:
            provision.clear_cache()  # release worker-side mapping first
            shipped.close()

    def test_pack_payload_requires_device_id(self):
        with pytest.raises(ReproError, match="device id"):
            materialise_payload(("pack", "/nonexistent"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown worker payload"):
            materialise_payload(("warp", 1))


class TestShipping:
    def test_pickle_transport_ships_device_itself(self, compiled):
        shipped = ship_compiled(compiled, share_memory=False)
        assert shipped.payload == ("pickle", compiled)
        shipped.close()  # no shm: close is a no-op, not an error

    def test_close_is_idempotent(self, compiled):
        shipped = ship_compiled(compiled, share_memory=True)
        shipped.close()
        shipped.close()

    def test_artifact_without_shm(self, compiled):
        ShippedArtifact(("pickle", compiled)).close()


class TestCache:
    def test_lru_bound_and_recency(self, monkeypatch, compiled):
        monkeypatch.setattr(provision, "WORKER_DEVICE_CACHE_SIZE", 2)
        provision_device("a", ("pickle", compiled))
        provision_device("b", ("pickle", compiled))
        provision_device("a", ("pickle", compiled))  # refresh a
        provision_device("c", ("pickle", compiled))  # evicts b
        assert provision.cache_size() == 2
        assert list(provision._WORKER_DEVICES) == ["a", "c"]

    def test_hit_skips_materialisation(self, compiled):
        provision_device("hot", ("pickle", compiled))

        def explode(payload, device_id=None):
            raise AssertionError("cache hit must not re-materialise")

        original = provision.materialise_payload
        provision.materialise_payload = explode
        try:
            assert provision_device("hot", ("pickle", None)) is compiled
        finally:
            provision.materialise_payload = original

    def test_clear_cache_empties_everything(self, compiled):
        provision_device("x", ("pickle", compiled))
        provision.clear_cache()
        assert provision.cache_size() == 0

    def test_compiled_reexports_still_importable(self):
        # Historical import site: repro.ppuf.compiled keeps re-exporting.
        from repro.ppuf.compiled import attach_compiled, share_compiled

        assert share_compiled is provision.share_compiled
        assert attach_compiled is provision.attach_compiled
