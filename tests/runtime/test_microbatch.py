"""Generic micro-batching and the CRP batcher built on it.

The :class:`MicroBatcher` contract: concurrent submits coalesce into list
dispatches (size/linger triggers), each submitter gets *its own* result
back in order, a failing dispatch fails exactly its batch with the typed
error preserved, and a wrong-length dispatch is rejected rather than
silently misassigning results.  :class:`CrpMicroBatcher` then must hand
every caller the same bit a solo evaluation of its challenge yields.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceError, ServiceTimeout, WorkerCrash
from repro.ppuf import BatchEvaluator, Ppuf
from repro.runtime.microbatch import CrpMicroBatcher, MicroBatcher


def run(coroutine):
    return asyncio.run(coroutine)


class TestMicroBatcher:
    def test_validation(self):
        async def nop(items):
            return items

        with pytest.raises(ServiceError, match="batch_size"):
            MicroBatcher(nop, batch_size=0)
        with pytest.raises(ServiceError, match="linger"):
            MicroBatcher(nop, linger_seconds=-1)

    def test_coalesces_at_batch_size(self):
        sizes = []

        async def go():
            async def double(items):
                return [item * 2 for item in items]

            batcher = MicroBatcher(
                double, batch_size=4, linger_seconds=5.0,
                on_dispatch=sizes.append,
            )
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(8))
            )

        assert run(go()) == [i * 2 for i in range(8)]
        # linger is huge, so only the size trigger can have fired
        assert sizes == [4, 4]

    def test_linger_dispatches_a_lone_item(self):
        async def go():
            async def double(items):
                return [item * 2 for item in items]

            batcher = MicroBatcher(double, batch_size=64, linger_seconds=0.005)
            return await batcher.submit(21)

        assert run(go()) == 42

    def test_flush_skips_the_linger(self):
        async def go():
            async def double(items):
                return [item * 2 for item in items]

            batcher = MicroBatcher(double, batch_size=64, linger_seconds=60.0)
            pending = asyncio.ensure_future(batcher.submit(1))
            await asyncio.sleep(0)
            assert batcher.queued == 1
            batcher.flush()
            return await asyncio.wait_for(pending, timeout=5.0)

        assert run(go()) == 2

    def test_wrong_length_dispatch_fails_batch(self):
        async def go():
            async def truncating(items):
                return items[:-1]

            batcher = MicroBatcher(truncating, batch_size=2, linger_seconds=0)
            results = await asyncio.gather(
                batcher.submit(1), batcher.submit(2), return_exceptions=True
            )
            return results

        results = run(go())
        assert all(isinstance(r, ServiceError) for r in results)
        assert all("2 items" in str(r) for r in results)

    @pytest.mark.parametrize(
        "raised, expected",
        [
            (ServiceTimeout("slow"), ServiceTimeout),
            (WorkerCrash("dead"), WorkerCrash),
            (RuntimeError("boom"), ServiceError),
        ],
    )
    def test_dispatch_errors_stay_typed(self, raised, expected):
        async def go():
            async def failing(items):
                raise raised

            batcher = MicroBatcher(failing, batch_size=2, linger_seconds=0)
            return await asyncio.gather(
                batcher.submit(1), batcher.submit(2), return_exceptions=True
            )

        results = run(go())
        assert all(type(r) is expected for r in results)

    def test_failed_batch_does_not_poison_the_next(self):
        async def go():
            calls = []

            async def flaky(items):
                calls.append(list(items))
                if len(calls) == 1:
                    raise RuntimeError("first batch dies")
                return [item + 100 for item in items]

            batcher = MicroBatcher(flaky, batch_size=1, linger_seconds=0)
            first = await asyncio.gather(
                batcher.submit(1), return_exceptions=True
            )
            second = await batcher.submit(2)
            return first, second

        first, second = run(go())
        assert isinstance(first[0], ServiceError)
        assert second == 102

    def test_busy_settles_after_batches_land(self):
        async def go():
            async def double(items):
                await asyncio.sleep(0.01)
                return [item * 2 for item in items]

            batcher = MicroBatcher(double, batch_size=1, linger_seconds=0)
            pending = asyncio.ensure_future(batcher.submit(1))
            await asyncio.sleep(0.001)
            busy_mid_flight = batcher.busy
            await pending
            await asyncio.sleep(0.001)
            return busy_mid_flight, batcher.busy

        busy_mid_flight, busy_after = run(go())
        assert busy_mid_flight is True
        assert busy_after is False


class TestCrpMicroBatcher:
    @pytest.fixture(scope="class")
    def ppuf(self):
        return Ppuf.create(8, 2, np.random.default_rng(91))

    @pytest.fixture(scope="class")
    def challenges(self, ppuf):
        return ppuf.challenge_space().random_batch(
            12, np.random.default_rng(92)
        )

    def test_coalesced_bits_match_solo_evaluation(self, ppuf, challenges):
        sizes = []
        evaluator = BatchEvaluator(ppuf, workers=1)

        async def go():
            batcher = CrpMicroBatcher(
                evaluator, batch_size=8, linger_seconds=0.02,
                on_dispatch=sizes.append,
            )
            return await asyncio.gather(
                *(batcher.response(challenge) for challenge in challenges)
            )

        bits = run(go())
        solo = [int(ppuf.response(challenge)) for challenge in challenges]
        assert bits == solo
        # the concurrent submits actually coalesced — at least one
        # dispatch carried more than one challenge
        assert sum(sizes) == len(challenges)
        assert max(sizes) > 1
