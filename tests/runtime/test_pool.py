"""The unified worker pool: ordering, bounding, timeouts, crash supervision.

:class:`~repro.runtime.pool.WorkerPool` is the one substrate every process
fan-out rides (batch pipeline, auth server, load generator), so its
contracts are tested directly: ordered bounded :meth:`map`, per-task
timeouts surfacing as :class:`ServiceTimeout`, a dead worker surfacing as
:class:`WorkerCrash` while the pool restarts underneath, and the async
face's admission/drain accounting.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.errors import ServiceError, ServiceTimeout, WorkerCrash
from repro.runtime.pool import WorkerPool


# ----------------------------------------------------------------------
# task functions (module level: the process backend pickles them)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"bad item {x}")


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _die(_):
    os.kill(os.getpid(), signal.SIGKILL)


def run(coroutine):
    return asyncio.run(coroutine)


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ServiceError, match="workers"):
            WorkerPool(-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ServiceError, match="timeout"):
            WorkerPool(0, task_timeout=0)

    def test_bad_max_pending_rejected(self):
        with pytest.raises(ServiceError, match="max_pending"):
            WorkerPool(0, max_pending=0)


class TestSyncMap:
    def test_thread_backend_ordered_results(self):
        with WorkerPool(0) as pool:
            assert pool.map(_square, range(10)) == [x * x for x in range(10)]
        assert pool.stats.tasks_submitted == 10
        assert pool.stats.tasks_completed == 10
        assert pool.stats.tasks_failed == 0
        assert pool.worker_pids() == []

    def test_process_backend_ordered_results(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, range(20)) == [x * x for x in range(20)]
            assert len(pool.worker_pids()) >= 1
        assert pool.stats.tasks_completed == 20

    def test_window_never_exceeds_max_pending(self):
        with WorkerPool(0, max_pending=3) as pool:
            pool.map(_square, range(25))
        assert 1 <= pool.stats.queue_high_water <= 3

    def test_task_exception_propagates_and_counts(self):
        with WorkerPool(0) as pool:
            with pytest.raises(ValueError, match="bad item"):
                pool.map(_boom, [1])
        assert pool.stats.tasks_failed == 1
        assert pool.stats.tasks_completed == 0

    def test_timeout_becomes_service_timeout(self):
        with WorkerPool(0, task_timeout=0.05, task_name="probe") as pool:
            with pytest.raises(ServiceTimeout, match="probe exceeded"):
                pool.map(_sleepy, [5.0])
        assert pool.stats.task_timeouts == 1

    def test_worker_death_raises_crash_and_pool_recovers(self):
        with WorkerPool(1, task_name="solve") as pool:
            with pytest.raises(WorkerCrash, match="mid-solve"):
                pool.map(_die, [None])
            # The broken executor was replaced: the next map succeeds.
            assert pool.map(_square, [3]) == [9]
        assert pool.stats.worker_crashes >= 1
        assert pool.stats.pool_restarts >= 1


class TestAsyncRun:
    def test_run_returns_result(self):
        async def go():
            pool = WorkerPool(0)
            try:
                return await pool.run(_square, 7)
            finally:
                pool.shutdown(wait=True)

        assert run(go()) == 49

    def test_run_timeout_becomes_service_timeout(self):
        async def go():
            pool = WorkerPool(0, task_timeout=0.05, task_name="verification")
            try:
                with pytest.raises(ServiceTimeout, match="verification"):
                    await pool.run(_sleepy, 5.0)
                return pool.stats
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

        stats = run(go())
        assert stats.task_timeouts == 1

    def test_run_crash_becomes_worker_crash_then_recovers(self):
        async def go():
            pool = WorkerPool(1)
            try:
                with pytest.raises(WorkerCrash):
                    await pool.run(_die, None)
                return await pool.run(_square, 5), pool.stats
            finally:
                pool.shutdown(wait=True)

        result, stats = run(go())
        assert result == 25
        assert stats.worker_crashes >= 1
        assert stats.pool_restarts >= 1

    def test_active_gauge_and_drain(self):
        async def go():
            pool = WorkerPool(0)
            try:
                task = asyncio.ensure_future(pool.run(_sleepy, 0.1))
                await asyncio.sleep(0.02)
                active_mid_flight = pool.active
                settled = await pool.drain(5.0)
                await task
                return active_mid_flight, settled, pool.active
            finally:
                pool.shutdown(wait=True)

        active_mid_flight, settled, active_after = run(go())
        assert active_mid_flight == 1
        assert settled is True
        assert active_after == 0

    def test_concurrent_runs_bounded_by_semaphore(self):
        async def go():
            pool = WorkerPool(0, max_pending=2)
            try:
                await asyncio.gather(
                    *(pool.run(_sleepy, 0.02) for _ in range(8))
                )
                return pool.stats
            finally:
                pool.shutdown(wait=True)

        stats = run(go())
        assert stats.tasks_completed == 8
        assert stats.queue_high_water <= 2
