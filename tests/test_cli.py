"""Command-line interface and PPUF persistence."""

import json

import numpy as np
import pytest

from repro.cli import (
    load_crps,
    load_ppuf,
    main,
    ppuf_from_dict,
    ppuf_to_dict,
    save_ppuf,
)
from repro.errors import ReproError
from repro.ppuf import Ppuf


class TestPersistence:
    def test_roundtrip_preserves_responses(self, tmp_path, rng):
        ppuf = Ppuf.create(10, 3, rng)
        path = tmp_path / "device.json"
        save_ppuf(ppuf, str(path))
        restored = load_ppuf(str(path))
        challenges = ppuf.challenge_space().random_batch(10, rng)
        assert np.array_equal(
            ppuf.response_bits(challenges), restored.response_bits(challenges)
        )

    def test_roundtrip_preserves_variation(self, rng):
        ppuf = Ppuf.create(6, 2, rng)
        restored = ppuf_from_dict(ppuf_to_dict(ppuf))
        assert np.allclose(
            restored.network_a.sample.delta_vt, ppuf.network_a.sample.delta_vt
        )
        assert np.allclose(
            restored.network_b.sample.systematic, ppuf.network_b.sample.systematic
        )

    def test_malformed_save_rejected(self):
        with pytest.raises(ReproError):
            ppuf_from_dict({"n": 5})


class TestCommands:
    def test_create_then_respond(self, tmp_path, capsys):
        path = tmp_path / "device.json"
        assert main(["create", "--nodes", "8", "--grid", "2", "--output", str(path)]) == 0
        assert main(["respond", "--ppuf", str(path), "--count", "3"]) == 0
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert record["response"] in (0, 1)

    def test_respond_is_deterministic_across_processes(self, tmp_path, capsys):
        path = tmp_path / "device.json"
        main(["create", "--nodes", "8", "--grid", "2", "--output", str(path)])
        capsys.readouterr()
        main(["respond", "--ppuf", str(path), "--count", "4", "--seed", "3"])
        first = capsys.readouterr().out
        main(["respond", "--ppuf", str(path), "--count", "4", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second

    def test_respond_batch_matches_sequential_output(self, tmp_path, capsys):
        path = tmp_path / "device.json"
        main(["create", "--nodes", "8", "--grid", "2", "--output", str(path)])
        capsys.readouterr()
        main(["respond", "--ppuf", str(path), "--count", "6", "--seed", "11"])
        sequential = capsys.readouterr().out
        main(
            ["respond", "--ppuf", str(path), "--count", "6", "--seed", "11", "--batch"]
        )
        batched = capsys.readouterr().out
        assert batched == sequential

    def test_respond_batch_crp_roundtrip(self, tmp_path, capsys):
        device = tmp_path / "device.json"
        first_file = tmp_path / "crps.json"
        second_file = tmp_path / "again.json"
        main(["create", "--nodes", "8", "--grid", "2", "--output", str(device)])
        assert (
            main(
                [
                    "respond", "--ppuf", str(device), "--count", "5",
                    "--batch", "--output", str(first_file),
                ]
            )
            == 0
        )
        # Re-evaluate the saved challenges through the multi-process path.
        assert (
            main(
                [
                    "respond", "--ppuf", str(device), "--input", str(first_file),
                    "--batch", "--workers", "2", "--output", str(second_file),
                ]
            )
            == 0
        )
        first = load_crps(str(first_file))
        second = load_crps(str(second_file))
        assert [crp.challenge.key() for crp in first] == [
            crp.challenge.key() for crp in second
        ]
        assert [crp.response for crp in first] == [crp.response for crp in second]

    def test_malformed_crp_input_rejected(self, tmp_path, capsys):
        device = tmp_path / "device.json"
        main(["create", "--nodes", "8", "--grid", "2", "--output", str(device)])
        bad = tmp_path / "bad.json"
        bad.write_text('{"nope": 1}')
        assert main(["respond", "--ppuf", str(device), "--input", str(bad)]) == 2
        assert "malformed CRP file" in capsys.readouterr().err

    def test_protocol_accepts_self(self, tmp_path, capsys):
        path = tmp_path / "device.json"
        main(["create", "--nodes", "8", "--grid", "2", "--output", str(path)])
        assert main(["protocol", "--ppuf", str(path), "--rounds", "2"]) == 0
        assert "ACCEPTED" in capsys.readouterr().out

    def test_protocol_with_registry_algorithm(self, tmp_path, capsys):
        path = tmp_path / "device.json"
        main(["create", "--nodes", "8", "--grid", "2", "--output", str(path)])
        assert (
            main(
                [
                    "protocol", "--ppuf", str(path), "--rounds", "2",
                    "--algorithm", "push_relabel",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "algorithm=push_relabel" in out
        assert "ACCEPTED" in out

    def test_respond_algorithm_selects_solver(self, tmp_path, capsys):
        path = tmp_path / "device.json"
        main(["create", "--nodes", "8", "--grid", "2", "--output", str(path)])
        capsys.readouterr()
        main(["respond", "--ppuf", str(path), "--count", "4", "--seed", "3"])
        default = capsys.readouterr()
        main(
            [
                "respond", "--ppuf", str(path), "--count", "4", "--seed", "3",
                "--algorithm", "highest_label",
            ]
        )
        other = capsys.readouterr()
        assert default.out == other.out  # same bits whatever the solver
        assert '"algorithm": "highest_label"' in other.err

    def test_solvers_lists_registry(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in (
            "approx", "batched", "capacity_scaling", "dinic",
            "edmonds_karp", "highest_label", "push_relabel",
        ):
            assert name in out
        assert "complexity" in out

    def test_solvers_json_capabilities(self, capsys):
        assert main(["solvers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) >= 6
        by_name = {entry["name"]: entry for entry in payload}
        assert by_name["batched"]["supports_batch"] is True
        assert by_name["approx"]["kind"] == "approx"
