"""NIST-style bit-stream screening tests."""

import numpy as np
import pytest

from repro.analysis.bitstats import (
    monobit_test,
    response_stream,
    runs_test,
)
from repro.errors import ReproError


class TestMonobit:
    def test_fair_stream_passes(self, rng):
        bits = rng.integers(0, 2, 2000)
        assert monobit_test(bits).passes()

    def test_constant_stream_fails(self):
        result = monobit_test(np.ones(256, dtype=int))
        assert result.p_value < 1e-10
        assert not result.passes()

    def test_known_statistic(self):
        # 3/4 ones in 64 bits: S = |2*48 - 64| / 8 = 4.
        bits = np.array([1] * 48 + [0] * 16)
        assert monobit_test(bits).statistic == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            monobit_test(np.ones(4, dtype=int))
        with pytest.raises(ReproError):
            monobit_test(np.full(32, 2))


class TestRuns:
    def test_fair_stream_passes(self, rng):
        bits = rng.integers(0, 2, 2000)
        assert runs_test(bits).passes()

    def test_alternating_stream_fails(self):
        bits = np.tile([0, 1], 200)
        result = runs_test(bits)
        assert not result.passes()

    def test_blocky_stream_fails(self):
        bits = np.concatenate([np.zeros(200, int), np.ones(200, int)])
        result = runs_test(bits)
        assert not result.passes()

    def test_biased_stream_short_circuits_to_zero(self):
        bits = np.array([1] * 120 + [0] * 8)
        assert runs_test(bits).p_value == 0.0


class TestPpufResponseStream:
    def test_ppuf_stream_passes_both_tests(self, rng):
        """A population-level response stream should look random: each
        challenge draws fresh terminals and control bits."""
        from repro.ppuf import Ppuf

        ppuf = Ppuf.create(16, 4, np.random.default_rng(11))
        bits = response_stream(ppuf, 300, rng)
        assert monobit_test(bits).passes(significance=0.001)
        assert runs_test(bits).passes(significance=0.001)

    def test_count_validation(self, small_ppuf, rng):
        with pytest.raises(ReproError):
            response_stream(small_ppuf, 0, rng)
