"""Response entropy estimation."""

import numpy as np
import pytest

from repro.analysis.entropy import min_entropy_per_bit, response_entropy
from repro.errors import ReproError


class TestMinEntropy:
    def test_balanced_bit_has_full_entropy(self):
        responses = np.array([[0], [1], [0], [1]])
        assert min_entropy_per_bit(responses)[0] == pytest.approx(1.0)

    def test_constant_bit_has_zero_entropy(self):
        responses = np.zeros((6, 1), dtype=int)
        assert min_entropy_per_bit(responses)[0] == pytest.approx(0.0, abs=1e-9)

    def test_biased_bit_partial_entropy(self):
        responses = np.array([[1], [1], [1], [0]])
        assert min_entropy_per_bit(responses)[0] == pytest.approx(-np.log2(0.75))

    def test_validation(self):
        with pytest.raises(ReproError):
            min_entropy_per_bit(np.zeros((1, 4), dtype=int))
        with pytest.raises(ReproError):
            min_entropy_per_bit(np.full((3, 4), 2))


class TestResponseEntropy:
    def test_random_matrix_near_ideal(self, rng):
        responses = rng.integers(0, 2, size=(200, 40))
        summary = response_entropy(responses)
        assert summary.average_min_entropy > 0.85
        assert summary.max_abs_correlation < 0.35

    def test_duplicated_columns_detected(self, rng):
        base = rng.integers(0, 2, size=(50, 1))
        responses = np.hstack([base, base, rng.integers(0, 2, size=(50, 3))])
        summary = response_entropy(responses)
        assert summary.max_abs_correlation == pytest.approx(1.0)

    def test_single_column_has_zero_correlation(self, rng):
        responses = rng.integers(0, 2, size=(20, 1))
        assert response_entropy(responses).max_abs_correlation == 0.0

    def test_ppuf_population_entropy(self, rng):
        """PPUF response bits across instances carry near-full min-entropy."""
        from repro.ppuf import Ppuf

        ppufs = [Ppuf.create(10, 3, rng) for _ in range(8)]
        space = ppufs[0].challenge_space()
        challenges = [space.random(rng) for _ in range(25)]
        responses = np.stack([p.response_bits(challenges) for p in ppufs])
        summary = response_entropy(responses)
        # With 8 instances the estimator saturates at 3 bits; "no strong
        # bias" here means comfortably above half a bit on average.
        assert summary.average_min_entropy > 0.5
