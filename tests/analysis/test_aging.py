"""Device-aging model."""

import numpy as np
import pytest

from repro.analysis.aging import (
    YEAR_SECONDS,
    AgingModel,
    aged_ppuf,
    aged_sample,
    aging_study,
)
from repro.circuit.variation import VariationSample
from repro.errors import ReproError
from repro.ppuf import Ppuf


class TestAgingModel:
    def test_mean_shift_grows_logarithmically(self):
        model = AgingModel(amplitude=0.01, t0=1e4)
        one_decade = model.mean_shift(1e6) - model.mean_shift(1e5)
        next_decade = model.mean_shift(1e7) - model.mean_shift(1e6)
        assert one_decade > 0
        # Log-law: equal increments per decade once past the onset term.
        assert next_decade == pytest.approx(one_decade, rel=0.05)

    def test_zero_time_zero_shift(self):
        assert AgingModel().mean_shift(0.0) == 0.0

    def test_shifts_are_positive_on_average(self, rng):
        model = AgingModel()
        shifts = model.sample_shifts((1000,), 5 * YEAR_SECONDS, rng)
        assert shifts.mean() > 0

    def test_validation(self, rng):
        with pytest.raises(ReproError):
            AgingModel(amplitude=-1.0)
        with pytest.raises(ReproError):
            AgingModel(t0=0.0)
        with pytest.raises(ReproError):
            AgingModel().mean_shift(-1.0)


class TestAgedViews:
    def test_aged_sample_preserves_systematic(self, rng):
        sample = VariationSample.nominal(10)
        aged = aged_sample(sample, AgingModel(), YEAR_SECONDS, rng)
        assert np.array_equal(aged.systematic, sample.systematic)
        assert np.all(aged.delta_vt != sample.delta_vt)

    def test_aged_ppuf_shares_crossbar(self, small_ppuf, rng):
        aged = aged_ppuf(small_ppuf, AgingModel(), YEAR_SECONDS, rng)
        assert aged.crossbar is small_ppuf.crossbar
        assert aged.network_a.sample is not small_ppuf.network_a.sample

    def test_fresh_age_changes_nothing(self, small_ppuf, rng):
        aged = aged_ppuf(small_ppuf, AgingModel(), 0.0, rng)
        challenges = small_ppuf.challenge_space().random_batch(8, rng)
        assert np.array_equal(
            aged.response_bits(challenges), small_ppuf.response_bits(challenges)
        )


class TestAgingStudy:
    def test_drift_zero_at_birth_and_grows(self, rng):
        ppuf = Ppuf.create(12, 3, np.random.default_rng(8))
        years, drift = aging_study(ppuf, [0, 10], rng, challenges=25)
        assert drift[0] == 0.0
        assert drift[1] >= drift[0]
        assert drift[1] < 0.5  # differential design keeps drift bounded

    def test_validation(self, small_ppuf, rng):
        with pytest.raises(ReproError):
            aging_study(small_ppuf, [], rng)
        with pytest.raises(ReproError):
            aging_study(small_ppuf, [-1.0], rng)
