"""PUF metric computations."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    MetricSummary,
    flip_probability,
    inter_class_hd,
    intra_class_hd,
    randomness,
    uniformity,
)
from repro.errors import ReproError


class TestMetricSummary:
    def test_from_samples(self):
        summary = MetricSummary.from_samples("x", [0.4, 0.6])
        assert summary.mean == pytest.approx(0.5)
        assert summary.std == pytest.approx(np.std([0.4, 0.6], ddof=1))

    def test_single_sample_zero_std(self):
        assert MetricSummary.from_samples("x", [0.3]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            MetricSummary.from_samples("x", [])


class TestInterClassHD:
    def test_identical_instances_give_zero(self):
        responses = np.tile(np.array([0, 1, 1, 0]), (3, 1))
        assert inter_class_hd(responses).mean == 0.0

    def test_complementary_instances_give_one(self):
        responses = np.array([[0, 1, 0, 1], [1, 0, 1, 0]])
        assert inter_class_hd(responses).mean == 1.0

    def test_random_instances_near_half(self, rng):
        responses = rng.integers(0, 2, size=(20, 400))
        summary = inter_class_hd(responses)
        assert summary.mean == pytest.approx(0.5, abs=0.02)

    def test_pair_count(self):
        responses = np.zeros((4, 8), dtype=int)
        assert inter_class_hd(responses).samples.size == 6

    def test_needs_two_instances(self):
        with pytest.raises(ReproError):
            inter_class_hd(np.zeros((1, 4), dtype=int))

    def test_rejects_non_binary(self):
        with pytest.raises(ReproError):
            inter_class_hd(np.full((2, 4), 2))


class TestIntraClassHD:
    def test_no_stress_change_gives_zero(self):
        reference = np.array([[0, 1, 1], [1, 0, 0]])
        stressed = np.stack([reference, reference])
        assert intra_class_hd(reference, stressed).mean == 0.0

    def test_counts_flipped_bits(self):
        reference = np.array([[0, 0, 0, 0]])
        stressed = np.array([[[1, 0, 0, 0]]])
        assert intra_class_hd(reference, stressed).mean == pytest.approx(0.25)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            intra_class_hd(np.zeros((2, 4), dtype=int), np.zeros((3, 2, 5), dtype=int))


class TestUniformityRandomness:
    def test_uniformity_per_instance(self):
        responses = np.array([[1, 1, 1, 1], [0, 0, 1, 1]])
        summary = uniformity(responses)
        assert summary.samples.tolist() == [1.0, 0.5]

    def test_randomness_per_challenge(self):
        responses = np.array([[1, 0], [1, 0], [0, 0], [1, 0]])
        summary = randomness(responses)
        assert summary.samples.tolist() == [0.75, 0.0]

    def test_randomness_needs_two_instances(self):
        with pytest.raises(ReproError):
            randomness(np.zeros((1, 4), dtype=int))


class TestFlipProbability:
    def test_zero_distance_never_flips(self, small_ppuf, rng):
        assert flip_probability(small_ppuf, 0, rng, trials=5) == 0.0

    def test_probability_in_unit_interval(self, small_ppuf, rng):
        probability = flip_probability(small_ppuf, 3, rng, trials=10)
        assert 0.0 <= probability <= 1.0

    def test_distance_validation(self, small_ppuf, rng):
        with pytest.raises(ReproError):
            flip_probability(small_ppuf, 1000, rng)
        with pytest.raises(ReproError):
            flip_probability(small_ppuf, -1, rng)
        with pytest.raises(ReproError):
            flip_probability(small_ppuf, 1, rng, trials=0)

    def test_large_distance_flips_more_than_small(self, medium_ppuf):
        rng = np.random.default_rng(77)
        small_d = flip_probability(medium_ppuf, 1, rng, trials=60)
        large_d = flip_probability(medium_ppuf, 12, rng, trials=60)
        assert large_d > small_d
