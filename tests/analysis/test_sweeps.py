"""Technology sweep framework."""

import pytest

from repro.analysis.sweeps import (
    requirement2_metric,
    sweep_technology,
    uniqueness_metric,
)
from repro.errors import ReproError


class TestSweepFramework:
    def test_generic_sweep_collects_metrics(self):
        def metric(tech):
            return {"double_lambda": 2 * tech.lam}

        sweep = sweep_technology("lam", [0.1, 0.2], metric)
        assert sweep.metric("double_lambda") == pytest.approx([0.2, 0.4])
        assert sweep.values == [0.1, 0.2]

    def test_unknown_field_rejected(self):
        with pytest.raises(ReproError):
            sweep_technology("not_a_field", [1.0], lambda tech: {})

    def test_empty_values_rejected(self):
        with pytest.raises(ReproError):
            sweep_technology("lam", [], lambda tech: {})

    def test_unknown_metric_name(self):
        sweep = sweep_technology("lam", [0.1], lambda tech: {"a": 1.0})
        with pytest.raises(ReproError):
            sweep.metric("b")


class TestCannedMetrics:
    def test_req2_ratio_degrades_with_lambda(self):
        sweep = sweep_technology(
            "lam", [0.05, 0.5], requirement2_metric(samples=300, seed=2)
        )
        ratios = sweep.metric("req2_ratio")
        assert ratios[0] > ratios[1]
        drifts = sweep.metric("sce_change")
        assert drifts[1] > drifts[0]

    def test_uniqueness_metric_near_half_at_itrs_sigma(self):
        sweep = sweep_technology(
            "sigma_vt",
            [0.035],
            uniqueness_metric(n=10, l=3, instances=4, challenges=15, seed=2),
        )
        assert 0.3 < sweep.metric("inter_class_hd")[0] < 0.7
