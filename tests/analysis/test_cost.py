"""Hardware-cost model."""

import pytest

from repro.analysis.cost import hardware_budget
from repro.errors import ReproError
from repro.experiments.hardware_cost import run as run_cost_experiment


class TestHardwareBudget:
    def test_device_counts(self):
        budget = hardware_budget(10, 3)
        assert budget.edge_blocks == 2 * 10 * 9
        assert budget.mosfets == budget.edge_blocks * 4
        assert budget.diodes == budget.edge_blocks * 2
        assert budget.resistors == budget.edge_blocks * 2
        assert budget.bias_capacitors == 2 * 9

    def test_control_reduction_grows_with_n(self):
        small = hardware_budget(40, 8)
        large = hardware_budget(200, 15)
        assert large.control_reduction > small.control_reduction
        assert large.control_reduction > 100

    def test_naive_control_count_is_quadratic(self):
        assert hardware_budget(200, 15).naive_control_signals == 200 * 199

    def test_area_positive_and_monotone(self):
        assert 0 < hardware_budget(20, 4).area_m2 < hardware_budget(40, 4).area_m2

    def test_validation(self):
        with pytest.raises(ReproError):
            hardware_budget(1, 1)
        with pytest.raises(ReproError):
            hardware_budget(10, 11)
        with pytest.raises(ReproError):
            hardware_budget(10, 3, mosfet_area=0.0)


class TestExperiment:
    def test_table_includes_paper_design_point(self):
        table = run_cost_experiment()
        rows = {(row["nodes"], row["grid_l"]): row for row in table.rows}
        paper = rows[(200, 15)]
        assert paper["naive_controls"] == 39800
        assert paper["partitioned_controls"] == 15 * 15 + 2 * 8
        assert paper["reduction"] > 100
