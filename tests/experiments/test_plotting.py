"""ASCII plotting utility."""

import pytest

from repro.errors import ReproError
from repro.experiments.base import ExperimentTable
from repro.experiments.plotting import ascii_plot, plot_table


class TestAsciiPlot:
    def test_renders_all_series_glyphs(self):
        text = ascii_plot(
            [1, 2, 3, 4],
            {"a": [1, 2, 3, 4], "b": [4, 3, 2, 1]},
        )
        assert "o" in text
        assert "x" in text
        assert "o=a" in text
        assert "x=b" in text

    def test_log_axes_labels(self):
        text = ascii_plot(
            [10, 100, 1000],
            {"t": [1e-3, 1e-1, 1e1]},
            log_x=True,
            log_y=True,
        )
        assert "1e1.0" in text  # x_min = log10(10)
        assert "1e3.0" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            ascii_plot([1, 2], {"a": [0.0, 1.0]}, log_y=True)

    def test_monotone_series_touches_corners(self):
        text = ascii_plot([0, 1], {"a": [0, 1]}, width=20, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")  # top-right
        assert rows[-1].split("|")[1].startswith("o")  # bottom-left

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_plot([1], {"a": [1]})
        with pytest.raises(ReproError):
            ascii_plot([1, 2], {})
        with pytest.raises(ReproError):
            ascii_plot([1, 2], {"a": [1, 2, 3]})
        with pytest.raises(ReproError):
            ascii_plot([1, 1], {"a": [1, 2]})
        with pytest.raises(ReproError):
            ascii_plot([1, 2], {"a": [1, 2]}, width=4)

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([1, 2, 3], {"a": [5.0, 5.0, 5.0]})
        assert "o" in text


class TestPlotTable:
    def test_plots_table_columns(self):
        table = ExperimentTable(title="t", columns=("n", "value"))
        table.add_row(n=10, value=1.0)
        table.add_row(n=20, value=4.0)
        table.add_row(n=40, value=16.0)
        text = plot_table(table, "n", ("value",), log_x=True, log_y=True)
        assert "(n)" in text
        assert "o=value" in text
