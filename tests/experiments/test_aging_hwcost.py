"""Aging-reliability and hardware-cost experiment drivers."""

from repro.experiments.aging_reliability import run as run_aging
from repro.experiments.hardware_cost import run as run_cost


class TestAgingExperiment:
    def test_drift_monotone_and_bounded(self):
        table = run_aging(n=12, l=3, instances=2, challenges=15, years=(0.0, 5.0), seed=4)
        drifts = table.column("mean_drift")
        assert drifts[0] == 0.0
        assert 0.0 <= drifts[1] < 0.5
        assert table.column("max_drift")[1] >= drifts[1]


class TestHardwareCostExperiment:
    def test_reduction_monotone_over_default_points(self):
        table = run_cost()
        reductions = table.column("reduction")
        assert all(b > a for a, b in zip(reductions, reductions[1:]))
