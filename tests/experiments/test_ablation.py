"""Ablation experiment drivers."""

from repro.experiments.ablation import (
    comparator_noise_ablation,
    placement_ablation,
    solver_consistency_ablation,
)


class TestPlacementAblation:
    def test_separate_placement_widens_uniformity_spread(self):
        table = placement_ablation(
            n=12, l=3, instances=10, challenges=15, systematic_sigma=0.12, seed=7
        )
        rows = {row["layout"]: row for row in table.rows}
        assert rows["separate"]["uniformity_std"] > rows["side_by_side"]["uniformity_std"]


class TestComparatorNoiseAblation:
    def test_error_rate_grows_with_noise_and_shrinks_with_votes(self):
        table = comparator_noise_ablation(
            n=12, l=3, challenges=20, noise_sigmas=(0.0, 2e-8), votes=(1, 9), seed=7
        )
        rows = {
            (row["noise_sigma_A"], row["votes"]): row["error_rate"]
            for row in table.rows
        }
        assert rows[(0.0, 1)] == 0.0
        assert rows[(2e-8, 1)] >= rows[(2e-8, 9)]


class TestSolverConsistency:
    def test_all_algorithms_agree(self):
        table = solver_consistency_ablation(n=10, l=2, challenges=5, seed=7)
        assert all(row["agreement_with_dinic"] for row in table.rows)
