"""Delay-model validation experiment."""

from repro.experiments.delay_models import run


class TestDelayModels:
    def test_positive_and_growing(self):
        table = run(sizes=(8, 16), seed=3)
        for row in table.rows:
            assert row["transient_s"] > 0
            assert row["linearized_mode_s"] > 0
            # The two physics measurements agree within an order of
            # magnitude (which side is slower depends on whether the
            # binding cut is at the source or the sink).
            ratio = row["transient_s"] / row["linearized_mode_s"]
            assert 0.001 < ratio < 10
        bounds = table.column("lin_mead_bound_s")
        assert bounds[1] > bounds[0]
