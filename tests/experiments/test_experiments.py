"""Experiment drivers: each run() produces its table(s) with sane values.

These are scaled-down executions of the same code paths the benchmarks use;
they assert the *direction* of each paper claim, not absolute numbers.
"""

import pytest

from repro.experiments import crpspace, fig3, fig6, fig7, fig8, fig9, fig10, req2, table1
from repro.experiments.base import ExperimentTable
from repro.errors import ReproError


class TestExperimentTable:
    def test_add_and_column(self):
        table = ExperimentTable(title="t", columns=("a", "b"))
        table.add_row(a=1, b=2.0)
        assert table.column("a") == [1]

    def test_missing_column_rejected(self):
        table = ExperimentTable(title="t", columns=("a", "b"))
        with pytest.raises(ReproError):
            table.add_row(a=1)

    def test_unknown_column_rejected(self):
        table = ExperimentTable(title="t", columns=("a",))
        with pytest.raises(ReproError):
            table.column("zz")

    def test_text_rendering(self):
        table = ExperimentTable(title="demo", columns=("x",))
        table.add_row(x=1.23456)
        table.notes.append("a note")
        text = table.to_text()
        assert "demo" in text
        assert "1.235" in text
        assert "note: a note" in text


class TestFig3:
    def test_sd_progression(self, tech, conditions):
        table_a, table_b = fig3.run(tech, conditions, points=21)
        drifts = table_a.column("relative_drift")
        assert drifts[0] > drifts[1] > drifts[2]
        currents = table_b.column("isat_A")
        assert max(currents) > 0


class TestFig6:
    def test_inaccuracy_below_one_percent(self):
        table = fig6.run(sizes=(10,), trials=2, seed=5)
        assert table.column("mean_inaccuracy")[0] < 0.01
        assert table.column("current_rel_std")[0] > table.column("mean_inaccuracy")[0]


class TestFig7:
    def test_scaling_and_crossovers(self):
        table_a, table_b = fig7.run(sizes=(8, 12, 16, 24), repeats=1, seed=5)
        exe = table_a.column("execution_delay_s")
        assert all(b > a for a, b in zip(exe, exe[1:]))
        crossovers = table_b.column("crossover_nodes")
        # Feedback always reduces the crossover node count.
        assert crossovers[1] < crossovers[0]
        assert crossovers[3] < crossovers[2]


class TestFig8:
    def test_current_grows_with_n(self):
        table, summary = fig8.run(sizes=(8, 12, 16), instances=2, challenges=2, seed=5)
        currents = table.column("avg_current_A")
        assert currents[-1] > currents[0]
        quantities = summary.column("quantity")
        assert any("energy" in q for q in quantities)


class TestFig9:
    def test_flip_probability_increases(self):
        table = fig9.run(
            n=12, l=3, distances=(1, 6), instances=2, trials=15, seed=5
        )
        probabilities = table.column("flip_probability")
        assert probabilities[1] > probabilities[0]


class TestFig10:
    def test_ppuf_beats_arbiter(self):
        table = fig10.run(
            ppuf_sizes=((12, 3),),
            train_sizes=(60, 240),
            test_count=120,
            seed=5,
        )
        rows = {(row["target"], row["num_crps"]): row["best_error"] for row in table.rows}
        assert rows[("ppuf_12n", 240)] > rows[("arbiter", 240)]


class TestTable1:
    def test_metrics_near_ideal(self):
        table = table1.run(sizes=((12, 3),), instances=4, challenges=20, seed=5)
        rows = {row["metric"]: row for row in table.rows}
        assert 0.3 < rows["inter_class_hd"]["mean"] < 0.7
        assert rows["intra_class_hd"]["mean"] < 0.25
        assert 0.2 < rows["uniformity"]["mean"] < 0.8


class TestReq2:
    def test_ratio_large(self):
        table, ablation = req2.run(samples=300, seed=5)
        values = dict(zip(table.column("quantity"), table.column("value")))
        assert values["ratio"] > 10
        drifts = ablation.column("relative_drift")
        assert drifts[0] > drifts[-1]


class TestCrpSpace:
    def test_paper_configuration(self):
        table = crpspace.run()
        row = table.rows[0]
        assert row["nodes"] == 200
        assert row["n_crp_bound"] == pytest.approx(6.53e35, rel=0.01)
