"""Verification-asymmetry experiment driver."""

from repro.experiments.verification_asymmetry import run


class TestVerificationAsymmetry:
    def test_ratio_grows_with_n(self):
        table = run(sizes=(10, 40), repeats=2, seed=3)
        ratios = table.column("measured_ratio")
        assert ratios[0] > 1.0
        assert ratios[1] > ratios[0]

    def test_analytic_ratio_is_n_log_n(self):
        import math

        table = run(sizes=(16,), repeats=1, seed=3)
        analytic = table.column("analytic_ratio")[0]
        assert analytic == 16 * math.log2(16)
