"""Shared fixtures.

Expensive objects (PPUF instances with their capacity caches) are session
scoped; tests must not mutate them.  Every fixture takes explicit seeds so
the whole suite is reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.ppuf import Ppuf


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng():
    return np.random.default_rng(999)


@pytest.fixture(scope="session")
def tech():
    return PTM32


@pytest.fixture(scope="session")
def conditions():
    return NOMINAL_CONDITIONS


@pytest.fixture(scope="session")
def small_ppuf():
    """A 10-node PPUF shared across read-only tests."""
    return Ppuf.create(10, 3, np.random.default_rng(101))


@pytest.fixture(scope="session")
def medium_ppuf():
    """A 16-node, l=4 PPUF shared across read-only tests."""
    return Ppuf.create(16, 4, np.random.default_rng(202))
