"""The dual-stack edge block (Fig. 2d)."""

import numpy as np
import pytest

from repro.blocks.edge import (
    EdgeBlock,
    edge_capacities,
    edge_currents_at_voltage,
    edge_saturation_scale,
    edge_voltage,
)
from repro.circuit.variation import VariationModel, VariationSample
from repro.errors import ChallengeError, DeviceError


class TestEdgeVoltage:
    def test_zero_current_zero_voltage_minus_diodes(self, tech, conditions):
        sample = VariationSample.nominal(3)
        bits = np.array([0, 1, 1], dtype=np.uint8)
        voltage = edge_voltage(np.zeros(3), bits, sample, tech, conditions)
        assert np.allclose(voltage, 0.0)

    def test_rejects_non_binary_bits(self, tech, conditions):
        sample = VariationSample.nominal(2)
        with pytest.raises(ChallengeError):
            edge_voltage(np.zeros(2), np.array([0, 2]), sample, tech, conditions)

    def test_broadcast_matrix_form(self, tech, conditions):
        sample = VariationSample.nominal(4)
        bits = np.array([0, 1, 0, 1], dtype=np.uint8)
        currents = np.linspace(0, 1e-8, 7)[None, :] * np.ones((4, 1))
        voltage = edge_voltage(currents, bits, sample, tech, conditions)
        assert voltage.shape == (4, 7)
        assert np.all(np.diff(voltage, axis=1) > 0)


class TestCapacities:
    def test_nominal_bits_have_equal_capacity(self, tech, conditions):
        """Requirement 3: balanced biases give equal nominal currents."""
        block0 = EdgeBlock(tech, conditions, bit=0)
        block1 = EdgeBlock(tech, conditions, bit=1)
        assert block0.capacity() == pytest.approx(block1.capacity(), rel=1e-3)

    def test_variation_decorrelates_bit_capacities(self, tech, conditions, rng):
        """The limiting stack differs per bit, so cap0 and cap1 of the same
        varied block are nearly uncorrelated — the unpredictability core."""
        sample = VariationModel(tech).sample(400, rng)
        cap0 = edge_capacities(np.zeros(400, dtype=np.uint8), sample, tech, conditions)
        cap1 = edge_capacities(np.ones(400, dtype=np.uint8), sample, tech, conditions)
        correlation = np.corrcoef(cap0, cap1)[0, 1]
        assert abs(correlation) < 0.35

    def test_capacity_positive_under_extreme_variation(self, tech, conditions):
        sample = VariationSample(
            delta_vt=np.full((2, 4), 0.15), systematic=np.zeros(2)
        )
        caps = edge_capacities(np.ones(2, dtype=np.uint8), sample, tech, conditions)
        assert np.all(caps > 0)

    def test_vectorised_matches_scalar(self, tech, conditions, rng):
        sample = VariationModel(tech).sample(3, rng)
        bits = np.array([1, 0, 1], dtype=np.uint8)
        vector = edge_capacities(bits, sample, tech, conditions)
        for index in range(3):
            block = EdgeBlock(
                tech, conditions, bit=int(bits[index]),
                delta_vt=tuple(sample.total(c)[index] for c in range(4)),
            )
            assert vector[index] == pytest.approx(block.capacity(), rel=1e-6)


class TestCurrentsAtVoltage:
    def test_zero_voltage(self, tech, conditions):
        sample = VariationSample.nominal(2)
        currents = edge_currents_at_voltage(
            0.0, np.ones(2, dtype=np.uint8), sample, tech, conditions
        )
        assert np.all(currents == 0.0)

    def test_negative_voltage_rejected(self, tech, conditions):
        sample = VariationSample.nominal(2)
        with pytest.raises(DeviceError):
            edge_currents_at_voltage(
                -0.1, np.ones(2, dtype=np.uint8), sample, tech, conditions
            )

    def test_monotone_in_voltage(self, tech, conditions, rng):
        sample = VariationModel(tech).sample(5, rng)
        bits = np.ones(5, dtype=np.uint8)
        previous = np.zeros(5)
        for voltage in (0.3, 0.6, 1.0, 1.5, 2.0):
            current = edge_currents_at_voltage(voltage, bits, sample, tech, conditions)
            assert np.all(current >= previous - 1e-15)
            previous = current

    def test_saturation_scale_brackets_capacity(self, tech, conditions, rng):
        sample = VariationModel(tech).sample(50, rng)
        bits = rng.integers(0, 2, 50).astype(np.uint8)
        scale = edge_saturation_scale(bits, sample, tech, conditions)
        caps = edge_capacities(bits, sample, tech, conditions)
        assert np.all(caps <= scale * 1.5)
        assert np.all(caps >= scale * 0.2)


class TestEdgeBlockObject:
    def test_roundtrip(self, tech, conditions):
        block = EdgeBlock(tech, conditions, bit=1)
        current = block.current(1.0)
        assert block.voltage(current) == pytest.approx(1.0, rel=1e-6)

    def test_bit_changes_which_stack_limits(self, tech, conditions):
        """Shift M2 (bit-1 limiter): bit-1 capacity moves, bit-0 barely."""
        shifted = (0.0, 0.05, 0.0, 0.0)  # M2 slower
        bit1 = EdgeBlock(tech, conditions, bit=1, delta_vt=shifted)
        bit0 = EdgeBlock(tech, conditions, bit=0, delta_vt=shifted)
        nominal1 = EdgeBlock(tech, conditions, bit=1)
        nominal0 = EdgeBlock(tech, conditions, bit=0)
        drop1 = 1 - bit1.capacity() / nominal1.capacity()
        drop0 = 1 - bit0.capacity() / nominal0.capacity()
        assert drop1 > 0.2
        assert abs(drop0) < 0.05
