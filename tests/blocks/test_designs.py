"""Block design variants (Fig. 2a-c) and the SD narrative."""

import numpy as np
import pytest

from repro.blocks.designs import build_design
from repro.errors import DeviceError


class TestFactory:
    def test_known_designs(self, tech, conditions):
        for name, levels in (("bare", 0), ("sd1", 1), ("sd2", 2)):
            design = build_design(name, tech, conditions)
            assert design.sd_levels == levels

    def test_unknown_design_rejected(self, tech, conditions):
        with pytest.raises(DeviceError, match="unknown block design"):
            build_design("sd3", tech, conditions)

    def test_default_gate_bias_is_bit1(self, tech, conditions):
        design = build_design("sd2", tech, conditions)
        assert design.gate_bias == conditions.vgs_bit1


class TestCharacteristics:
    def test_current_voltage_roundtrip(self, tech, conditions):
        design = build_design("sd2", tech, conditions)
        for voltage in (0.5, 1.0, 1.8):
            current = design.current(voltage)
            assert design.voltage(current) == pytest.approx(voltage, rel=1e-6)

    def test_zero_voltage_zero_current(self, tech, conditions):
        for name in ("bare", "sd1", "sd2"):
            assert build_design(name, tech, conditions).current(0.0) == 0.0

    def test_negative_current_rejected(self, tech, conditions):
        with pytest.raises(DeviceError):
            build_design("sd2", tech, conditions).voltage(-1e-9)

    def test_monotone_current(self, tech, conditions):
        design = build_design("sd2", tech, conditions)
        voltages = np.linspace(0.0, 2.0, 41)
        currents = [design.current(v) for v in voltages]
        assert np.all(np.diff(currents) >= 0)


class TestRequirement1And2Narrative:
    def test_gate_bias_controls_saturation_current(self, tech, conditions):
        low = build_design("sd2", tech, conditions, gate_bias=0.45)
        high = build_design("sd2", tech, conditions, gate_bias=0.55)
        assert high.saturation_current() > low.saturation_current()

    def test_sd_levels_progressively_flatten(self, tech, conditions):
        """The Fig. 3a story: each SD level reduces the saturation drift."""
        drifts = {}
        for name in ("bare", "sd1", "sd2"):
            design = build_design(name, tech, conditions)
            drifts[name] = design.saturation_drift(1.2, 2.0) / design.current(2.0)
        assert drifts["bare"] > drifts["sd1"] > drifts["sd2"]

    def test_two_level_sd_drift_below_half_percent(self, tech, conditions):
        design = build_design("sd2", tech, conditions)
        relative = design.saturation_drift(1.2, 2.0) / design.current(2.0)
        assert relative < 5e-3

    def test_vt_shift_moves_saturation_current(self, tech, conditions):
        nominal = build_design("sd2", tech, conditions)
        slow = build_design("sd2", tech, conditions, delta_vt_bottom=0.035)
        assert slow.saturation_current() < nominal.saturation_current()

    def test_drift_window_validated(self, tech, conditions):
        design = build_design("sd2", tech, conditions)
        with pytest.raises(DeviceError):
            design.saturation_drift(1.5, 1.0)
