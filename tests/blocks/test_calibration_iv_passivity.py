"""Bias calibration, I-V sweeps and passivity checks."""

import numpy as np
import pytest

from repro.blocks.calibration import balance_bias, block_saturation_current
from repro.blocks.designs import build_design
from repro.blocks.edge import EdgeBlock
from repro.blocks.iv import IVCurve, isat_vs_gate_bias, iv_sweep, iv_sweep_all
from repro.blocks.passivity import is_incrementally_passive, passivity_margin
from repro.errors import DeviceError


class TestCalibration:
    def test_balanced_pair_has_equal_currents(self, tech, conditions):
        balanced = balance_bias(tech, conditions)
        target = block_saturation_current(conditions.vgs_bit1, tech, conditions)
        assert block_saturation_current(balanced, tech, conditions) == pytest.approx(
            target, rel=1e-6
        )

    def test_balanced_bias_above_tent_peak(self, tech, conditions):
        balanced = balance_bias(tech, conditions)
        assert balanced > conditions.v_c / 2.0

    def test_symmetric_model_balances_at_complement(self, tech, conditions):
        balanced = balance_bias(tech, conditions)
        assert balanced == pytest.approx(conditions.v_c - conditions.vgs_bit1, abs=1e-6)

    def test_rejects_bias_beyond_peak(self, tech, conditions):
        with pytest.raises(DeviceError):
            balance_bias(tech, conditions, vgs_bit1=conditions.v_c / 2 + 0.01)

    def test_tent_curve_peaks_at_half_vc(self, tech, conditions):
        biases, currents = isat_vs_gate_bias(tech, conditions)
        peak = biases[np.argmax(currents)]
        assert peak == pytest.approx(conditions.v_c / 2.0, abs=0.02)


class TestIVSweeps:
    def test_sweep_shapes(self, tech, conditions):
        curve = iv_sweep("sd2", tech, conditions, points=21)
        assert curve.voltages.shape == (21,)
        assert curve.currents.shape == (21,)
        assert curve.label == "sd2"

    def test_sweep_all_covers_designs(self, tech, conditions):
        curves = iv_sweep_all(tech, conditions, points=11)
        assert set(curves) == {"bare", "sd1", "sd2"}

    def test_flatness_metric_orders_designs(self, tech, conditions):
        curves = iv_sweep_all(tech, conditions, points=41)
        flatness = {
            name: curve.saturation_flatness(1.2, 2.0) for name, curve in curves.items()
        }
        assert flatness["sd2"] < flatness["sd1"] < flatness["bare"]

    def test_flatness_rejects_dead_curve(self):
        dead = IVCurve("dead", np.linspace(0, 2, 5), np.zeros(5))
        with pytest.raises(DeviceError):
            dead.saturation_flatness()

    def test_minimum_points_enforced(self, tech, conditions):
        with pytest.raises(DeviceError):
            iv_sweep("sd2", tech, conditions, points=1)


class TestPassivity:
    def test_edge_block_is_passive(self, tech, conditions):
        block = EdgeBlock(tech, conditions, bit=1)
        assert is_incrementally_passive(block.current)

    def test_all_designs_are_passive(self, tech, conditions):
        for name in ("bare", "sd1", "sd2"):
            design = build_design(name, tech, conditions)
            assert is_incrementally_passive(design.current, points=80)

    def test_margin_non_negative_for_real_block(self, tech, conditions):
        block = EdgeBlock(tech, conditions, bit=0)
        assert passivity_margin(block.current, points=80) >= 0.0

    def test_detects_non_passive_element(self):
        def tunnel_diode(voltage):
            # Negative differential resistance region.
            return voltage - 0.8 * np.sin(voltage * 3)

        assert not is_incrementally_passive(tunnel_diode, v_min=0.0, points=100)

    def test_detects_reverse_leak(self):
        def leaky(voltage):
            return voltage + 1.0  # conducts at zero/negative voltage

        assert not is_incrementally_passive(leaky, v_min=-0.5, points=50)

    def test_input_validation(self):
        with pytest.raises(DeviceError):
            is_incrementally_passive(lambda v: v, points=2)
        with pytest.raises(DeviceError):
            is_incrementally_passive(lambda v: v, v_min=1.0, v_max=0.0)
