"""PPUF key-exchange protocol."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ppuf import Ppuf
from repro.ppuf.esg import ESGModel, PowerLawFit
from repro.protocols import ExchangeCosts, KeyExchange, KeyExchangeParameters


@pytest.fixture(scope="module")
def exchange():
    ppuf = Ppuf.create(12, 3, np.random.default_rng(41))
    return KeyExchange(ppuf, KeyExchangeParameters(num_challenges=12, chain_length=16), b"kx")


@pytest.fixture
def esg_model():
    return ESGModel(
        simulation=PowerLawFit(coefficient=1e-9, exponent=3.0),
        execution=PowerLawFit(coefficient=1e-10, exponent=1.0),
    )


class TestProtocolRun:
    def test_honest_exchange_agrees(self, exchange, rng):
        secret_index, digest = exchange.initiator_pick(rng)
        recovered = exchange.holder_find(digest, rng)
        assert recovered == secret_index
        assert exchange.shared_secret(recovered) == exchange.shared_secret(secret_index)

    def test_every_index_recoverable(self, exchange, rng):
        for index in range(exchange.parameters.num_challenges):
            digest = exchange._digest(exchange._words[index])
            assert exchange.holder_find(digest, rng) == index

    def test_garbage_digest_returns_none(self, exchange, rng):
        assert exchange.holder_find(b"\x00" * 32, rng) is None

    def test_secret_is_32_bytes_and_index_bound(self, exchange):
        secret = exchange.shared_secret(0)
        assert len(secret) == 32
        assert secret != exchange.shared_secret(1)
        with pytest.raises(ReproError):
            exchange.shared_secret(99)

    def test_words_are_deterministic_public_data(self):
        ppuf = Ppuf.create(10, 3, np.random.default_rng(5))
        params = KeyExchangeParameters(num_challenges=6, chain_length=12)
        a = KeyExchange(ppuf, params, b"s")
        b = KeyExchange(ppuf, params, b"s")
        assert a._words == b._words

    def test_different_devices_different_words(self):
        params = KeyExchangeParameters(num_challenges=6, chain_length=16)
        a = KeyExchange(Ppuf.create(10, 3, np.random.default_rng(5)), params, b"s")
        b = KeyExchange(Ppuf.create(10, 3, np.random.default_rng(6)), params, b"s")
        assert a._words != b._words

    def test_wrong_device_cannot_answer(self, exchange, rng):
        """A holder with different silicon fails to find the match: the
        exchange implicitly authenticates the device."""
        impostor_device = Ppuf.create(12, 3, np.random.default_rng(404))
        impostor = KeyExchange(impostor_device, exchange.parameters, b"kx")
        _, digest = exchange.initiator_pick(rng)
        assert impostor.holder_find(digest, rng) is None


class TestParameters:
    def test_validation(self):
        with pytest.raises(ReproError):
            KeyExchangeParameters(num_challenges=1)
        with pytest.raises(ReproError):
            KeyExchangeParameters(chain_length=4)


class TestCosts:
    def test_eavesdropper_pays_the_esg(self, exchange, esg_model):
        costs = exchange.modeled_costs(esg_model)
        assert costs.eavesdropper_seconds > costs.holder_seconds
        assert costs.eavesdropper_seconds > costs.initiator_seconds
        assert costs.advantage_ratio > 1.0

    def test_advantage_grows_with_device_size(self, esg_model):
        params = KeyExchangeParameters(num_challenges=8, chain_length=10)
        small = KeyExchange(Ppuf.create(8, 2, np.random.default_rng(1)), params, b"s")
        large = KeyExchange(Ppuf.create(16, 4, np.random.default_rng(1)), params, b"s")
        assert (
            large.modeled_costs(esg_model).advantage_ratio
            > small.modeled_costs(esg_model).advantage_ratio
        )

    def test_cost_structure(self, exchange, esg_model):
        costs = exchange.modeled_costs(esg_model)
        m = exchange.parameters.num_challenges
        # Eavesdropper's expected work is (m+1)/2 of the initiator's.
        assert costs.eavesdropper_seconds == pytest.approx(
            (m + 1) / 2 * costs.initiator_seconds
        )
        assert isinstance(costs, ExchangeCosts)
