"""The residual-graph authentication protocol (Sections 2 and 3.2).

The asymmetry the PPUF exploits: *finding* a max flow costs Ω(n²) even in
parallel, but *verifying* one is a residual-graph BFS, O(n²/p).  The
verifier therefore asks the prover not just for the flow value but for the
flow itself (equivalently, the residual edges); it then checks feasibility
and optimality against the public simulation model.

The roles:

* :class:`PpufProver` — holds the physical device; answers a challenge by
  executing it and returning a :class:`FlowClaim`.  (A cheating prover
  without the device must *solve* max-flow, paying the simulation time.)
* :class:`PpufVerifier` — holds only the public model (the capacities);
  checks a claim in verification time and compares the claimed value with
  the comparator-level current the authentic device would produce.

Single claims go through :meth:`PpufVerifier.verify_compact`; a verifier
that coalesces many claims (the micro-batching service) goes through
:func:`verify_compact_claims` / :meth:`PpufVerifier.verify_compact_batch`,
which run every feasibility, maximality and value check as one lockstep
pass over ``(B, E)`` edge arrays on the shared
:class:`~repro.flow.csr.CsrTopology`.  No arithmetic couples claims, so a
claim's verdict is bit-identical whether it is verified alone or coalesced
with any set of strangers — and a malformed ("poisoned") claim is trapped
per row instead of failing its neighbours.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import FlowError, VerificationError
from repro.flow import solve_max_flow, verify_max_flow
from repro.flow.csr import complete_topology, segment_reduce
from repro.flow.registry import DEFAULT_ALGORITHM, SolveStats
from repro.flow.decomposition import (
    PathFlow,
    cancel_cycles,
    decompose_flow,
    recompose_flow,
)
from repro.flow.graph import DEFAULT_RTOL
from repro.ppuf.challenge import Challenge

#: Tolerance of the feasibility/maximality checks.  The single-claim path
#: delegates to :func:`repro.flow.residual.verify_max_flow` at its default
#: ``rtol`` — the batched path pins the same constant so verdicts agree
#: bit-for-bit between the two.
FEASIBILITY_RTOL = 1e-9


@dataclass(frozen=True)
class CompactClaim:
    """A prover's answer as a path decomposition.

    O(n) paths of length ≤ n replace the dense n×n flow matrix — the wire
    format a bandwidth-conscious protocol would use.  The verifier rebuilds
    the matrix (linear in the decomposition size) and checks as usual.
    """

    challenge: Challenge
    paths: List[PathFlow]
    value: float
    elapsed_seconds: float
    algorithm: str = DEFAULT_ALGORITHM
    solve_stats: Optional[SolveStats] = None

    def to_flow_claim(self, n: int) -> "FlowClaim":
        """Expand back into the dense-matrix claim form."""
        return FlowClaim(
            challenge=self.challenge,
            flow=recompose_flow(self.paths, n),
            value=self.value,
            elapsed_seconds=self.elapsed_seconds,
            algorithm=self.algorithm,
            solve_stats=self.solve_stats,
        )


@dataclass(frozen=True)
class FlowClaim:
    """A prover's answer: the flow it claims to be maximal.

    Attributes
    ----------
    challenge:
        The challenge being answered.
    flow:
        Claimed n×n edge-flow matrix.
    value:
        Claimed max-flow value (net out of the source).
    elapsed_seconds:
        Prover-side wall-clock (execution or simulation time).
    algorithm:
        Registered solver name the prover used.
    solve_stats:
        Optional :class:`~repro.flow.registry.SolveStats` of the prover's
        solve (phase seconds + operation counts).
    """

    challenge: Challenge
    flow: np.ndarray
    value: float
    elapsed_seconds: float
    algorithm: str = DEFAULT_ALGORITHM
    solve_stats: Optional[SolveStats] = None


@dataclass
class PpufProver:
    """The device holder for one network of a PPUF.

    The physical device settles to the max-flow current in O(n) time; the
    reproduction stands in the circuit's steady state with the max-flow
    solution itself (they agree to the model inaccuracy of Fig. 6, and the
    *flow pattern* is what the verifier asks for).
    """

    network: "object"  # repro.ppuf.device.PpufNetwork

    def answer(
        self,
        challenge: Challenge,
        *,
        algorithm: str = DEFAULT_ALGORITHM,
        stats: Optional[SolveStats] = None,
    ) -> FlowClaim:
        """Answer a challenge with any registered exact solver.

        The claim carries the solver name and its
        :class:`~repro.flow.registry.SolveStats`, so protocol transcripts
        and the service can attribute verify latency per algorithm.
        """
        edge_bits = self.network.crossbar.bits_for_edges(challenge.bits)
        instance = self.network.flow_network(edge_bits)
        solve_stats = stats if stats is not None else SolveStats()
        start = time.perf_counter()
        result = solve_max_flow(
            instance, challenge.source, challenge.sink,
            algorithm=algorithm, stats=solve_stats,
        )
        elapsed = time.perf_counter() - start
        return FlowClaim(
            challenge=challenge,
            flow=result.flow,
            value=result.value,
            elapsed_seconds=elapsed,
            algorithm=algorithm,
            solve_stats=solve_stats,
        )

    def answer_compact(
        self,
        challenge: Challenge,
        *,
        algorithm: str = DEFAULT_ALGORITHM,
        stats: Optional[SolveStats] = None,
    ) -> CompactClaim:
        """Answer with a path decomposition instead of the dense matrix."""
        claim = self.answer(challenge, algorithm=algorithm, stats=stats)
        # Push-relabel flows may carry cycles (same value, not path-
        # decomposable); cancel them before decomposing.
        paths = decompose_flow(
            cancel_cycles(claim.flow), challenge.source, challenge.sink
        )
        return CompactClaim(
            challenge=challenge,
            paths=paths,
            value=claim.value,
            elapsed_seconds=claim.elapsed_seconds,
            algorithm=claim.algorithm,
            solve_stats=claim.solve_stats,
        )


@dataclass(frozen=True)
class ClaimVerdict:
    """One claim's batched-verification outcome.

    ``accepted`` mirrors the boolean :meth:`PpufVerifier.verify_compact`
    returns; ``reason`` is ``None`` on acceptance and a short diagnostic
    otherwise — including the cases where the single-claim path would
    *raise* :class:`~repro.errors.VerificationError` (infeasible or
    malformed claims), because in a coalesced batch a poisoned claim must
    yield a rejection for its own row, never an exception that takes the
    neighbours down.

    ``kind`` classifies the outcome the way the service protocol does:
    ``"ok"`` (accepted), ``"incorrect"`` (feasible but sub-maximal or
    value-mismatched — the single-claim path returns ``False``) or
    ``"infeasible"`` (the single-claim path raises).  ``fault`` is ``None``
    except when the claim provoked an *unexpected* exception (anything but
    :class:`~repro.errors.VerificationError`); it then carries the error
    text so a server can count the containment as a worker fault.
    """

    accepted: bool
    reason: Optional[str] = None
    kind: str = "ok"
    fault: Optional[str] = None


def verify_compact_claims(
    network,
    claims: Sequence[CompactClaim],
    *,
    rtol: float = DEFAULT_RTOL,
) -> List[ClaimVerdict]:
    """Verify many compact claims against one network in lockstep.

    The batched sibling of :meth:`PpufVerifier.verify_compact`: per-claim
    Python work is limited to rebuilding the dense flow from its path
    decomposition and selecting the capacity row; every check then runs
    once over stacked ``(B, E)`` edge arrays —

    * feasibility: negative flow, capacity excess and conservation via
      :meth:`~repro.flow.csr.CsrTopology.edge_sums`;
    * maximality: the combined residual ``cap_e - f_e + f_opp(e)`` (the
      exact operand order of
      :func:`~repro.flow.residual.residual_capacities`, folded through the
      topology's ``opp`` mapping) followed by a level-synchronous batched
      reachability sweep;
    * value: the claimed value against the value recomputed from the
      shipped flow, at the caller's ``rtol``.

    Per-row arithmetic never couples claims, so each verdict is invariant
    to the batch composition, and any exception a claim provokes (bad
    terminals, wrong shapes, malformed paths) is caught into its own
    verdict.  Returns one :class:`ClaimVerdict` per claim, in order.
    """
    n = int(network.crossbar.n)
    topology = complete_topology(n)
    verdicts: List[Optional[ClaimVerdict]] = [None] * len(claims)
    kept: List[int] = []
    cap_rows: List[np.ndarray] = []
    flow_rows: List[np.ndarray] = []
    sources: List[int] = []
    sinks: List[int] = []
    claimed: List[float] = []
    for position, claim in enumerate(claims):
        try:
            challenge = claim.challenge
            source, sink = int(challenge.source), int(challenge.sink)
            if not (0 <= source < n and 0 <= sink < n) or source == sink:
                raise VerificationError("challenge terminals out of node range")
            edge_bits = network.crossbar.bits_for_edges(challenge.bits)
            cap_row = np.asarray(network.capacities(edge_bits), dtype=np.float64)
            try:
                flow = recompose_flow(claim.paths, n)
            except FlowError as error:
                raise VerificationError(
                    f"malformed path claim: {error}"
                ) from error
            if flow.shape != (n, n):
                raise VerificationError(
                    f"claimed flow has shape {flow.shape}; expected {(n, n)}"
                )
            # Self-loop flow can never be feasible (capacity 0); the
            # dense path catches it in the full-matrix excess check that
            # the edge extraction below would silently drop.
            tol_abs = FEASIBILITY_RTOL * max(float(cap_row.max()), 1.0)
            diagonal = np.abs(np.diagonal(flow))
            if diagonal.size and float(diagonal.max()) > tol_abs:
                raise VerificationError(
                    "infeasible claimed flow: flow on a self-loop"
                )
        except VerificationError as error:
            verdicts[position] = ClaimVerdict(False, str(error), kind="infeasible")
            continue
        except Exception as error:  # poisoned claim: isolate, don't spread
            verdicts[position] = ClaimVerdict(
                False,
                str(error),
                kind="infeasible",
                fault=f"{type(error).__name__}: {error}",
            )
            continue
        kept.append(position)
        cap_rows.append(cap_row)
        flow_rows.append(
            np.ascontiguousarray(flow[topology.edge_src, topology.edge_dst])
        )
        sources.append(source)
        sinks.append(sink)
        claimed.append(float(claim.value))
    if not kept:
        return [verdict for verdict in verdicts if verdict is not None]

    caps = np.stack(cap_rows)
    flows = np.stack(flow_rows)
    src = np.asarray(sources, dtype=np.int64)
    snk = np.asarray(sinks, dtype=np.int64)
    count = len(kept)
    rows = np.arange(count)
    tol = FEASIBILITY_RTOL * np.maximum(caps.max(axis=1), 1.0)

    negative = (flows < -tol[:, None]).any(axis=1)
    excess = ((flows - caps) > tol[:, None]).any(axis=1)
    out_sum, in_sum = topology.edge_sums(flows)
    imbalance = np.abs(in_sum - out_sum)
    imbalance[rows, src] = 0.0
    imbalance[rows, snk] = 0.0
    unbalanced = (imbalance > tol[:, None] * n).any(axis=1)
    infeasible = negative | excess | unbalanced

    # Combined residual per forward edge, then a batched BFS from each
    # claim's source over its positive-residual edges.
    residual = caps - flows + flows[:, topology.opp]
    np.clip(residual, 0.0, None, out=residual)
    open_edge = residual > tol[:, None]
    reach = np.zeros((count, n), dtype=bool)
    reach[rows, src] = True
    frontier = reach.copy()
    while True:
        offered = frontier[:, topology.edge_src] & open_edge
        fresh = segment_reduce(
            np.logical_or,
            offered[:, topology.fwd_in_order],
            topology.fwd_in_ptr,
            empty=False,
        ) & ~reach
        if not fresh.any():
            break
        reach |= fresh
        frontier = fresh
    submaximal = reach[rows, snk]

    actual = out_sum[rows, src] - in_sum[rows, src]
    value_off = np.abs(actual - np.asarray(claimed)) > rtol * np.maximum(
        np.abs(actual), 1e-30
    )

    for row, position in enumerate(kept):
        if infeasible[row]:
            verdicts[position] = ClaimVerdict(
                False, "infeasible claimed flow", kind="infeasible"
            )
        elif submaximal[row]:
            verdicts[position] = ClaimVerdict(
                False, "claimed flow is not maximal", kind="incorrect"
            )
        elif value_off[row]:
            verdicts[position] = ClaimVerdict(
                False,
                "claimed value does not match the shipped flow",
                kind="incorrect",
            )
        else:
            verdicts[position] = ClaimVerdict(True)
    return [verdict for verdict in verdicts if verdict is not None]


@dataclass
class PpufVerifier:
    """The public-model holder: verifies claims without the device."""

    network: "object"  # repro.ppuf.device.PpufNetwork

    def verify(self, claim: FlowClaim, *, rtol: float = DEFAULT_RTOL) -> bool:
        """Accept iff the claimed flow is feasible, maximal and value-true.

        Raises :class:`VerificationError` on an infeasible (cheating) flow;
        returns ``False`` for a feasible but sub-maximal one.  The claimed
        value must match the shipped flow within ``rtol`` relative to the
        recomputed value — :data:`repro.flow.graph.DEFAULT_RTOL` by
        default, the same tolerance every flow comparison in this package
        uses (an honest prover's value is recomputed from its own flow
        matrix, so the default is safely tight).
        """
        edge_bits = self.network.crossbar.bits_for_edges(claim.challenge.bits)
        instance = self.network.flow_network(edge_bits)
        flow = np.asarray(claim.flow, dtype=np.float64)
        if flow.shape != instance.capacity.shape:
            raise VerificationError(
                f"claimed flow has shape {flow.shape}; expected "
                f"{instance.capacity.shape}"
            )
        try:
            optimal = verify_max_flow(
                instance, flow, [claim.challenge.source], [claim.challenge.sink]
            )
        except FlowError as error:
            raise VerificationError(f"infeasible claimed flow: {error}") from error
        if not optimal:
            return False
        # Claimed value must match the flow it ships with.
        instance.flow = flow
        actual_value = instance.flow_value(claim.challenge.source)
        scale = max(abs(actual_value), 1e-30)
        return abs(actual_value - claim.value) <= rtol * scale

    def verify_compact(self, claim: CompactClaim, *, rtol: float = DEFAULT_RTOL) -> bool:
        """Verify a path-decomposition claim.

        Rebuilds the dense flow (raising :class:`VerificationError` for
        malformed paths) and delegates to :meth:`verify`.
        """
        n = self.network.crossbar.n
        try:
            expanded = claim.to_flow_claim(n)
        except FlowError as error:
            raise VerificationError(f"malformed path claim: {error}") from error
        return self.verify(expanded, rtol=rtol)

    def verify_compact_batch(
        self,
        claims: Sequence[CompactClaim],
        *,
        rtol: float = DEFAULT_RTOL,
    ) -> List[ClaimVerdict]:
        """Verify a batch of path-decomposition claims in lockstep.

        Delegates to :func:`verify_compact_claims`; see it for the verdict
        semantics (rejections instead of exceptions, batch-composition
        invariance).
        """
        return verify_compact_claims(self.network, claims, rtol=rtol)

    def timed_verify(self, claim: FlowClaim, *, rtol: float = DEFAULT_RTOL):
        """``(accepted, verifier_seconds)`` — the asymmetry measurement."""
        start = time.perf_counter()
        accepted = self.verify(claim, rtol=rtol)
        return accepted, time.perf_counter() - start
