"""The residual-graph authentication protocol (Sections 2 and 3.2).

The asymmetry the PPUF exploits: *finding* a max flow costs Ω(n²) even in
parallel, but *verifying* one is a residual-graph BFS, O(n²/p).  The
verifier therefore asks the prover not just for the flow value but for the
flow itself (equivalently, the residual edges); it then checks feasibility
and optimality against the public simulation model.

The roles:

* :class:`PpufProver` — holds the physical device; answers a challenge by
  executing it and returning a :class:`FlowClaim`.  (A cheating prover
  without the device must *solve* max-flow, paying the simulation time.)
* :class:`PpufVerifier` — holds only the public model (the capacities);
  checks a claim in verification time and compares the claimed value with
  the comparator-level current the authentic device would produce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import FlowError, VerificationError
from repro.flow import solve_max_flow, verify_max_flow
from repro.flow.registry import DEFAULT_ALGORITHM, SolveStats
from repro.flow.decomposition import (
    PathFlow,
    cancel_cycles,
    decompose_flow,
    recompose_flow,
)
from repro.flow.graph import DEFAULT_RTOL
from repro.ppuf.challenge import Challenge


@dataclass(frozen=True)
class CompactClaim:
    """A prover's answer as a path decomposition.

    O(n) paths of length ≤ n replace the dense n×n flow matrix — the wire
    format a bandwidth-conscious protocol would use.  The verifier rebuilds
    the matrix (linear in the decomposition size) and checks as usual.
    """

    challenge: Challenge
    paths: List[PathFlow]
    value: float
    elapsed_seconds: float
    algorithm: str = DEFAULT_ALGORITHM
    solve_stats: Optional[SolveStats] = None

    def to_flow_claim(self, n: int) -> "FlowClaim":
        """Expand back into the dense-matrix claim form."""
        return FlowClaim(
            challenge=self.challenge,
            flow=recompose_flow(self.paths, n),
            value=self.value,
            elapsed_seconds=self.elapsed_seconds,
            algorithm=self.algorithm,
            solve_stats=self.solve_stats,
        )


@dataclass(frozen=True)
class FlowClaim:
    """A prover's answer: the flow it claims to be maximal.

    Attributes
    ----------
    challenge:
        The challenge being answered.
    flow:
        Claimed n×n edge-flow matrix.
    value:
        Claimed max-flow value (net out of the source).
    elapsed_seconds:
        Prover-side wall-clock (execution or simulation time).
    algorithm:
        Registered solver name the prover used.
    solve_stats:
        Optional :class:`~repro.flow.registry.SolveStats` of the prover's
        solve (phase seconds + operation counts).
    """

    challenge: Challenge
    flow: np.ndarray
    value: float
    elapsed_seconds: float
    algorithm: str = DEFAULT_ALGORITHM
    solve_stats: Optional[SolveStats] = None


@dataclass
class PpufProver:
    """The device holder for one network of a PPUF.

    The physical device settles to the max-flow current in O(n) time; the
    reproduction stands in the circuit's steady state with the max-flow
    solution itself (they agree to the model inaccuracy of Fig. 6, and the
    *flow pattern* is what the verifier asks for).
    """

    network: "object"  # repro.ppuf.device.PpufNetwork

    def answer(
        self,
        challenge: Challenge,
        *,
        algorithm: str = DEFAULT_ALGORITHM,
        stats: Optional[SolveStats] = None,
    ) -> FlowClaim:
        """Answer a challenge with any registered exact solver.

        The claim carries the solver name and its
        :class:`~repro.flow.registry.SolveStats`, so protocol transcripts
        and the service can attribute verify latency per algorithm.
        """
        edge_bits = self.network.crossbar.bits_for_edges(challenge.bits)
        instance = self.network.flow_network(edge_bits)
        solve_stats = stats if stats is not None else SolveStats()
        start = time.perf_counter()
        result = solve_max_flow(
            instance, challenge.source, challenge.sink,
            algorithm=algorithm, stats=solve_stats,
        )
        elapsed = time.perf_counter() - start
        return FlowClaim(
            challenge=challenge,
            flow=result.flow,
            value=result.value,
            elapsed_seconds=elapsed,
            algorithm=algorithm,
            solve_stats=solve_stats,
        )

    def answer_compact(
        self,
        challenge: Challenge,
        *,
        algorithm: str = DEFAULT_ALGORITHM,
        stats: Optional[SolveStats] = None,
    ) -> CompactClaim:
        """Answer with a path decomposition instead of the dense matrix."""
        claim = self.answer(challenge, algorithm=algorithm, stats=stats)
        # Push-relabel flows may carry cycles (same value, not path-
        # decomposable); cancel them before decomposing.
        paths = decompose_flow(
            cancel_cycles(claim.flow), challenge.source, challenge.sink
        )
        return CompactClaim(
            challenge=challenge,
            paths=paths,
            value=claim.value,
            elapsed_seconds=claim.elapsed_seconds,
            algorithm=claim.algorithm,
            solve_stats=claim.solve_stats,
        )


@dataclass
class PpufVerifier:
    """The public-model holder: verifies claims without the device."""

    network: "object"  # repro.ppuf.device.PpufNetwork

    def verify(self, claim: FlowClaim, *, rtol: float = DEFAULT_RTOL) -> bool:
        """Accept iff the claimed flow is feasible, maximal and value-true.

        Raises :class:`VerificationError` on an infeasible (cheating) flow;
        returns ``False`` for a feasible but sub-maximal one.  The claimed
        value must match the shipped flow within ``rtol`` relative to the
        recomputed value — :data:`repro.flow.graph.DEFAULT_RTOL` by
        default, the same tolerance every flow comparison in this package
        uses (an honest prover's value is recomputed from its own flow
        matrix, so the default is safely tight).
        """
        edge_bits = self.network.crossbar.bits_for_edges(claim.challenge.bits)
        instance = self.network.flow_network(edge_bits)
        flow = np.asarray(claim.flow, dtype=np.float64)
        if flow.shape != instance.capacity.shape:
            raise VerificationError(
                f"claimed flow has shape {flow.shape}; expected "
                f"{instance.capacity.shape}"
            )
        try:
            optimal = verify_max_flow(
                instance, flow, [claim.challenge.source], [claim.challenge.sink]
            )
        except FlowError as error:
            raise VerificationError(f"infeasible claimed flow: {error}") from error
        if not optimal:
            return False
        # Claimed value must match the flow it ships with.
        instance.flow = flow
        actual_value = instance.flow_value(claim.challenge.source)
        scale = max(abs(actual_value), 1e-30)
        return abs(actual_value - claim.value) <= rtol * scale

    def verify_compact(self, claim: CompactClaim, *, rtol: float = DEFAULT_RTOL) -> bool:
        """Verify a path-decomposition claim.

        Rebuilds the dense flow (raising :class:`VerificationError` for
        malformed paths) and delegates to :meth:`verify`.
        """
        n = self.network.crossbar.n
        try:
            expanded = claim.to_flow_claim(n)
        except FlowError as error:
            raise VerificationError(f"malformed path claim: {error}") from error
        return self.verify(expanded, rtol=rtol)

    def timed_verify(self, claim: FlowClaim, *, rtol: float = DEFAULT_RTOL):
        """``(accepted, verifier_seconds)`` — the asymmetry measurement."""
        start = time.perf_counter()
        accepted = self.verify(claim, rtol=rtol)
        return accepted, time.perf_counter() - start
