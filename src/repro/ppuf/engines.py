"""Response engines: physical execution vs public simulation.

* ``"circuit"`` — the *execution*: a nonlinear DC solve of the crossbar at
  the challenge's bias configuration; the output is the steady-state source
  current.
* ``"maxflow"`` — the *public simulation model*: a max-flow computation on
  the complete graph with capacities equal to the per-edge saturation
  currents; any registered exact solver from :mod:`repro.flow.registry`
  may be named via ``algorithm``.

Fig. 6 of the paper is literally the disagreement between the two engines;
everything else (Table 1, Figs. 8–10) may use the fast max-flow engine once
that disagreement is shown to be < 1 %.

Engines live in a small dispatch table mirroring the solver registry, and
unknown engine names raise through the same
:func:`repro.flow.registry.unknown_name_error` shape as unknown algorithm
names — one wording for every bad lookup.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.flow.registry import DEFAULT_ALGORITHM, SolveStats, unknown_name_error

#: Engine dispatch table: name -> fn(network, challenge, algorithm, stats).
ENGINES: Dict[str, Callable] = {}


def _maxflow_current(network, challenge, algorithm: str, stats: Optional[SolveStats]) -> float:
    edge_bits = network.crossbar.bits_for_edges(challenge.bits)
    return network.maxflow_current(
        edge_bits, challenge.source, challenge.sink,
        algorithm=algorithm, stats=stats,
    )


def _circuit_current(network, challenge, algorithm: str, stats: Optional[SolveStats]) -> float:
    # The execution path has no solver choice; ``algorithm`` is ignored and
    # telemetry counts DC solves instead of residual-graph work.
    edge_bits = network.crossbar.bits_for_edges(challenge.bits)
    if stats is None:
        return network.circuit_current(edge_bits, challenge.source, challenge.sink)
    import time

    start = time.perf_counter()
    with stats.phase("solve"):
        current = network.circuit_current(edge_bits, challenge.source, challenge.sink)
    stats.total_seconds += time.perf_counter() - start
    if not stats.algorithm:
        stats.algorithm = "circuit"
    stats.solves += 1
    stats.count("dc_solves")
    return current


ENGINES["maxflow"] = _maxflow_current
ENGINES["circuit"] = _circuit_current

#: Engine names accepted by :meth:`repro.ppuf.device.Ppuf.response`.
ENGINE_NAMES = tuple(ENGINES)


def check_engine(engine: str) -> str:
    """Validate an engine name, returning it unchanged.

    Shared by the per-challenge path here and the batched pipeline in
    :mod:`repro.ppuf.batch` so both reject unknown engines identically —
    and with the same error shape as unknown solver names.
    """
    if engine not in ENGINES:
        raise unknown_name_error("engine", engine, ENGINES)
    return engine


def network_current(
    network,
    challenge,
    engine: str,
    *,
    algorithm: str = DEFAULT_ALGORITHM,
    stats: Optional[SolveStats] = None,
) -> float:
    """Source current of one PPUF network for a challenge.

    Parameters
    ----------
    network:
        A :class:`repro.ppuf.device.PpufNetwork`.
    challenge:
        A :class:`repro.ppuf.challenge.Challenge`.
    engine:
        ``"maxflow"`` or ``"circuit"``.
    algorithm:
        Registered exact solver name (maxflow engine only).
    stats:
        Optional :class:`~repro.flow.registry.SolveStats` filled with the
        solve's wall time and operation counts.
    """
    check_engine(engine)
    return ENGINES[engine](network, challenge, algorithm, stats)
