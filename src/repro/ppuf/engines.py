"""Response engines: physical execution vs public simulation.

* ``"circuit"`` — the *execution*: a nonlinear DC solve of the crossbar at
  the challenge's bias configuration; the output is the steady-state source
  current.
* ``"maxflow"`` — the *public simulation model*: a max-flow computation on
  the complete graph with capacities equal to the per-edge saturation
  currents.

Fig. 6 of the paper is literally the disagreement between the two engines;
everything else (Table 1, Figs. 8–10) may use the fast max-flow engine once
that disagreement is shown to be < 1 %.
"""

from __future__ import annotations


from repro.errors import SolverError

#: Engine names accepted by :meth:`repro.ppuf.device.Ppuf.response`.
ENGINE_NAMES = ("maxflow", "circuit")


def check_engine(engine: str) -> str:
    """Validate an engine name, returning it unchanged.

    Shared by the per-challenge path here and the batched pipeline in
    :mod:`repro.ppuf.batch` so both reject unknown engines identically.
    """
    if engine not in ENGINE_NAMES:
        raise SolverError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
        )
    return engine


def network_current(network, challenge, engine: str, *, algorithm: str = "dinic") -> float:
    """Source current of one PPUF network for a challenge.

    Parameters
    ----------
    network:
        A :class:`repro.ppuf.device.PpufNetwork`.
    challenge:
        A :class:`repro.ppuf.challenge.Challenge`.
    engine:
        ``"maxflow"`` or ``"circuit"``.
    algorithm:
        Max-flow solver name (maxflow engine only).
    """
    check_engine(engine)
    edge_bits = network.crossbar.bits_for_edges(challenge.bits)
    if engine == "maxflow":
        return network.maxflow_current(
            edge_bits, challenge.source, challenge.sink, algorithm=algorithm
        )
    return network.circuit_current(edge_bits, challenge.source, challenge.sink)
