"""The PPUF device: two variated crossbar networks and a comparator.

:class:`PpufNetwork` models one crossbar (Fig. 1's "Network A" or
"Network B"): it owns a process-variation sample and lazily caches, per
challenge-bit value, the edge capacities (max-flow engine) and the edge I–V
tables (circuit engine), so per-challenge evaluation only selects rows and
solves.

:class:`Ppuf` is the full device of Fig. 1: it compares the two networks'
source currents to produce the response bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.blocks.edge import edge_currents_at_voltage, edge_saturation_scale, edge_voltage
from repro.circuit.dc import solve_dc
from repro.circuit.ptm32 import (
    CAPACITY_REFERENCE_VOLTAGE,
    NOMINAL_CONDITIONS,
    OperatingConditions,
    PTM32,
    Technology,
)
from repro.circuit.table import EdgeTable
from repro.circuit.variation import VariationModel, VariationSample
from repro.errors import ChallengeError, GraphError
from repro.flow import FlowNetwork, solve_max_flow
from repro.flow.registry import DEFAULT_ALGORITHM
from repro.ppuf.challenge import Challenge, ChallengeSpace
from repro.ppuf.comparator import CurrentComparator
from repro.ppuf.compiled import CompiledDevice, NetworkTables, compile_ppuf
from repro.ppuf.crossbar import Crossbar
from repro.ppuf.engines import network_current


class PpufNetwork:
    """One crossbar network bound to a variation sample.

    Parameters
    ----------
    crossbar:
        Topology and grid partition.
    sample:
        Per-edge threshold shifts for this network.
    tech, conditions:
        Technology card and operating point.
    """

    def __init__(
        self,
        crossbar: Crossbar,
        sample: VariationSample,
        tech: Technology,
        conditions: OperatingConditions,
    ):
        if sample.num_edges != crossbar.num_edges:
            raise GraphError(
                f"variation sample covers {sample.num_edges} edges but the "
                f"crossbar has {crossbar.num_edges}"
            )
        self.crossbar = crossbar
        self.sample = sample
        self.tech = tech
        self.conditions = conditions
        self._capacities: Dict[int, np.ndarray] = {}
        self._tables: Dict[int, EdgeTable] = {}
        self._edge_src, self._edge_dst = crossbar.edge_endpoints()

    # ------------------------------------------------------------------
    # pickling: the lazy caches are derivable, so they never travel.  A
    # warmed parent would otherwise ship megabytes of I-V tables to every
    # pool worker that is about to build (or map) its own anyway.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for key in ("_capacities", "_tables", "_edge_src", "_edge_dst"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._capacities = {}
        self._tables = {}
        self._edge_src, self._edge_dst = self.crossbar.edge_endpoints()

    # ------------------------------------------------------------------
    # compiled-artifact interop
    # ------------------------------------------------------------------
    def compile(self, *, include_circuit: bool = True) -> NetworkTables:
        """This network's per-bit tables in compiled (flat-array) form.

        Forces the lazy caches, so compiling a warmed network copies
        nothing.  With ``include_circuit=False`` the I–V tables are skipped
        (verification-only consumers need just the capacities).
        """
        return NetworkTables(
            cap0=self._capacities_for_bit(0),
            cap1=self._capacities_for_bit(1),
            table0=self._table_for_bit(0) if include_circuit else None,
            table1=self._table_for_bit(1) if include_circuit else None,
        )

    def adopt_compiled(self, tables: NetworkTables) -> None:
        """Seed the lazy caches from compiled tables, skipping derivation.

        The inverse of :meth:`compile`: a network that adopts an artifact's
        tables answers every subsequent challenge by row selection without
        ever running the capacity bisection or the I–V tabulation.
        """
        if tables.cap0.shape != (self.crossbar.num_edges,):
            raise GraphError(
                f"compiled tables cover {tables.cap0.shape[0]} edges but the "
                f"crossbar has {self.crossbar.num_edges}"
            )
        self._capacities = {0: tables.cap0, 1: tables.cap1}
        if tables.table0 is not None and tables.table1 is not None:
            self._tables = {0: tables.table0, 1: tables.table1}

    # ------------------------------------------------------------------
    # capacity cache (max-flow engine)
    # ------------------------------------------------------------------
    def _capacities_for_bit(self, bit: int) -> np.ndarray:
        if bit not in self._capacities:
            bits = np.full(self.crossbar.num_edges, bit, dtype=np.uint8)
            self._capacities[bit] = edge_currents_at_voltage(
                CAPACITY_REFERENCE_VOLTAGE, bits, self.sample, self.tech, self.conditions
            )
        return self._capacities[bit]

    def capacities(self, edge_bits: np.ndarray) -> np.ndarray:
        """Simulation-model edge capacities under a per-edge bit vector."""
        edge_bits = np.asarray(edge_bits)
        if edge_bits.shape != (self.crossbar.num_edges,):
            raise ChallengeError(
                f"expected {self.crossbar.num_edges} edge bits, got {edge_bits.shape}"
            )
        cap0 = self._capacities_for_bit(0)
        cap1 = self._capacities_for_bit(1)
        return np.where(edge_bits == 1, cap1, cap0)

    def capacity_matrix(self, edge_bits: np.ndarray) -> np.ndarray:
        """Dense n×n capacity matrix of the simulation model."""
        matrix = np.zeros((self.crossbar.n, self.crossbar.n))
        matrix[self._edge_src, self._edge_dst] = self.capacities(edge_bits)
        return matrix

    def flow_network(self, edge_bits: np.ndarray) -> FlowNetwork:
        """The public max-flow instance for a challenge configuration."""
        return FlowNetwork.from_arrays(
            self.crossbar.n, self._edge_src, self._edge_dst, self.capacities(edge_bits)
        )

    def maxflow_current(
        self,
        edge_bits: np.ndarray,
        source: int,
        sink: int,
        *,
        algorithm: str = DEFAULT_ALGORITHM,
        stats=None,
    ) -> float:
        """Simulated source current: the max-flow value.

        ``algorithm`` may be any registered exact solver; ``stats`` is an
        optional :class:`~repro.flow.registry.SolveStats` to fill.
        """
        network = self.flow_network(edge_bits)
        result = solve_max_flow(network, source, sink, algorithm=algorithm, stats=stats)
        return result.value

    # ------------------------------------------------------------------
    # I-V table cache (circuit engine)
    # ------------------------------------------------------------------
    def _table_for_bit(self, bit: int) -> EdgeTable:
        if bit not in self._tables:
            bits = np.full(self.crossbar.num_edges, bit, dtype=np.uint8)

            def v_of_i(current_matrix):
                return edge_voltage(
                    current_matrix, bits, self.sample, self.tech, self.conditions
                )

            i_scale = edge_saturation_scale(bits, self.sample, self.tech, self.conditions)
            self._tables[bit] = EdgeTable.build(
                v_of_i, i_scale, v_max=self.conditions.v_supply
            )
        return self._tables[bit]

    def edge_table(self, edge_bits: np.ndarray) -> EdgeTable:
        """Per-challenge table assembled by row selection from the bit caches."""
        edge_bits = np.asarray(edge_bits)
        if edge_bits.shape != (self.crossbar.num_edges,):
            raise ChallengeError(
                f"expected {self.crossbar.num_edges} edge bits, got {edge_bits.shape}"
            )
        table0 = self._table_for_bit(0)
        table1 = self._table_for_bit(1)
        select = (edge_bits == 1)[:, None]
        return EdgeTable(
            v_grid=table0.v_grid,
            currents=np.where(select, table1.currents, table0.currents),
            cocontent=np.where(select, table1.cocontent, table0.cocontent),
        )

    def circuit_current(self, edge_bits: np.ndarray, source: int, sink: int) -> float:
        """Executed source current: nonlinear DC solve of the crossbar."""
        table = self.edge_table(edge_bits)
        solution = solve_dc(
            self.crossbar.n,
            self._edge_src,
            self._edge_dst,
            table,
            source=source,
            sink=sink,
            v_supply=self.conditions.v_supply,
        )
        return solution.source_current

    def dc_solution(self, edge_bits: np.ndarray, source: int, sink: int):
        """Full DC operating point (for delay/power analysis)."""
        table = self.edge_table(edge_bits)
        return solve_dc(
            self.crossbar.n,
            self._edge_src,
            self._edge_dst,
            table,
            source=source,
            sink=sink,
            v_supply=self.conditions.v_supply,
        )


@dataclass
class Ppuf:
    """A complete PPUF instance (Fig. 1).

    Build with :meth:`create`; evaluate with :meth:`response`.
    """

    crossbar: Crossbar
    network_a: PpufNetwork
    network_b: PpufNetwork
    comparator: CurrentComparator = field(default_factory=CurrentComparator)

    @classmethod
    def create(
        cls,
        n: int,
        l: int,
        rng: np.random.Generator,
        *,
        tech: Technology = PTM32,
        conditions: OperatingConditions = NOMINAL_CONDITIONS,
        comparator: Optional[CurrentComparator] = None,
        side_by_side: bool = True,
    ) -> "Ppuf":
        """Fabricate a PPUF: sample process variation for both networks.

        ``side_by_side`` follows Section 4.1's placement (shared systematic
        variation); pass ``False`` for the ablation.
        """
        crossbar = Crossbar(n=n, l=l)
        model = VariationModel(tech)
        sample_a, sample_b = model.sample_pair(
            crossbar.num_edges,
            rng,
            side_by_side=side_by_side,
            positions=crossbar.block_positions(),
        )
        return cls(
            crossbar=crossbar,
            network_a=PpufNetwork(crossbar, sample_a, tech, conditions),
            network_b=PpufNetwork(crossbar, sample_b, tech, conditions),
            comparator=comparator or CurrentComparator(),
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.crossbar.n

    @property
    def l(self) -> int:
        return self.crossbar.l

    def challenge_space(self) -> ChallengeSpace:
        return ChallengeSpace(self.crossbar)

    def compile(
        self,
        *,
        include_circuit: bool = True,
        device_id: Optional[str] = None,
    ) -> CompiledDevice:
        """Compile this device into an immutable evaluation artifact.

        See :mod:`repro.ppuf.compiled`: the artifact holds both networks'
        per-bit tables as flat arrays, evaluates bit-identically to this
        device, pickles light, persists via
        :func:`repro.ppuf.io.save_compiled` and fans out to workers over
        shared memory.  ``include_circuit=False`` skips the I–V tabulation
        for verification-only use.
        """
        return compile_ppuf(
            self, include_circuit=include_circuit, device_id=device_id
        )

    def currents(
        self,
        challenge: Challenge,
        *,
        engine: str = "maxflow",
        algorithm: str = DEFAULT_ALGORITHM,
        stats=None,
    ) -> Tuple[float, float]:
        """Source currents of the two networks for a challenge.

        ``algorithm`` names any registered exact solver (maxflow engine);
        ``stats`` is an optional :class:`~repro.flow.registry.SolveStats`
        accumulating telemetry across both network solves.
        """
        self._check_challenge(challenge)
        return (
            network_current(self.network_a, challenge, engine, algorithm=algorithm, stats=stats),
            network_current(self.network_b, challenge, engine, algorithm=algorithm, stats=stats),
        )

    def response(
        self,
        challenge: Challenge,
        *,
        engine: str = "maxflow",
        algorithm: str = DEFAULT_ALGORITHM,
        stats=None,
    ) -> int:
        """The response bit: comparator decision on the two currents."""
        current_a, current_b = self.currents(
            challenge, engine=engine, algorithm=algorithm, stats=stats
        )
        return self.comparator.compare(current_a, current_b)

    def noisy_response(
        self,
        challenge: Challenge,
        rng: np.random.Generator,
        *,
        votes: int = 1,
        engine: str = "maxflow",
        algorithm: str = DEFAULT_ALGORITHM,
    ) -> int:
        """Response under comparator noise, optionally majority-voted.

        The network currents are deterministic (the silicon doesn't change);
        the comparator decision is resampled ``votes`` times.
        """
        current_a, current_b = self.currents(challenge, engine=engine, algorithm=algorithm)
        return self.comparator.majority_decision(current_a, current_b, rng, votes=votes)

    def response_bits(
        self,
        challenges,
        *,
        engine: str = "maxflow",
        algorithm: str = DEFAULT_ALGORITHM,
        stats=None,
    ) -> np.ndarray:
        """Vector of response bits for a challenge list."""
        return np.array(
            [
                self.response(c, engine=engine, algorithm=algorithm, stats=stats)
                for c in challenges
            ],
            dtype=np.uint8,
        )

    def responses(
        self,
        challenges,
        *,
        engine: str = "maxflow",
        algorithm: str = "batched_dinic",
        workers: int = 1,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Batched response bits: challenge matrix in, response vector out.

        The throughput path: capacities for all challenges are assembled
        into one table and solved in lockstep — edge arrays over the
        shared CSR for ``algorithm="batched_dinic"`` (default), a dense
        stack for ``"batched"`` — or one at a time with an exact named
        solver.  See
        :class:`repro.ppuf.batch.BatchEvaluator` for the pipeline and
        :class:`repro.ppuf.batch.BatchReport` for per-stage accounting.
        """
        from repro.ppuf.batch import BatchEvaluator

        evaluator = BatchEvaluator(
            self,
            engine=engine,
            algorithm=algorithm,
            workers=workers,
            chunk_size=chunk_size,
        )
        bits, _ = evaluator.evaluate(challenges)
        return bits

    def at_environment(
        self,
        *,
        supply_scale: float = 1.0,
        temperature_k: Optional[float] = None,
    ) -> "Ppuf":
        """An environmental-corner view of the same silicon.

        Returns a new :class:`Ppuf` sharing both variation samples but with
        the supply scaled and/or the technology shifted to a temperature —
        the knobs of the paper's intra-class-HD evaluation (±10 % supply,
        −20 °C … 80 °C).
        """
        tech = self.network_a.tech
        conditions = self.network_a.conditions.with_supply_scale(supply_scale)
        if temperature_k is not None:
            tech = tech.at_temperature(temperature_k)
            conditions = replace(conditions, temperature=temperature_k)
        return Ppuf(
            crossbar=self.crossbar,
            network_a=PpufNetwork(self.crossbar, self.network_a.sample, tech, conditions),
            network_b=PpufNetwork(self.crossbar, self.network_b.sample, tech, conditions),
            comparator=self.comparator,
        )

    def _check_challenge(self, challenge: Challenge) -> None:
        if challenge.num_bits != self.crossbar.num_control_bits:
            raise ChallengeError(
                f"challenge carries {challenge.num_bits} control bits; this "
                f"PPUF expects {self.crossbar.num_control_bits}"
            )
        if not (0 <= challenge.source < self.n and 0 <= challenge.sink < self.n):
            raise ChallengeError("challenge terminals out of node range")
