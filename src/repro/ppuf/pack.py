"""Packed artifact fleets: one mmap'd file for a million devices.

The registry's per-device ``<device_id>.npz`` artifacts (PR 5) make one
cold claim cheap, but at fleet scale the *container* becomes the cost:
10⁶ devices mean 10⁶ files, 10⁶ open/parse round trips, and no page
sharing between verify workers that load the same artifact.  This module
packs a whole fleet into a single append-only file that a verifier opens
**once** with :func:`numpy.memmap`; serving a device is then an index
lookup plus a row slice, and every process mapping the pack shares pages
through the OS page cache — the same economics
:func:`~repro.ppuf.compiled.share_compiled` gives one device over shared
memory, extended to the whole directory of public models the paper's
protocol assumes.

On-disk layout (container ``format: 2``)
----------------------------------------

::

    file      := file-header record*
    file-header := MAGIC(8B "PPUFPACK") version(u32 LE = 2) reserved(u32 LE)
    record    := RMAGIC(4B "PKR1") header_len(u64 LE) header-JSON
                 pad(to 64B)  array-bytes…

Each record's header JSON carries the device id, the embedded
compiled-artifact header (schema version 1 — a record slice rebuilds
through the exact :meth:`CompiledDevice.from_arrays
<repro.ppuf.compiled.CompiledDevice.from_arrays>` path a standalone
``.npz`` does) and the layout of its raw arrays: name, dtype, shape and
byte offset relative to the record's 64-byte-aligned data start.

Append protocol and durability
------------------------------

The pack is **append-only**: streaming bulk enrollment writes new records
at the tail and never rewrites existing bytes, so readers holding an open
mapping stay valid.  Appending the same device id again supersedes the
earlier record (last writer wins) — a refresh without a rewrite.
:meth:`PackWriter.close` flushes and fsyncs; a writer killed mid-record
leaves a truncated tail that :class:`ArtifactPack` detects and skips with
a logged warning (every fully synced record before it survives), and
:meth:`PackWriter.open` truncates such a tail before appending.  A fresh
:meth:`PackWriter.create` stages the whole file in a temp path and
publishes it with the module-wide fsync + umask-respecting chmod +
:func:`os.replace` contract of :mod:`repro.ppuf.io`.
"""

from __future__ import annotations

import io as _io
import json
import logging
import os
import struct
import tempfile
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ppuf.compiled import CompiledDevice
from repro.ppuf.formats import PACK_FORMAT_VERSION, check_format, format_mismatch
from repro.ppuf.io import publish_temp

logger = logging.getLogger(__name__)

PACK_MAGIC = b"PPUFPACK"
RECORD_MAGIC = b"PKR1"
#: Array data is aligned so mmap'd views start on cache-line boundaries.
ALIGNMENT = 64

_FILE_HEADER = struct.Struct("<8sII")
_RECORD_PREFIX = struct.Struct("<4sQ")


def _padding(position: int) -> int:
    return (-position) % ALIGNMENT


class _Entry:
    """One device's location inside the pack (in-memory index row)."""

    __slots__ = ("device_header", "arrays", "data_start", "data_bytes")

    def __init__(self, device_header: dict, arrays: List[dict], data_start: int,
                 data_bytes: int):
        self.device_header = device_header
        self.arrays = arrays
        self.data_start = data_start
        self.data_bytes = data_bytes


def _read_file_header(handle, path: str, size: int) -> None:
    if size < _FILE_HEADER.size:
        raise ReproError(f"malformed artifact pack {path!r}: too short for a header")
    magic, version, _ = _FILE_HEADER.unpack(handle.read(_FILE_HEADER.size))
    if magic != PACK_MAGIC:
        raise ReproError(
            f"malformed artifact pack {path!r}: bad magic {magic!r}"
        )
    if version != PACK_FORMAT_VERSION:
        raise ReproError(
            format_mismatch(
                "artifact pack", version, path=path, expected=PACK_FORMAT_VERSION
            )
        )


def _scan(handle, path: str) -> Tuple[Dict[str, _Entry], int]:
    """Walk the records; returns ``(index, end_of_valid_data)``.

    A malformed or truncated tail (the footprint of a writer killed
    mid-append) ends the scan with a warning instead of an error: the pack
    stays serviceable with every record that was fully written and synced.
    """
    size = os.fstat(handle.fileno()).st_size
    _read_file_header(handle, path, size)
    index: Dict[str, _Entry] = {}
    position = _FILE_HEADER.size
    while position < size:
        if position + _RECORD_PREFIX.size > size:
            logger.warning(
                "artifact pack %s: truncated record tail at byte %d ignored",
                path, position,
            )
            break
        handle.seek(position)
        magic, header_len = _RECORD_PREFIX.unpack(handle.read(_RECORD_PREFIX.size))
        header_start = position + _RECORD_PREFIX.size
        if magic != RECORD_MAGIC or header_start + header_len > size:
            logger.warning(
                "artifact pack %s: corrupt or truncated record at byte %d "
                "ignored", path, position,
            )
            break
        try:
            header = json.loads(handle.read(header_len).decode("utf-8"))
            check_format(
                "artifact pack record", header, path=path,
                expected=PACK_FORMAT_VERSION,
            )
            device_id = str(header["device_id"])
            arrays = header["arrays"]
            data_bytes = int(header["data_bytes"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            logger.warning(
                "artifact pack %s: unreadable record header at byte %d "
                "ignored", path, position,
            )
            break
        data_start = header_start + header_len
        data_start += _padding(data_start)
        if data_start + data_bytes > size:
            logger.warning(
                "artifact pack %s: record %s at byte %d is truncated "
                "(partial append) and ignored", path, device_id[:16], position,
            )
            break
        # Last writer wins: a re-appended device supersedes its old record.
        index[device_id] = _Entry(
            header["device"], arrays, data_start, data_bytes
        )
        position = data_start + data_bytes
    return index, position


class PackWriter:
    """Append-only writer for packed artifact fleets.

    Use the constructors, not ``__init__``:

    * :meth:`create` stages a brand-new pack and publishes it atomically
      on :meth:`close` (temp file + fsync + chmod + :func:`os.replace`);
    * :meth:`open` appends to an existing pack in place (creating it with
      a bare file header when missing), fsyncing on close.

    Both are context managers; an exception inside the ``with`` block
    aborts a staged create (the temp file is removed) while an append
    leaves every record that was fully written.
    """

    def __init__(self, path: str, handle, *, temp_path: Optional[str] = None,
                 ids: Optional[set] = None):
        self.path = path
        self._handle = handle
        self._temp_path = temp_path
        self._ids = set() if ids is None else ids
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str) -> "PackWriter":
        """Stage a fresh pack; the file appears at ``path`` only on close."""
        directory = os.path.dirname(os.path.abspath(path))
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        handle = os.fdopen(descriptor, "wb")
        handle.write(_FILE_HEADER.pack(PACK_MAGIC, PACK_FORMAT_VERSION, 0))
        return cls(path, handle, temp_path=temp_path)

    @classmethod
    def open(cls, path: str) -> "PackWriter":
        """Open ``path`` for appending (created with a header if missing).

        The existing records are scanned first: a corrupt or truncated
        tail from an interrupted append is truncated away (with a logged
        warning) so new records always extend a valid pack.
        """
        if not os.path.exists(path):
            handle = _io.open(path, "wb")
            handle.write(_FILE_HEADER.pack(PACK_MAGIC, PACK_FORMAT_VERSION, 0))
            return cls(path, handle)
        handle = _io.open(path, "r+b")
        try:
            index, end = _scan(handle, path)
        except BaseException:
            handle.close()
            raise
        size = os.fstat(handle.fileno()).st_size
        if end < size:
            logger.warning(
                "artifact pack %s: truncating %d trailing byte(s) of an "
                "interrupted append before writing", path, size - end,
            )
            handle.truncate(end)
        handle.seek(end)
        return cls(path, handle, ids=set(index))

    # ------------------------------------------------------------------
    def add(self, device: CompiledDevice, *, device_id: Optional[str] = None) -> str:
        """Append one compiled device; returns the id it was packed under.

        ``device_id`` defaults to the artifact's own (content-derived) id;
        an artifact without one is rejected — the pack is an index, and an
        unkeyed row could never be served.
        """
        if self._closed:
            raise ReproError("pack writer is closed")
        if device_id is None:
            device_id = device.device_id
        if not device_id:
            raise ReproError(
                "compiled artifact carries no device id; pass device_id= "
                "explicitly to pack it"
            )
        header = dict(device.header())
        header["device_id"] = device_id
        arrays = device.to_arrays()
        layout: List[dict] = []
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset += _padding(offset)
            layout.append({
                "name": name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            })
            offset += array.nbytes
        record_header = json.dumps({
            "format": PACK_FORMAT_VERSION,
            "device_id": device_id,
            "device": header,
            "arrays": layout,
            "data_bytes": offset,
        }).encode("utf-8")
        handle = self._handle
        handle.write(_RECORD_PREFIX.pack(RECORD_MAGIC, len(record_header)))
        handle.write(record_header)
        handle.write(b"\0" * _padding(handle.tell()))
        data_start = handle.tell()
        for entry, array in zip(layout, arrays.values()):
            pad = data_start + entry["offset"] - handle.tell()
            if pad:
                handle.write(b"\0" * pad)
            handle.write(np.ascontiguousarray(array).tobytes())
        self._ids.add(device_id)
        return device_id

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._ids

    # ------------------------------------------------------------------
    def close(self, *, abort: bool = False) -> None:
        """Flush, fsync and (for :meth:`create`) atomically publish."""
        if self._closed:
            return
        self._closed = True
        handle, self._handle = self._handle, None
        try:
            if not abort:
                handle.flush()
                os.fsync(handle.fileno())
        finally:
            handle.close()
        if self._temp_path is not None:
            if abort:
                try:
                    os.unlink(self._temp_path)
                except OSError:
                    pass
            else:
                publish_temp(self._temp_path, self.path)

    def __enter__(self) -> "PackWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(abort=exc_type is not None)


class ArtifactPack:
    """Read view of a packed fleet: one mmap, O(1) descriptors, row slices.

    The file is scanned once for its offset index and mapped once with
    :func:`numpy.memmap` (which releases the descriptor after mapping, so
    an open pack holds **zero** long-lived file descriptors regardless of
    device count).  :meth:`device` materialises a
    :class:`~repro.ppuf.compiled.CompiledDevice` whose capacity/circuit
    tables are read-only *views* into the mapping — no bytes are copied,
    and every process mapping the same pack shares pages through the OS
    page cache.

    Served devices are immutable, so the pack keeps the ``cache_devices``
    most recently served ones in a small LRU: a verify worker that is
    hammered with claims for a handful of hot devices (the micro-batching
    server's common case) skips the header-validation and array-wrapping
    work of :meth:`CompiledDevice.from_arrays
    <repro.ppuf.compiled.CompiledDevice.from_arrays>` on every repeat hit.
    ``cache_devices=0`` disables the cache.
    """

    def __init__(self, path: str, *, cache_devices: int = 8):
        self.path = path
        if cache_devices < 0:
            raise ReproError(
                f"cache_devices must be >= 0, got {cache_devices}"
            )
        self._cache_limit = int(cache_devices)
        self._cache: "OrderedDict[str, CompiledDevice]" = OrderedDict()
        try:
            with open(path, "rb") as handle:
                self._index, self._end = _scan(handle, path)
        except OSError as error:
            raise ReproError(
                f"cannot read artifact pack {path!r}: {error}"
            ) from error
        if self._end > _FILE_HEADER.size:
            self._data = np.memmap(path, dtype=np.uint8, mode="r")
        else:
            self._data = np.zeros(0, dtype=np.uint8)  # header-only pack

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._index

    def ids(self) -> List[str]:
        return sorted(self._index)

    def header(self, device_id: str) -> dict:
        """The embedded compiled-artifact header for one device."""
        return dict(self._entry(device_id).device_header)

    def _entry(self, device_id: str) -> _Entry:
        try:
            return self._index[device_id]
        except KeyError:
            raise ReproError(
                f"artifact pack {self.path!r} holds no device {device_id!r}"
            ) from None

    def device(self, device_id: str) -> CompiledDevice:
        """Serve one device as zero-copy views into the mapping."""
        cached = self._cache.get(device_id)
        if cached is not None:
            self._cache.move_to_end(device_id)
            return cached
        entry = self._entry(device_id)
        arrays = {}
        for spec in entry.arrays:
            start = entry.data_start + spec["offset"]
            raw = self._data[start: start + spec["nbytes"]]
            arrays[spec["name"]] = raw.view(np.dtype(spec["dtype"])).reshape(
                tuple(spec["shape"])
            )
        device = CompiledDevice.from_arrays(entry.device_header, arrays)
        if self._cache_limit:
            self._cache[device_id] = device
            while len(self._cache) > self._cache_limit:
                self._cache.popitem(last=False)
        return device

    def refresh(self) -> None:
        """Re-scan and re-map after an external append extended the file.

        Drops the device LRU: a superseding append may have replaced a
        cached device's record, and stale tables must never be served.
        """
        self.__init__(self.path, cache_devices=self._cache_limit)

    def stats(self) -> dict:
        """Pack-level accounting (the ``inspect`` CLI surface)."""
        return {
            "format": PACK_FORMAT_VERSION,
            "path": self.path,
            "devices": len(self._index),
            "file_bytes": int(os.path.getsize(self.path)),
            "data_end": int(self._end),
        }


# ----------------------------------------------------------------------
# bulk helpers (streaming enrollment pipeline)
# ----------------------------------------------------------------------
def build_pack(path: str, devices: Iterable[CompiledDevice]) -> int:
    """Create a new pack at ``path`` from an iterable of compiled devices.

    Streams: each device is appended and released before the next is
    pulled, so a million-device enrollment never holds the fleet in
    memory.  Returns the number of devices packed.
    """
    count = 0
    with PackWriter.create(path) as writer:
        for device in devices:
            writer.add(device)
            count += 1
    return count


def append_pack(path: str, devices: Iterable[CompiledDevice]) -> int:
    """Append compiled devices to an existing pack (created when missing)."""
    count = 0
    with PackWriter.open(path) as writer:
        for device in devices:
            writer.add(device)
            count += 1
    return count
