"""PPUF core: the paper's primary contribution.

A :class:`~repro.ppuf.device.Ppuf` owns two nominally identical crossbar
networks (differing only through process variation), evaluates challenges
with either the *circuit* engine (the physical execution) or the *max-flow*
engine (the public simulation model), and exposes the ESG machinery:
delay bounds, feedback-loop amplification, and the residual-graph
verification protocol.
"""

from repro.ppuf.crossbar import Crossbar
from repro.ppuf.challenge import Challenge, ChallengeSpace
from repro.ppuf.comparator import CurrentComparator
from repro.ppuf.device import Ppuf, PpufNetwork
from repro.ppuf.batch import BatchEvaluator, BatchReport
from repro.ppuf.crp import CRP, CRPDataset
from repro.ppuf.pack import ArtifactPack, PackWriter, append_pack, build_pack
from repro.ppuf.delay import lin_mead_delay_bound, effective_edge_resistance
from repro.ppuf.esg import ESGModel, PowerLawFit, fit_power_law
from repro.ppuf.feedback import FeedbackChain, run_feedback_chain
from repro.ppuf.verification import (
    ClaimVerdict,
    CompactClaim,
    FlowClaim,
    PpufProver,
    PpufVerifier,
    verify_compact_claims,
)
from repro.ppuf.protocol import AuthenticationSession, RoundRecord, SessionResult
from repro.ppuf.identity import PublicRegistry, expected_match_separation, response_word
from repro.ppuf.keys import KeyMaterial, derive_key, key_agreement_rate, seed_challenges

__all__ = [
    "Crossbar",
    "Challenge",
    "ChallengeSpace",
    "CurrentComparator",
    "Ppuf",
    "PpufNetwork",
    "BatchEvaluator",
    "BatchReport",
    "ArtifactPack",
    "PackWriter",
    "append_pack",
    "build_pack",
    "CRP",
    "CRPDataset",
    "lin_mead_delay_bound",
    "effective_edge_resistance",
    "ESGModel",
    "PowerLawFit",
    "fit_power_law",
    "FeedbackChain",
    "run_feedback_chain",
    "ClaimVerdict",
    "CompactClaim",
    "FlowClaim",
    "verify_compact_claims",
    "PpufProver",
    "PpufVerifier",
    "AuthenticationSession",
    "RoundRecord",
    "SessionResult",
    "PublicRegistry",
    "expected_match_separation",
    "response_word",
    "KeyMaterial",
    "derive_key",
    "key_agreement_rate",
    "seed_challenges",
]
