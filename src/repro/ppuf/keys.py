"""Key derivation from PPUF responses.

Turning PUF responses into cryptographic key material needs two things the
raw device doesn't give: *stability* (comparator noise and environment
flip marginal bits) and *uniformity*.  This module implements the standard
lightweight recipe:

1. evaluate a deterministic, seed-derived challenge list;
2. stabilise each bit by majority over repeated noisy evaluations,
   discarding bits whose current margin is below the comparator's
   resolution (the "dark bit" masking technique);
3. compress the retained bits with SHA-256 into the final key.

Because the PPUF's model is public, this is a *device-bound identity key*
(anyone can compute it from the public model — like a fingerprint, not a
secret): its role in PPUF protocols is binding messages to the physical
device via the time-bounded evaluation, not secrecy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ppuf.challenge import Challenge, ChallengeSpace


def seed_challenges(ppuf, seed: bytes, count: int) -> List[Challenge]:
    """Derive a deterministic public challenge list from a seed."""
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    if not isinstance(seed, (bytes, bytearray)):
        raise ReproError("seed must be bytes")
    digest = hashlib.sha256(bytes(seed)).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
    space = ChallengeSpace(ppuf.crossbar)
    return [space.random(rng) for _ in range(count)]


@dataclass(frozen=True)
class KeyMaterial:
    """Derived key plus the provenance a verifier needs to recompute it.

    Attributes
    ----------
    key:
        32-byte SHA-256 digest of the retained response bits.
    bits:
        The retained (stable) response bits.
    mask:
        Per-challenge retention mask (True = bit kept); *public* — it
        reveals which bits were marginal, not their values.
    """

    key: bytes
    bits: np.ndarray
    mask: np.ndarray

    @property
    def retained(self) -> int:
        return int(self.mask.sum())


def derive_key(
    ppuf,
    seed: bytes,
    *,
    num_bits: int = 64,
    votes: int = 1,
    rng: np.random.Generator = None,
    engine: str = "maxflow",
) -> KeyMaterial:
    """Derive device-bound key material from seed-derived challenges.

    Parameters
    ----------
    votes:
        Majority votes per bit when the comparator is noisy (odd counts
        recommended).
    rng:
        Required when the PPUF's comparator has ``noise_sigma > 0``.
    """
    challenges = seed_challenges(ppuf, seed, num_bits)
    noisy = ppuf.comparator.noise_sigma > 0
    if noisy and rng is None:
        raise ReproError("a noisy comparator needs an rng for key derivation")

    bits = np.zeros(num_bits, dtype=np.uint8)
    mask = np.zeros(num_bits, dtype=bool)
    for index, challenge in enumerate(challenges):
        current_a, current_b = ppuf.currents(challenge, engine=engine)
        # Dark-bit masking: drop bits whose margin the comparator cannot
        # reliably resolve.
        mask[index] = ppuf.comparator.is_resolvable(current_a, current_b)
        if noisy:
            bits[index] = ppuf.comparator.majority_decision(
                current_a, current_b, rng, votes=votes
            )
        else:
            bits[index] = ppuf.comparator.compare(current_a, current_b)

    retained = bits[mask]
    digest = hashlib.sha256(np.packbits(retained).tobytes()).digest()
    return KeyMaterial(key=digest, bits=retained.copy(), mask=mask)


def key_agreement_rate(
    ppuf,
    seed: bytes,
    trials: int,
    rng: np.random.Generator,
    *,
    num_bits: int = 64,
    votes: int = 1,
) -> Tuple[float, KeyMaterial]:
    """Fraction of repeated derivations that reproduce the reference key.

    The reliability figure of merit for a (noise, votes) configuration;
    returns the reference material too.
    """
    if trials < 1:
        raise ReproError(f"trials must be >= 1, got {trials}")
    reference = derive_key(ppuf, seed, num_bits=num_bits, votes=votes, rng=rng)
    matches = sum(
        derive_key(ppuf, seed, num_bits=num_bits, votes=votes, rng=rng).key
        == reference.key
        for _ in range(trials)
    )
    return matches / trials, reference
