"""Feedback-loop CRP chaining (Section 3.3, after Rührmair's SIMPL trick).

Instead of answering one challenge, the prover must produce a *sequence*
(C1, R1), ..., (Ck, Rk) where each later challenge is derived from the
previous challenge and its response.  An attacker must therefore simulate
the k rounds strictly sequentially — parallelism across rounds is
impossible — multiplying the simulation-time lower bound by k while the
device's execution cost also only grows k-fold: the ESG amplifies by k.

The derivation function must be public and cheap; we derive round i+1 by
seeding a PRNG with (a digest of) the previous control word and the
response bit, then resampling the control word and rotating the terminal
pair.  Any deterministic public function works; the security lives in the
PPUF evaluation, not the derivation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ChallengeError
from repro.ppuf.challenge import Challenge
from repro.ppuf.crp import CRP


def derive_next_challenge(challenge: Challenge, response: int, n: int) -> Challenge:
    """Public derivation of the next round's challenge.

    Deterministic in (challenge, response): hashes the control word, the
    terminals and the response bit into a PRNG seed, then draws fresh
    terminals and control bits.
    """
    if response not in (0, 1):
        raise ChallengeError(f"response must be 0 or 1, got {response}")
    digest = hashlib.sha256(
        challenge.bits.tobytes()
        + challenge.source.to_bytes(4, "little")
        + challenge.sink.to_bytes(4, "little")
        + bytes([response])
    ).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
    source = int(rng.integers(n))
    sink = int(rng.integers(n - 1))
    if sink >= source:
        sink += 1
    bits = rng.integers(0, 2, size=challenge.num_bits, dtype=np.uint8)
    return Challenge(source=source, sink=sink, bits=bits)


@dataclass
class FeedbackChain:
    """The transcript of a k-round feedback evaluation."""

    rounds: List[CRP] = field(default_factory=list)

    @property
    def k(self) -> int:
        return len(self.rounds)

    @property
    def final_response(self) -> int:
        if not self.rounds:
            raise ChallengeError("feedback chain is empty")
        return self.rounds[-1].response

    def verify_derivations(self, n: int) -> bool:
        """Check every round's challenge derives from its predecessor."""
        for prev, this in zip(self.rounds, self.rounds[1:]):
            expected = derive_next_challenge(prev.challenge, prev.response, n)
            if expected.key() != this.challenge.key():
                return False
        return True


def run_feedback_chain(
    ppuf,
    initial_challenge: Challenge,
    k: int,
    *,
    engine: str = "maxflow",
) -> FeedbackChain:
    """Evaluate a k-round feedback chain on a PPUF.

    Parameters
    ----------
    ppuf:
        A :class:`repro.ppuf.device.Ppuf`.
    initial_challenge:
        C1; later rounds derive deterministically.
    k:
        Number of rounds (the paper uses k = n).
    """
    if k < 1:
        raise ChallengeError(f"round count must be >= 1, got {k}")
    chain = FeedbackChain()
    challenge = initial_challenge
    for _ in range(k):
        response = ppuf.response(challenge, engine=engine)
        chain.rounds.append(CRP(challenge, response))
        challenge = derive_next_challenge(challenge, response, ppuf.n)
    return chain
