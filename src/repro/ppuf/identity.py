"""Enrollment-free device identification.

Classic PUF identification needs an enrollment database of CRPs.  A PPUF
doesn't: anyone holding a device's *public model* can regenerate its
expected response word for any challenge set on the fly.  This module
provides that workflow:

* :func:`response_word` — a device's response bits over a challenge list;
* :class:`PublicRegistry` — a directory of public models (one per claimed
  device) that identifies an unknown device by Hamming-matching its
  measured response word against the *simulated* words of every registered
  model;
* :func:`expected_match_separation` — the statistics that make matching
  work: same-device distance ≈ intra-class HD (~0), different-device
  distance ≈ inter-class HD (~0.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ppuf.challenge import Challenge


def response_word(ppuf, challenges: List[Challenge], *, engine: str = "maxflow") -> np.ndarray:
    """The device's response bits over a challenge list."""
    if not challenges:
        raise ReproError("need at least one challenge")
    return ppuf.response_bits(challenges, engine=engine)


@dataclass
class PublicRegistry:
    """A directory of registered public models.

    Registered entries are full :class:`~repro.ppuf.device.Ppuf` objects
    standing in for their public models (the variation data *is* public for
    a PPUF — that is the whole point).
    """

    challenges: List[Challenge]
    entries: Dict[str, object] = field(default_factory=dict)
    _words: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        if not self.challenges:
            raise ReproError("registry needs a non-empty challenge list")

    def register(self, name: str, ppuf) -> None:
        """Add a device's public model under a name."""
        if name in self.entries:
            raise ReproError(f"device {name!r} is already registered")
        self.entries[name] = ppuf
        self._words[name] = response_word(ppuf, self.challenges)

    def identify(
        self,
        measured_word: np.ndarray,
        *,
        max_distance: float = 0.25,
    ) -> Tuple[Optional[str], float]:
        """Match a measured response word against all registered models.

        Returns ``(name, normalised_distance)`` of the best match, or
        ``(None, distance)`` when even the best match is farther than
        ``max_distance`` (an unregistered/counterfeit device).
        """
        if not self.entries:
            raise ReproError("registry is empty")
        measured_word = np.asarray(measured_word)
        if measured_word.shape != (len(self.challenges),):
            raise ReproError(
                f"measured word must have length {len(self.challenges)}, "
                f"got {measured_word.shape}"
            )
        best_name = None
        best_distance = np.inf
        for name, word in self._words.items():
            distance = float(np.mean(word != measured_word))
            if distance < best_distance:
                best_name = name
                best_distance = distance
        if best_distance > max_distance:
            return None, best_distance
        return best_name, best_distance


def expected_match_separation(
    ppufs,
    challenges: List[Challenge],
) -> Tuple[float, float]:
    """(max same-device distance, min cross-device distance) over a population.

    Identification is reliable when the first is far below the second; the
    returned pair quantifies the margin for a concrete population.
    """
    if len(ppufs) < 2:
        raise ReproError("need at least two devices")
    words = [response_word(ppuf, challenges) for ppuf in ppufs]
    same = 0.0  # deterministic engines: same device == same word
    cross = min(
        float(np.mean(words[i] != words[j]))
        for i in range(len(words))
        for j in range(i + 1, len(words))
    )
    return same, cross
