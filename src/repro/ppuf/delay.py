"""Execution-delay bounds (Section 3.3).

The paper adapts Lin & Mead's capacitance decomposition: for the node ``u``
with the largest delay, ``T(u) = R(s, u) * C(s, u) <= R(s, u) * C(u)``.
In the complete crossbar every node is one edge away from the source, the
edge resistance ``R(s, u)`` is node-count independent, and the node
capacitance ``C(u)`` grows linearly with the incident edge count — hence the
O(n) execution-delay upper bound that Fig. 7(a) plots.

Two estimators are provided:

* :func:`lin_mead_delay_bound` — the paper's analytic bound, using the
  effective edge resistance at the operating point and the technology's
  per-edge capacitance share;
* :func:`measured_settling_time` — the slowest linearised RC mode of an
  actual solved PPUF network (physics cross-check).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.linearize import conductance_laplacian, small_signal_conductances
from repro.circuit.ptm32 import (
    CAPACITY_REFERENCE_VOLTAGE,
    NOMINAL_CONDITIONS,
    OperatingConditions,
    PTM32,
    Technology,
)
from repro.circuit.rc import node_capacitances, settling_time_linearized
from repro.errors import GraphError


def effective_edge_resistance(
    tech: Technology = PTM32,
    conditions: OperatingConditions = NOMINAL_CONDITIONS,
) -> float:
    """Large-signal resistance of one edge block at its operating point [Ω].

    The charging path from the source into any node is one edge block;
    its resistance ``V_ref / I(V_ref)`` is independent of n — the constant
    ``R(s, u)`` of the paper's bound.
    """
    from repro.blocks.edge import EdgeBlock

    block = EdgeBlock(tech, conditions, bit=1)
    capacity = block.capacity()
    if capacity <= 0:
        raise GraphError("edge block carries no current at the reference voltage")
    return CAPACITY_REFERENCE_VOLTAGE / capacity


def node_capacitance(n: int, tech: Technology = PTM32) -> float:
    """C(u) for a crossbar node: fixed part + 2(n-1) incident-edge shares."""
    if n < 2:
        raise GraphError(f"need at least 2 nodes, got {n}")
    return tech.c_node0 + 2 * (n - 1) * tech.c_edge


def lin_mead_delay_bound(
    n: int,
    tech: Technology = PTM32,
    conditions: OperatingConditions = NOMINAL_CONDITIONS,
) -> float:
    """The paper's O(n) execution-delay upper bound [s]."""
    return effective_edge_resistance(tech, conditions) * node_capacitance(n, tech)


def transient_settling_time(
    network,
    edge_bits: np.ndarray,
    source: int,
    sink: int,
    *,
    settle_ratio: float = 1e-2,
    duration_bounds: float = 8.0,
    steps: int = 160,
) -> float:
    """Settling time from a full nonlinear turn-on transient [s].

    Simulates the V(s) supply step with backward Euler
    (:mod:`repro.circuit.transient`) and reports when the source current
    enters the ``settle_ratio`` band.  ``duration_bounds`` sets the
    simulated span in units of the Lin–Mead bound; the span doubles until
    the current actually settles.
    """
    from repro.circuit.transient import simulate_turn_on

    src, dst = network.crossbar.edge_endpoints()
    table = network.edge_table(np.asarray(edge_bits))
    capacitance = node_capacitances_for(network)
    duration = duration_bounds * lin_mead_delay_bound(
        network.crossbar.n, network.tech, network.conditions
    )
    for _ in range(8):
        result = simulate_turn_on(
            network.crossbar.n,
            src,
            dst,
            table,
            capacitance,
            source=source,
            sink=sink,
            v_supply=network.conditions.v_supply,
            duration=duration,
            steps=steps,
            settle_ratio=settle_ratio,
        )
        if result.settling_time is not None:
            return result.settling_time
        duration *= 2.0
    raise GraphError("transient did not settle; raise duration_bounds")


def node_capacitances_for(network) -> np.ndarray:
    """Diagonal node capacitances of a PpufNetwork's crossbar."""
    return node_capacitances(
        network.crossbar.n,
        network.crossbar.incident_edge_counts(),
        network.tech.c_edge,
        network.tech.c_node0,
    )


def measured_settling_time(
    network,
    edge_bits: np.ndarray,
    source: int,
    sink: int,
    *,
    settle_ratio: float = 1e-3,
) -> float:
    """Settling time of a solved PPUF network's linearised RC system [s].

    Parameters
    ----------
    network:
        A :class:`repro.ppuf.device.PpufNetwork`.
    edge_bits:
        Per-edge challenge bits.
    """
    solution = network.dc_solution(edge_bits, source, sink)
    table = network.edge_table(np.asarray(edge_bits))
    src, dst = network.crossbar.edge_endpoints()
    conductance = small_signal_conductances(solution, src, dst, table)
    laplacian = conductance_laplacian(network.crossbar.n, src, dst, conductance)
    capacitance = node_capacitances(
        network.crossbar.n,
        network.crossbar.incident_edge_counts(),
        network.tech.c_edge,
        network.tech.c_node0,
    )
    return settling_time_linearized(
        laplacian, capacitance, pinned=(source, sink), settle_ratio=settle_ratio
    )
