"""PPUF persistence.

A fabricated PPUF is fully described by its topology, technology card,
operating point and the two variation samples — all *public* data (the
PPUF premise).  The JSON form here is what a manufacturer would publish
per device; :func:`load_ppuf` rebuilds a device that answers bit-for-bit
identically across processes (asserted by the CLI tests).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile

import numpy as np

from repro.circuit.ptm32 import OperatingConditions, Technology
from repro.circuit.variation import VariationSample
from repro.errors import ReproError
from repro.ppuf.crossbar import Crossbar
from repro.ppuf.crp import CRPDataset
from repro.ppuf.device import Ppuf, PpufNetwork
from repro.ppuf.formats import FORMAT_VERSION, check_format


def ppuf_to_dict(ppuf: Ppuf) -> dict:
    """Serialisable description of a fabricated PPUF."""

    def sample_dict(sample: VariationSample) -> dict:
        return {
            "delta_vt": sample.delta_vt.tolist(),
            "systematic": sample.systematic.tolist(),
        }

    return {
        "format": FORMAT_VERSION,
        "n": ppuf.n,
        "l": ppuf.l,
        "technology": dataclasses.asdict(ppuf.network_a.tech),
        "conditions": dataclasses.asdict(ppuf.network_a.conditions),
        "sample_a": sample_dict(ppuf.network_a.sample),
        "sample_b": sample_dict(ppuf.network_b.sample),
    }


def ppuf_from_dict(data: dict) -> Ppuf:
    """Rebuild a PPUF from its saved description.

    A missing ``"format"`` field is accepted as the legacy pre-versioning
    form; an explicit mismatch raises :class:`ReproError`.
    """
    try:
        check_format("PPUF description", data)
    except ValueError as error:
        raise ReproError(str(error)) from None
    try:
        crossbar = Crossbar(n=int(data["n"]), l=int(data["l"]))
        tech = Technology(**data["technology"])
        conditions = OperatingConditions(**data["conditions"])

        def sample(payload) -> VariationSample:
            return VariationSample(
                delta_vt=np.asarray(payload["delta_vt"], dtype=np.float64),
                systematic=np.asarray(payload["systematic"], dtype=np.float64),
            )

        return Ppuf(
            crossbar=crossbar,
            network_a=PpufNetwork(crossbar, sample(data["sample_a"]), tech, conditions),
            network_b=PpufNetwork(crossbar, sample(data["sample_b"]), tech, conditions),
        )
    except (KeyError, TypeError) as error:
        raise ReproError(f"malformed PPUF save file: {error}") from error


def current_umask() -> int:
    """The process umask (read without changing it for longer than a call)."""
    mask = os.umask(0)
    os.umask(mask)
    return mask


def publish_temp(temp_path: str, path: str) -> None:
    """Publish a fully written temp file at ``path`` (the atomic contract).

    ``mkstemp`` creates temp files with mode 0600, which is the wrong
    permission set to *publish*: a registry directory read by verify
    workers under another uid would silently lose access.  The temp file
    is re-moded to the umask-respecting 0666-derived permissions a plain
    :func:`open` would have produced, then moved over ``path`` with
    :func:`os.replace`.  The caller must already have flushed and fsynced
    the content; the rename itself is atomic on POSIX.
    """
    os.chmod(temp_path, 0o666 & ~current_umask())
    os.replace(temp_path, path)


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The text lands in a temporary file in the same directory, is flushed
    and fsynced, and is moved into place with :func:`os.replace`, so a
    crashed or killed writer (a registry server mid-enrollment, say) never
    leaves a truncated file at ``path`` — readers see either the old
    content or the new, never a partial write — and a power loss straight
    after the rename cannot surface an empty file.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        publish_temp(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def save_ppuf(ppuf: Ppuf, path: str) -> None:
    """Write a device's public description to a JSON file (atomically)."""
    atomic_write_text(path, json.dumps(ppuf_to_dict(ppuf)))


def load_ppuf(path: str) -> Ppuf:
    """Rebuild a device from a JSON file written by :func:`save_ppuf`.

    Raises :class:`ReproError` (with the path in the message) on an
    unreadable or syntactically malformed file — the same error contract
    as :func:`load_crps`.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        raise ReproError(f"cannot read PPUF file {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ReproError(f"malformed PPUF file {path!r}: {error}") from error
    try:
        check_format("PPUF", data if isinstance(data, dict) else {}, path=path)
    except ValueError as error:
        raise ReproError(str(error)) from None
    return ppuf_from_dict(data)


def save_crps(dataset: CRPDataset, path: str) -> None:
    """Write a CRP dataset to a JSON file (the CLI's batch wire format).

    The write is atomic (temp file + :func:`os.replace`), like
    :func:`save_ppuf`.
    """
    atomic_write_text(path, dataset.to_json())


def load_crps(path: str) -> CRPDataset:
    """Read a CRP dataset written by :func:`save_crps`.

    Raises :class:`ReproError` on a malformed file.
    """
    try:
        with open(path) as handle:
            text = handle.read()
        return CRPDataset.from_json(text)
    except OSError as error:
        raise ReproError(f"cannot read CRP file {path!r}: {error}") from error
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(f"malformed CRP file {path!r}: {error}") from error


def save_compiled(device, path: str) -> None:
    """Write a compiled artifact to ``path`` (npz archive + JSON header).

    The archive holds the artifact's flat arrays under their canonical
    names plus one ``header`` entry: the JSON metadata (format version,
    geometry, technology card, device id).  The write follows the same
    durability contract as every other writer in this module: the temp
    file is fsynced before :func:`publish_temp` re-modes it (mkstemp's
    0600 would hide the artifact from other-uid readers) and atomically
    renames it over ``path``.
    """
    header = np.array(json.dumps(device.header()))
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp.npz"
    )
    os.close(descriptor)
    try:
        # temp_path ends in .npz, so np.savez appends nothing.
        np.savez(temp_path, header=header, **device.to_arrays())
        with open(temp_path, "rb") as handle:
            os.fsync(handle.fileno())
        publish_temp(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def load_compiled(path: str):
    """Read a compiled artifact written by :func:`save_compiled`.

    Raises :class:`ReproError` (naming the path, and the found version on
    a schema mismatch) on an unreadable, malformed or wrong-format file.
    """
    import zipfile

    from repro.ppuf.compiled import CompiledDevice

    try:
        with np.load(path, allow_pickle=False) as data:
            if "header" not in data.files:
                raise ReproError(
                    f"malformed compiled artifact {path!r}: no header entry"
                )
            header = json.loads(str(data["header"][()]))
            arrays = {name: data[name] for name in data.files if name != "header"}
    except ReproError:
        raise
    except OSError as error:
        raise ReproError(
            f"cannot read compiled artifact {path!r}: {error}"
        ) from error
    except (ValueError, KeyError, zipfile.BadZipFile) as error:
        raise ReproError(
            f"malformed compiled artifact {path!r}: {error}"
        ) from error
    try:
        check_format("compiled PPUF artifact", header, path=path)
    except ValueError as error:
        raise ReproError(str(error)) from None
    return CompiledDevice.from_arrays(header, arrays)
