"""PPUF persistence.

A fabricated PPUF is fully described by its topology, technology card,
operating point and the two variation samples — all *public* data (the
PPUF premise).  The JSON form here is what a manufacturer would publish
per device; :func:`load_ppuf` rebuilds a device that answers bit-for-bit
identically across processes (asserted by the CLI tests).
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from repro.circuit.ptm32 import OperatingConditions, Technology
from repro.circuit.variation import VariationSample
from repro.errors import ReproError
from repro.ppuf.crossbar import Crossbar
from repro.ppuf.crp import CRPDataset
from repro.ppuf.device import Ppuf, PpufNetwork


def ppuf_to_dict(ppuf: Ppuf) -> dict:
    """Serialisable description of a fabricated PPUF."""

    def sample_dict(sample: VariationSample) -> dict:
        return {
            "delta_vt": sample.delta_vt.tolist(),
            "systematic": sample.systematic.tolist(),
        }

    return {
        "n": ppuf.n,
        "l": ppuf.l,
        "technology": dataclasses.asdict(ppuf.network_a.tech),
        "conditions": dataclasses.asdict(ppuf.network_a.conditions),
        "sample_a": sample_dict(ppuf.network_a.sample),
        "sample_b": sample_dict(ppuf.network_b.sample),
    }


def ppuf_from_dict(data: dict) -> Ppuf:
    """Rebuild a PPUF from its saved description."""
    try:
        crossbar = Crossbar(n=int(data["n"]), l=int(data["l"]))
        tech = Technology(**data["technology"])
        conditions = OperatingConditions(**data["conditions"])

        def sample(payload) -> VariationSample:
            return VariationSample(
                delta_vt=np.asarray(payload["delta_vt"], dtype=np.float64),
                systematic=np.asarray(payload["systematic"], dtype=np.float64),
            )

        return Ppuf(
            crossbar=crossbar,
            network_a=PpufNetwork(crossbar, sample(data["sample_a"]), tech, conditions),
            network_b=PpufNetwork(crossbar, sample(data["sample_b"]), tech, conditions),
        )
    except (KeyError, TypeError) as error:
        raise ReproError(f"malformed PPUF save file: {error}") from error


def save_ppuf(ppuf: Ppuf, path: str) -> None:
    """Write a device's public description to a JSON file."""
    with open(path, "w") as handle:
        json.dump(ppuf_to_dict(ppuf), handle)


def load_ppuf(path: str) -> Ppuf:
    """Rebuild a device from a JSON file written by :func:`save_ppuf`."""
    with open(path) as handle:
        return ppuf_from_dict(json.load(handle))


def save_crps(dataset: CRPDataset, path: str) -> None:
    """Write a CRP dataset to a JSON file (the CLI's batch wire format)."""
    with open(path, "w") as handle:
        handle.write(dataset.to_json())


def load_crps(path: str) -> CRPDataset:
    """Read a CRP dataset written by :func:`save_crps`.

    Raises :class:`ReproError` on a malformed file.
    """
    try:
        with open(path) as handle:
            text = handle.read()
        return CRPDataset.from_json(text)
    except OSError as error:
        raise ReproError(f"cannot read CRP file {path!r}: {error}") from error
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(f"malformed CRP file {path!r}: {error}") from error
