"""On-disk schema versioning for every PPUF persistence surface.

Every serialised artifact — the public device JSON
(:func:`repro.ppuf.io.ppuf_to_dict`), the CRP dataset wire format
(:meth:`repro.ppuf.crp.CRPDataset.to_json`) and the compiled evaluation
artifact (:func:`repro.ppuf.io.save_compiled`) — stamps the same
``"format"`` field.  Readers check it *first* and fail with one clear
message instead of erroring deep inside reconstruction when a future
format changes shape.

This lives in its own module because :mod:`repro.ppuf.io` imports the
container modules (a constant shared the other way would be a cycle).
"""

from __future__ import annotations

from typing import Optional

#: Current schema version stamped into every saved artifact.
FORMAT_VERSION = 1


def format_mismatch(what: str, found, *, path: Optional[str] = None) -> str:
    """The one wording for a version mismatch (names the path when known)."""
    where = f" file {path!r}" if path is not None else ""
    return (
        f"{what}{where} has format {found!r}; this build reads "
        f"format {FORMAT_VERSION}"
    )


def check_format(what: str, data: dict, *, path: Optional[str] = None) -> None:
    """Raise ``ValueError`` unless ``data``'s ``format`` field is readable.

    A missing field is accepted as the legacy (pre-versioning) form of
    version 1; an explicit mismatching value is not.  Callers that know the
    file path catch the ``ValueError`` and re-raise their own error type
    with the path woven in (or pass ``path`` here directly).
    """
    found = data.get("format", FORMAT_VERSION)
    if found != FORMAT_VERSION:
        raise ValueError(format_mismatch(what, found, path=path))
