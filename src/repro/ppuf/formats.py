"""On-disk schema versioning for every PPUF persistence surface.

Every serialised artifact — the public device JSON
(:func:`repro.ppuf.io.ppuf_to_dict`), the CRP dataset wire format
(:meth:`repro.ppuf.crp.CRPDataset.to_json`) and the compiled evaluation
artifact (:func:`repro.ppuf.io.save_compiled`) — stamps the same
``"format"`` field.  Readers check it *first* and fail with one clear
message instead of erroring deep inside reconstruction when a future
format changes shape.

The packed fleet container (:mod:`repro.ppuf.pack`) is a *different*
on-disk surface with its own version line: ``format: 2`` identifies the
pack container, while the per-device headers embedded in its records stay
on the compiled-artifact schema (version 1) so a record slice rebuilds
through the exact same :meth:`CompiledDevice.from_arrays
<repro.ppuf.compiled.CompiledDevice.from_arrays>` path as a standalone
``.npz``.

This lives in its own module because :mod:`repro.ppuf.io` imports the
container modules (a constant shared the other way would be a cycle).
"""

from __future__ import annotations

from typing import Optional

#: Current schema version stamped into every saved per-device artifact.
FORMAT_VERSION = 1

#: Schema version of the packed fleet container (:mod:`repro.ppuf.pack`).
PACK_FORMAT_VERSION = 2


def format_mismatch(
    what: str, found, *, path: Optional[str] = None, expected: int = FORMAT_VERSION
) -> str:
    """The one wording for a version mismatch (names the path when known)."""
    where = f" file {path!r}" if path is not None else ""
    return (
        f"{what}{where} has format {found!r}; this build reads "
        f"format {expected}"
    )


def check_format(
    what: str,
    data: dict,
    *,
    path: Optional[str] = None,
    expected: int = FORMAT_VERSION,
) -> None:
    """Raise ``ValueError`` unless ``data``'s ``format`` field is readable.

    A missing field is accepted as the legacy (pre-versioning) form of
    ``expected``; an explicit mismatching value is not.  Callers that know
    the file path catch the ``ValueError`` and re-raise their own error
    type with the path woven in (or pass ``path`` here directly).
    """
    found = data.get("format", expected)
    if found != expected:
        raise ValueError(format_mismatch(what, found, path=path, expected=expected))
