"""Time-bounded authentication sessions.

Formalises the protocol the paper targets (after Majzoobi & Koushanfar's
time-bounded authentication, the paper's ref [9]), on top of the
prover/verifier primitives of :mod:`repro.ppuf.verification`:

1. the verifier issues a fresh random challenge;
2. the prover must return a :class:`FlowClaim` within a *deadline* derived
   from the device's execution-delay bound times a slack factor — an
   honest device holder answers in O(n) settling time, while a simulator
   pays the Ω(n²) ESG and blows the deadline;
3. the verifier checks the claim in O(n²/p) verification time;
4. rounds repeat (optionally with feedback-loop chaining) until the target
   confidence is reached.

In software both parties are simulations, so the "deadline" is evaluated
against the *modeled* times (device: Lin–Mead bound; attacker: the fitted
simulation law).  The session transcript records everything so tests and
examples can assert each decision.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import VerificationError
from repro.flow.registry import DEFAULT_ALGORITHM, SolveStats
from repro.ppuf.challenge import Challenge
from repro.ppuf.delay import lin_mead_delay_bound
from repro.ppuf.esg import ESGModel
from repro.ppuf.verification import PpufProver, PpufVerifier


@dataclass(frozen=True)
class RoundRecord:
    """One authentication round's transcript entry.

    ``algorithm`` and ``solve_stats`` come off the prover's claim: which
    registered solver produced the answer and the structured telemetry
    (phase seconds, operation counts) of that solve.
    """

    challenge: Challenge
    claim_value: float
    claim_correct: bool
    within_deadline: bool
    prover_model_seconds: float
    deadline_seconds: float
    verifier_seconds: float
    algorithm: str = DEFAULT_ALGORITHM
    solve_stats: Optional[SolveStats] = None

    @property
    def accepted(self) -> bool:
        return self.claim_correct and self.within_deadline


@dataclass
class SessionResult:
    """Outcome of an authentication session."""

    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        return bool(self.rounds) and all(r.accepted for r in self.rounds)

    @property
    def rejected_round(self) -> Optional[int]:
        for index, record in enumerate(self.rounds):
            if not record.accepted:
                return index
        return None


@dataclass
class AuthenticationSession:
    """A verifier-driven, time-bounded authentication session.

    Parameters
    ----------
    verifier:
        Holds the public model of the claimed device.
    device_delay_model:
        Callable n -> honest execution time [s]; defaults to the Lin–Mead
        bound of the verifier's technology card.
    deadline_slack:
        The prover must respond within ``slack x device_delay`` (the paper's
        time-bound argument needs slack << ESG, which holds by orders of
        magnitude at secure sizes).
    """

    verifier: PpufVerifier
    deadline_slack: float = 100.0
    device_delay_model: Optional[object] = None

    def deadline(self) -> float:
        """The per-round response deadline [s] for this device size."""
        n = self.verifier.network.crossbar.n
        if self.device_delay_model is not None:
            device_delay = float(self.device_delay_model(n))
        else:
            device_delay = lin_mead_delay_bound(
                n, self.verifier.network.tech, self.verifier.network.conditions
            )
        return self.deadline_slack * device_delay

    def run(
        self,
        prover: PpufProver,
        rng: np.random.Generator,
        *,
        rounds: int = 4,
        prover_time_model=None,
        algorithm: str = DEFAULT_ALGORITHM,
    ) -> SessionResult:
        """Run the session against an honest (device-holding) prover.

        ``prover_time_model`` maps the node count to the prover's modeled
        response time [s]; ``None`` models an honest device (the device
        delay itself, always within the deadline).  ``algorithm`` names the
        registered solver the prover answers with; each round's transcript
        records it together with the solve's :class:`SolveStats`.
        """
        from repro.ppuf.challenge import ChallengeSpace

        space = ChallengeSpace(self.verifier.network.crossbar)
        deadline = self.deadline()
        n = self.verifier.network.crossbar.n
        result = SessionResult()
        for _ in range(rounds):
            challenge = space.random(rng)
            claim = prover.answer(challenge, algorithm=algorithm)
            if prover_time_model is None:
                modeled = deadline / self.deadline_slack  # honest device
            else:
                modeled = float(prover_time_model(n))
            within = modeled <= deadline
            start = time.perf_counter()
            try:
                correct = self.verifier.verify(claim)
            except VerificationError:
                correct = False
            verifier_seconds = time.perf_counter() - start
            result.rounds.append(
                RoundRecord(
                    challenge=challenge,
                    claim_value=claim.value,
                    claim_correct=correct,
                    within_deadline=within,
                    prover_model_seconds=modeled,
                    deadline_seconds=deadline,
                    verifier_seconds=verifier_seconds,
                    algorithm=claim.algorithm,
                    solve_stats=claim.solve_stats,
                )
            )
            if not result.rounds[-1].accepted:
                break
        return result

    def run_against_simulator(
        self,
        prover: PpufProver,
        esg_model: ESGModel,
        rng: np.random.Generator,
        *,
        rounds: int = 4,
        algorithm: str = DEFAULT_ALGORITHM,
    ) -> SessionResult:
        """Run against an attacker who must *simulate* each response.

        The attacker produces correct answers (it has the public model and
        unlimited compute) but its modeled response time follows the fitted
        simulation law, so at secure sizes it misses every deadline.
        """
        return self.run(
            prover,
            rng,
            rounds=rounds,
            prover_time_model=lambda n: float(esg_model.simulation_time(n)),
            algorithm=algorithm,
        )
