"""Challenge–response pair containers and (de)serialisation.

PPUFs need no enrollment database — that is their selling point — but the
attack experiments (Fig. 10) and the protocol examples still shuttle
observed CRPs around, so a small, explicit container with a stable
dictionary form is provided.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

import numpy as np

from repro.errors import ChallengeError
from repro.ppuf.challenge import Challenge
from repro.ppuf.formats import FORMAT_VERSION, check_format


@dataclass(frozen=True)
class CRP:
    """One observed challenge–response pair."""

    challenge: Challenge
    response: int

    def __post_init__(self):
        if self.response not in (0, 1):
            raise ChallengeError(f"response must be 0 or 1, got {self.response}")

    def to_dict(self) -> Dict:
        return {
            "source": self.challenge.source,
            "sink": self.challenge.sink,
            "bits": self.challenge.bits.tolist(),
            "response": self.response,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CRP":
        challenge = Challenge(
            source=int(data["source"]),
            sink=int(data["sink"]),
            bits=np.asarray(data["bits"], dtype=np.uint8),
        )
        return cls(challenge=challenge, response=int(data["response"]))


@dataclass
class CRPDataset:
    """An ordered collection of CRPs with attack-ready matrix views."""

    crps: List[CRP] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.crps)

    def __iter__(self) -> Iterator[CRP]:
        return iter(self.crps)

    def append(self, crp: CRP) -> None:
        self.crps.append(crp)

    def features(self) -> np.ndarray:
        """(N, l²) ±1 feature matrix of the type-B control words."""
        if not self.crps:
            raise ChallengeError("dataset is empty")
        return np.stack([crp.challenge.feature_vector() for crp in self.crps])

    def labels(self) -> np.ndarray:
        """(N,) ±1 label vector of the responses."""
        if not self.crps:
            raise ChallengeError("dataset is empty")
        return np.array([crp.response * 2 - 1 for crp in self.crps], dtype=np.float64)

    def split(self, train_count: int):
        """Leading/trailing split into (train, test) datasets."""
        if not 0 < train_count < len(self.crps):
            raise ChallengeError(
                f"train_count must be in (0, {len(self.crps)}), got {train_count}"
            )
        return CRPDataset(self.crps[:train_count]), CRPDataset(self.crps[train_count:])

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": FORMAT_VERSION,
                "crps": [crp.to_dict() for crp in self.crps],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "CRPDataset":
        data = json.loads(text)
        if isinstance(data, list):  # legacy pre-versioning form: a bare list
            items = data
        else:
            check_format("CRP dataset", data)
            items = data["crps"]
        return cls([CRP.from_dict(item) for item in items])


def collect_crps(ppuf, challenges, *, engine: str = "maxflow") -> CRPDataset:
    """Evaluate a challenge list on a PPUF and package the CRPs."""
    dataset = CRPDataset()
    for challenge in challenges:
        dataset.append(CRP(challenge, ppuf.response(challenge, engine=engine)))
    return dataset
