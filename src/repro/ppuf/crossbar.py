"""Crossbar mapping of the complete graph (Section 4.1).

The chip realises vertex ``i`` as a connected pair of bars (the i-th
horizontal and i-th vertical bar).  At the intersection of vertical bar
``i`` and horizontal bar ``j`` (i ≠ j) sits one edge block conducting from
the vertical to the horizontal bar — i.e. the directed edge ``(i, j)``.

This module owns the *edge enumeration* used everywhere else: edge index
``e`` maps to ``(src[e], dst[e])`` in row-major order over ordered pairs,
and the l×l grid partition of Section 4.2 maps each edge to the challenge
bit that controls it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True)
class Crossbar:
    """Geometry of one n×n crossbar network with an l×l control grid.

    Attributes
    ----------
    n:
        Number of graph vertices (bars per orientation).
    l:
        Control-grid dimension; one type-B challenge bit drives all blocks
        inside each of the l² grid cells.
    """

    n: int
    l: int

    def __post_init__(self):
        if self.n < 2:
            raise GraphError(f"crossbar needs at least 2 nodes, got {self.n}")
        if not 1 <= self.l <= self.n:
            raise GraphError(
                f"grid dimension l must satisfy 1 <= l <= n, got l={self.l}, n={self.n}"
            )

    # ------------------------------------------------------------------
    # edge enumeration
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edge blocks: n(n-1) (no block on the bar diagonal)."""
        return self.n * (self.n - 1)

    def edge_endpoints(self):
        """Arrays ``(src, dst)`` of length ``num_edges``.

        Edge ``e`` runs from vertical bar ``src[e]`` to horizontal bar
        ``dst[e]``; ordering is row-major over ordered pairs with the
        diagonal removed.
        """
        n = self.n
        src = np.repeat(np.arange(n), n - 1)
        dst = np.concatenate([np.delete(np.arange(n), i) for i in range(n)])
        return src, dst

    def edge_index(self, u: int, v: int) -> int:
        """Index of the directed edge ``(u, v)`` in the enumeration."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise GraphError(f"edge ({u}, {v}) out of range for n={self.n}")
        if u == v:
            raise GraphError("no block exists on the bar diagonal")
        return u * (self.n - 1) + (v if v < u else v - 1)

    # ------------------------------------------------------------------
    # grid partition (Section 4.2)
    # ------------------------------------------------------------------
    @property
    def num_control_bits(self) -> int:
        """Size of a type-B challenge: l²."""
        return self.l * self.l

    def edge_cells(self) -> np.ndarray:
        """Grid-cell index (0 .. l²-1) of every edge block.

        The block at (vertical i, horizontal j) lies in grid cell
        ``(row, col) = (floor(j*l/n), floor(i*l/n))``; one control bit per
        cell (capacitor-stored bias, Section 4.2).
        """
        src, dst = self.edge_endpoints()
        rows = (dst * self.l) // self.n
        cols = (src * self.l) // self.n
        return rows * self.l + cols

    def bits_for_edges(self, control_bits: np.ndarray) -> np.ndarray:
        """Expand an l²-bit type-B challenge to one bit per edge block."""
        control_bits = np.asarray(control_bits)
        if control_bits.shape != (self.num_control_bits,):
            raise GraphError(
                f"expected {self.num_control_bits} control bits, "
                f"got shape {control_bits.shape}"
            )
        if not np.all((control_bits == 0) | (control_bits == 1)):
            raise GraphError("control bits must be 0/1")
        return control_bits[self.edge_cells()]

    # ------------------------------------------------------------------
    # physical placement
    # ------------------------------------------------------------------
    def block_positions(self) -> np.ndarray:
        """Normalised (x, y) die coordinates of each block, shape (E, 2).

        Used by the systematic-variation ablation: side-by-side placement of
        the two networks means both use the *same* coordinates, hence the
        same systematic Vt component.
        """
        src, dst = self.edge_endpoints()
        scale = 1.0 / max(self.n - 1, 1)
        return np.stack([src * scale, dst * scale], axis=1)

    def incident_edge_counts(self) -> np.ndarray:
        """Edges touching each node: 2(n-1) in the complete crossbar."""
        return np.full(self.n, 2 * (self.n - 1), dtype=np.int64)
