"""Execution–simulation gap model (Fig. 7).

The ESG at node count n is

    ESG(n) = T_sim(n) - T_exe(n),

with the simulation time following a measured power law (≥ O(n²) by the
paper's lower-bound argument; ~O(n³) for the practical solvers benchmarked
here) and the execution delay following the O(n) Lin–Mead bound.  The
feedback-loop technique of Section 3.3 multiplies both sides by the loop
count k, amplifying the gap k-fold.

:class:`ESGModel` packages the two fitted laws, evaluates the gap at any
node count, and solves for the crossover node count where the gap reaches a
security target (the paper uses 1 s, citing [4]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import SolverError


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted power law ``t(n) = coefficient * n**exponent``."""

    coefficient: float
    exponent: float

    def __call__(self, n) -> np.ndarray:
        return self.coefficient * np.power(np.asarray(n, dtype=np.float64), self.exponent)

    def scaled_to(self, n_ref: float, t_ref: float) -> "PowerLawFit":
        """Same exponent, re-anchored through the point ``(n_ref, t_ref)``.

        Used to calibrate Python-measured solver scaling onto the paper's
        C++/Xeon absolute axis.
        """
        if n_ref <= 0 or t_ref <= 0:
            raise SolverError("calibration anchor must be positive")
        return PowerLawFit(
            coefficient=t_ref / n_ref**self.exponent, exponent=self.exponent
        )


def fit_power_law(sizes: Sequence[float], times: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log t = log c + a log n``."""
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.size != times.size or sizes.size < 2:
        raise SolverError("need at least two (size, time) samples")
    if np.any(sizes <= 0) or np.any(times <= 0):
        raise SolverError("sizes and times must be positive for a log-log fit")
    exponent, log_coefficient = np.polyfit(np.log(sizes), np.log(times), 1)
    return PowerLawFit(coefficient=float(np.exp(log_coefficient)), exponent=float(exponent))


@dataclass(frozen=True)
class ESGModel:
    """Fitted simulation and execution time laws.

    Attributes
    ----------
    simulation:
        Power law for the simulation (attacker) time [s].
    execution:
        Power law for the execution delay [s].
    feedback_loops:
        Loop-count schedule k(n); ``None`` disables feedback.  The paper
        sets k = n for Fig. 7(b)'s "with feedback loop" curve.
    """

    simulation: PowerLawFit
    execution: PowerLawFit
    feedback_loops: Optional[Callable[[float], float]] = None

    def loops(self, n: float) -> float:
        if self.feedback_loops is None:
            return 1.0
        k = float(self.feedback_loops(n))
        if k < 1:
            raise SolverError(f"feedback loop count must be >= 1, got {k}")
        return k

    def simulation_time(self, n) -> np.ndarray:
        n = np.asarray(n, dtype=np.float64)
        k = np.vectorize(self.loops)(n)
        return k * self.simulation(n)

    def execution_time(self, n) -> np.ndarray:
        n = np.asarray(n, dtype=np.float64)
        k = np.vectorize(self.loops)(n)
        return k * self.execution(n)

    def esg(self, n) -> np.ndarray:
        """The gap T_sim(n) - T_exe(n) [s]."""
        return self.simulation_time(n) - self.execution_time(n)

    def with_feedback(self, loops: Callable[[float], float]) -> "ESGModel":
        """A copy with a feedback-loop schedule installed."""
        return ESGModel(
            simulation=self.simulation, execution=self.execution, feedback_loops=loops
        )

    def crossover_nodes(self, target_gap: float = 1.0) -> float:
        """Smallest (fractional) node count whose ESG reaches the target.

        Solved by bisection on the monotone region beyond the point where
        simulation overtakes execution.
        """
        if target_gap <= 0:
            raise SolverError(f"target gap must be positive, got {target_gap}")

        def gap(n: float) -> float:
            return float(self.esg(n))

        lo = 2.0
        hi = 4.0
        for _ in range(200):
            if gap(hi) >= target_gap:
                break
            hi *= 2.0
        else:
            raise SolverError("ESG never reaches the target within 2^200 nodes")
        # The gap may be negative at small n (execution slower than
        # simulation); move lo up to keep the bracket monotone.
        while gap(lo) >= target_gap and lo < hi:
            lo /= 2.0
            if lo < 1.0:
                return lo
        for _ in range(200):
            mid = math.sqrt(lo * hi)
            if gap(mid) >= target_gap:
                hi = mid
            else:
                lo = mid
            if hi / lo < 1.0 + 1e-9:
                break
        return hi
