"""Challenge encoding and the challenge space (Section 4.2).

A challenge has two parts:

* **type-A** — the source and sink node selection: ``n(n-1)`` choices;
* **type-B** — the l² control bits, one per crossbar grid cell.

For unpredictability the paper restricts type-B challenges to a code with
minimum pairwise Hamming distance d (analysed in
:mod:`repro.analysis.codes`); :class:`ChallengeSpace` provides both
unrestricted sampling and minimum-distance-respecting sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ChallengeError
from repro.ppuf.crossbar import Crossbar


@dataclass(frozen=True)
class Challenge:
    """One PPUF challenge.

    Attributes
    ----------
    source, sink:
        Type-A selection: nodes tied to V(s) and ground.
    bits:
        Type-B control word — numpy uint8 array of length l².
    """

    source: int
    sink: int
    bits: np.ndarray

    def __post_init__(self):
        bits = np.asarray(self.bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ChallengeError(f"bits must be a 1-D array, got shape {bits.shape}")
        if not np.all((bits == 0) | (bits == 1)):
            raise ChallengeError("challenge bits must be 0/1")
        if self.source == self.sink:
            raise ChallengeError("source and sink must differ")
        if self.source < 0 or self.sink < 0:
            raise ChallengeError("source/sink must be non-negative node indices")
        object.__setattr__(self, "bits", bits)

    @property
    def num_bits(self) -> int:
        return int(self.bits.size)

    def flip(self, positions) -> "Challenge":
        """Return a challenge with the given type-B bit positions flipped."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (positions.min() < 0 or positions.max() >= self.num_bits):
            raise ChallengeError("flip positions out of range")
        bits = self.bits.copy()
        bits[positions] ^= 1
        return Challenge(source=self.source, sink=self.sink, bits=bits)

    def hamming_distance(self, other: "Challenge") -> int:
        """Type-B Hamming distance to another challenge."""
        if other.num_bits != self.num_bits:
            raise ChallengeError("challenges have different control-word lengths")
        return int(np.sum(self.bits != other.bits))

    def feature_vector(self) -> np.ndarray:
        """±1 encoding of the control word for model-building attacks."""
        return self.bits.astype(np.float64) * 2.0 - 1.0

    def key(self) -> tuple:
        """Hashable identity (for dataset deduplication)."""
        return (self.source, self.sink, self.bits.tobytes())

    # ------------------------------------------------------------------
    # full input-word form (type-A terminal bits + type-B control bits)
    # ------------------------------------------------------------------
    @staticmethod
    def terminal_field_width(n: int) -> int:
        """Bits needed to encode one terminal index."""
        if n < 2:
            raise ChallengeError(f"need at least 2 nodes, got {n}")
        return max(1, (n - 1).bit_length())

    def input_word(self, n: int) -> np.ndarray:
        """The full challenge as applied at the PPUF pins.

        Layout: ``[source field | sink field | control bits]`` with binary
        (LSB-first) terminal fields.  This is the word whose Hamming
        distance Fig. 9 sweeps.
        """
        width = self.terminal_field_width(n)
        if self.source >= n or self.sink >= n:
            raise ChallengeError("terminals out of range for the given n")
        fields = []
        for value in (self.source, self.sink):
            fields.append([(value >> b) & 1 for b in range(width)])
        terminal_bits = np.asarray(fields, dtype=np.uint8).ravel()
        return np.concatenate([terminal_bits, self.bits])

    @classmethod
    def from_input_word(cls, word: np.ndarray, n: int) -> "Challenge":
        """Decode a full input word back into a challenge.

        Terminal fields decode modulo n (a flipped high bit may overflow the
        node range — the hardware decoder wraps); a source/sink collision
        resolves by advancing the sink, so every word maps to a valid
        challenge.
        """
        word = np.asarray(word, dtype=np.uint8)
        width = cls.terminal_field_width(n)
        if word.size <= 2 * width:
            raise ChallengeError("input word too short for the terminal fields")
        values = []
        for field_index in range(2):
            bits = word[field_index * width: (field_index + 1) * width]
            values.append(int(sum(int(b) << i for i, b in enumerate(bits))) % n)
        source, sink = values
        if source == sink:
            sink = (sink + 1) % n
        return cls(source=source, sink=sink, bits=word[2 * width:].copy())


@dataclass(frozen=True)
class ChallengeSpace:
    """Sampler over the challenge space of a crossbar."""

    crossbar: Crossbar

    @property
    def type_a_size(self) -> int:
        """Number of (source, sink) selections: n(n-1)."""
        return self.crossbar.n * (self.crossbar.n - 1)

    @property
    def type_b_bits(self) -> int:
        return self.crossbar.num_control_bits

    def random(
        self,
        rng: np.random.Generator,
        *,
        source: Optional[int] = None,
        sink: Optional[int] = None,
    ) -> Challenge:
        """Uniformly random challenge (optionally with pinned terminals)."""
        n = self.crossbar.n
        if source is None:
            source = int(rng.integers(n))
        if sink is None:
            sink = int(rng.integers(n - 1))
            if sink >= source:
                sink += 1
        if source == sink:
            raise ChallengeError("source and sink must differ")
        bits = rng.integers(0, 2, size=self.type_b_bits, dtype=np.uint8)
        return Challenge(source=source, sink=sink, bits=bits)

    def random_batch(
        self,
        count: int,
        rng: np.random.Generator,
        *,
        source: Optional[int] = None,
        sink: Optional[int] = None,
        unique: bool = False,
    ) -> List[Challenge]:
        """Sample ``count`` random challenges (optionally deduplicated)."""
        if count < 0:
            raise ChallengeError(f"count must be non-negative, got {count}")
        challenges: List[Challenge] = []
        seen = set()
        attempts = 0
        limit = max(count * 50, 1000)
        while len(challenges) < count:
            attempts += 1
            if attempts > limit:
                raise ChallengeError(
                    f"could not sample {count} unique challenges from a space "
                    f"of {2 ** self.type_b_bits} control words"
                )
            challenge = self.random(rng, source=source, sink=sink)
            if unique:
                key = challenge.key()
                if key in seen:
                    continue
                seen.add(key)
            challenges.append(challenge)
        return challenges

    def min_distance_codebook(
        self,
        count: int,
        min_distance: int,
        rng: np.random.Generator,
        *,
        source: int = 0,
        sink: Optional[int] = None,
        max_attempts: int = 200_000,
    ) -> List[Challenge]:
        """Greedy random codebook with pairwise type-B Hamming distance ≥ d.

        Mirrors the paper's selection of a challenge subset with minimum
        distance d; the achievable size is analysed against the
        Gilbert–Varshamov-style bound in :mod:`repro.analysis.codes`.
        """
        if min_distance < 1:
            raise ChallengeError(f"min_distance must be >= 1, got {min_distance}")
        if min_distance > self.type_b_bits:
            raise ChallengeError("min_distance cannot exceed the control-word length")
        if sink is None:
            sink = self.crossbar.n - 1
        codebook: List[Challenge] = []
        words: List[np.ndarray] = []
        for _ in range(max_attempts):
            if len(codebook) >= count:
                break
            bits = rng.integers(0, 2, size=self.type_b_bits, dtype=np.uint8)
            if words:
                distances = np.sum(np.stack(words) != bits[None, :], axis=1)
                if int(distances.min()) < min_distance:
                    continue
            words.append(bits)
            codebook.append(Challenge(source=source, sink=sink, bits=bits))
        if len(codebook) < count:
            raise ChallengeError(
                f"found only {len(codebook)}/{count} codewords at distance "
                f">= {min_distance} after {max_attempts} attempts"
            )
        return codebook
