"""Current comparator model.

The PPUF output is the sign of the difference between the two networks'
source currents.  The paper budgets a real comparator design (refs [25, 26]:
~150 µW, µA-range inputs); for the reproduction the comparator is ideal up
to a configurable input-referred *resolution* and *offset*, which is what
Fig. 8's measurability argument is about: the current difference must stay
above the resolution as the PPUF scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError


@dataclass(frozen=True)
class CurrentComparator:
    """Sign comparator with input-referred resolution and offset.

    Attributes
    ----------
    resolution:
        Smallest reliably resolvable |ΔI| [A].  Differences below it are
        still decided (by sign) but flagged unresolvable.
    offset:
        Systematic input offset [A] added to network A's current.
    power:
        Static power draw [W] (used by the energy budget of Section 5;
        default from ref [25]: 153 µW).
    """

    resolution: float = 1e-9
    offset: float = 0.0
    power: float = 153e-6
    noise_sigma: float = 0.0

    def __post_init__(self):
        if self.resolution < 0:
            raise DeviceError(f"resolution must be non-negative, got {self.resolution}")
        if self.power < 0:
            raise DeviceError(f"power must be non-negative, got {self.power}")
        if self.noise_sigma < 0:
            raise DeviceError(f"noise sigma must be non-negative, got {self.noise_sigma}")

    def compare(self, current_a: float, current_b: float) -> int:
        """Response bit: 1 when network A (plus offset) carries more current."""
        return 1 if (current_a + self.offset) > current_b else 0

    def compare_noisy(self, current_a: float, current_b: float, rng) -> int:
        """One noisy decision: input-referred Gaussian noise on ΔI.

        Models thermal/comparator noise at sample time; ``noise_sigma = 0``
        reduces to the ideal :meth:`compare`.
        """
        noise = rng.normal(0.0, self.noise_sigma) if self.noise_sigma > 0 else 0.0
        return 1 if (current_a + self.offset + noise) > current_b else 0

    def majority_decision(
        self, current_a: float, current_b: float, rng, *, votes: int = 1
    ) -> int:
        """Majority over repeated noisy decisions (the standard PUF
        reliability enhancement; odd vote counts avoid ties)."""
        if votes < 1:
            raise DeviceError(f"votes must be >= 1, got {votes}")
        total = sum(
            self.compare_noisy(current_a, current_b, rng) for _ in range(votes)
        )
        return 1 if 2 * total > votes else 0

    def flip_probability(self, current_a: float, current_b: float) -> float:
        """Analytic single-shot error probability under the noise model."""
        if self.noise_sigma == 0:
            return 0.0
        from scipy.special import erfc
        import numpy as np

        margin = abs(current_a + self.offset - current_b)
        return float(0.5 * erfc(margin / (np.sqrt(2.0) * self.noise_sigma)))

    def is_resolvable(self, current_a: float, current_b: float) -> bool:
        """Whether |ΔI| exceeds the comparator resolution."""
        return abs(current_a + self.offset - current_b) >= self.resolution
