"""Compiled evaluation artifacts: the zero-rebuild hot path.

The paper's asymmetry is that *execution* is cheap while *simulation* is
expensive — yet the simulation-side pipeline used to pay a hidden rebuild
tax before any solver ran: pool workers pickled whole devices, service
workers re-derived per-bit capacity caches per cold claim, and every CLI
invocation reconstructed :class:`~repro.ppuf.device.PpufNetwork` state
from scratch.  A :class:`CompiledDevice` removes all of it: one immutable,
versioned, serialisable artifact holding flat numpy arrays for *both*
networks —

* ``edge_src`` / ``edge_dst`` / ``edge_cells`` — the crossbar's edge
  enumeration and grid-cell mapping, precomputed;
* ``cap0`` / ``cap1`` — per-bit capacity tables, shape ``(2, E)`` (row 0 is
  network A, row 1 network B): the public max-flow model;
* optional edge I–V tables (``v_grid``, ``currents0/1``,
  ``cocontent0/1``) for the circuit engine, shape ``(2, E, G)``.

Evaluation against the artifact is pure row selection plus a solve:
:meth:`CompiledNetwork.flow_network` feeds the flat arrays straight into
:meth:`repro.flow.graph.FlowNetwork.from_arrays` with no per-edge Python
loop and no lazy derivation.  :class:`CompiledNetwork` is call-compatible
with :class:`~repro.ppuf.device.PpufNetwork` for every consumer of the
evaluation spine (:mod:`repro.ppuf.engines`,
:class:`~repro.ppuf.verification.PpufProver` /
:class:`~repro.ppuf.verification.PpufVerifier`, the batch pipeline and the
service verification workers).

For multi-process fan-out, :func:`repro.runtime.provision.share_compiled`
/ :func:`~repro.runtime.provision.attach_compiled` place the tables in
one shared-memory block so every worker *maps* them (zero-copy) instead
of receiving a pickled device; both are re-exported here for their
historical import site.

This mirrors the paper's public-model hand-off: compilation *is* the
manufacturer publishing the simulation model; everything in the artifact
is derivable from the public device description, and what remains per
challenge is exactly the solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuit.dc import solve_dc
from repro.circuit.ptm32 import OperatingConditions, Technology
from repro.circuit.table import EdgeTable
from repro.errors import ChallengeError, ReproError
from repro.flow import FlowNetwork, solve_max_flow
from repro.flow.registry import DEFAULT_ALGORITHM
from repro.ppuf.challenge import Challenge, ChallengeSpace
from repro.ppuf.comparator import CurrentComparator
from repro.ppuf.crossbar import Crossbar
from repro.ppuf.formats import FORMAT_VERSION, check_format

#: Network-name -> table-row mapping shared with the service wire format.
NETWORK_INDEX: Dict[str, int] = {"a": 0, "b": 1}

#: Array entries of a full artifact; the circuit-table ones are optional.
CAPACITY_KEYS = ("edge_src", "edge_dst", "edge_cells", "cap0", "cap1")
CIRCUIT_KEYS = ("v_grid", "currents0", "currents1", "cocontent0", "cocontent1")


def _readonly(array, dtype, shape) -> np.ndarray:
    """Validate and freeze one artifact array (immutability is the contract)."""
    out = np.ascontiguousarray(array, dtype=dtype)
    if out.shape != shape:
        raise ReproError(
            f"compiled artifact array has shape {out.shape}; expected {shape}"
        )
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class NetworkTables:
    """One network's compiled per-bit tables.

    The exchange unit between :meth:`PpufNetwork.compile
    <repro.ppuf.device.PpufNetwork.compile>` (which produces one) and
    :meth:`PpufNetwork.adopt_compiled
    <repro.ppuf.device.PpufNetwork.adopt_compiled>` (which seeds the lazy
    caches from one, skipping re-derivation).
    """

    cap0: np.ndarray
    cap1: np.ndarray
    table0: Optional[EdgeTable] = None
    table1: Optional[EdgeTable] = None


class CompiledNetwork:
    """Evaluation view of one network of a :class:`CompiledDevice`.

    Call-compatible with :class:`~repro.ppuf.device.PpufNetwork` for the
    evaluation spine: ``crossbar``, ``capacities``/``capacity_matrix``/
    ``flow_network``/``maxflow_current`` (max-flow engine),
    ``edge_table``/``circuit_current``/``dc_solution`` (circuit engine) and
    the internal ``_capacities_for_bit`` row accessor the batch pipeline
    uses.  There is no lazy state: every call is row selection + solve.
    """

    def __init__(self, device: "CompiledDevice", index: int):
        self.device = device
        self.index = index

    # -- shared geometry / metadata ------------------------------------
    @property
    def crossbar(self) -> Crossbar:
        return self.device.crossbar

    @property
    def tech(self) -> Technology:
        return self.device.tech

    @property
    def conditions(self) -> OperatingConditions:
        return self.device.conditions

    # -- max-flow engine -----------------------------------------------
    def _capacities_for_bit(self, bit: int) -> np.ndarray:
        table = self.device.cap1 if bit else self.device.cap0
        return table[self.index]

    def capacities(self, edge_bits: np.ndarray) -> np.ndarray:
        """Per-edge capacities under a bit vector (pure row selection)."""
        edge_bits = np.asarray(edge_bits)
        if edge_bits.shape != (self.device.num_edges,):
            raise ChallengeError(
                f"expected {self.device.num_edges} edge bits, got {edge_bits.shape}"
            )
        return np.where(
            edge_bits == 1, self._capacities_for_bit(1), self._capacities_for_bit(0)
        )

    def capacity_matrix(self, edge_bits: np.ndarray) -> np.ndarray:
        matrix = np.zeros((self.device.n, self.device.n))
        matrix[self.device.edge_src, self.device.edge_dst] = self.capacities(edge_bits)
        return matrix

    def flow_network(self, edge_bits: np.ndarray) -> FlowNetwork:
        """The public max-flow instance, built through the array fast path."""
        return FlowNetwork.from_arrays(
            self.device.n,
            self.device.edge_src,
            self.device.edge_dst,
            self.capacities(edge_bits),
        )

    def maxflow_current(
        self,
        edge_bits: np.ndarray,
        source: int,
        sink: int,
        *,
        algorithm: str = DEFAULT_ALGORITHM,
        stats=None,
    ) -> float:
        network = self.flow_network(edge_bits)
        result = solve_max_flow(network, source, sink, algorithm=algorithm, stats=stats)
        return result.value

    # -- circuit engine ------------------------------------------------
    def _table_for_bit(self, bit: int) -> EdgeTable:
        if not self.device.has_circuit_tables:
            raise ReproError(
                "compiled artifact carries no circuit I-V tables "
                "(compiled with include_circuit=False)"
            )
        which = 1 if bit else 0
        return EdgeTable(
            v_grid=self.device.v_grid,
            currents=(self.device.currents1 if which else self.device.currents0)[
                self.index
            ],
            cocontent=(self.device.cocontent1 if which else self.device.cocontent0)[
                self.index
            ],
        )

    def edge_table(self, edge_bits: np.ndarray) -> EdgeTable:
        """Per-challenge I–V table assembled by row selection."""
        edge_bits = np.asarray(edge_bits)
        if edge_bits.shape != (self.device.num_edges,):
            raise ChallengeError(
                f"expected {self.device.num_edges} edge bits, got {edge_bits.shape}"
            )
        table0 = self._table_for_bit(0)
        table1 = self._table_for_bit(1)
        select = (edge_bits == 1)[:, None]
        return EdgeTable(
            v_grid=table0.v_grid,
            currents=np.where(select, table1.currents, table0.currents),
            cocontent=np.where(select, table1.cocontent, table0.cocontent),
        )

    def circuit_current(self, edge_bits: np.ndarray, source: int, sink: int) -> float:
        solution = self.dc_solution(edge_bits, source, sink)
        return solution.source_current

    def dc_solution(self, edge_bits: np.ndarray, source: int, sink: int):
        table = self.edge_table(edge_bits)
        return solve_dc(
            self.device.n,
            self.device.edge_src,
            self.device.edge_dst,
            table,
            source=source,
            sink=sink,
            v_supply=self.device.v_supply,
        )

    # -- interop with PpufNetwork.adopt_compiled ------------------------
    def tables(self) -> NetworkTables:
        """This network's tables in the :class:`NetworkTables` exchange form."""
        circuit = self.device.has_circuit_tables
        return NetworkTables(
            cap0=self._capacities_for_bit(0),
            cap1=self._capacities_for_bit(1),
            table0=self._table_for_bit(0) if circuit else None,
            table1=self._table_for_bit(1) if circuit else None,
        )


class CompiledDevice:
    """An immutable, versioned, serialisable PPUF evaluation artifact.

    Build one with :meth:`repro.ppuf.device.Ppuf.compile` (or
    :func:`compile_ppuf`), persist it with
    :func:`repro.ppuf.io.save_compiled` /
    :func:`repro.ppuf.io.load_compiled`, evaluate through
    :meth:`response` / :meth:`responses` or hand it to
    :class:`~repro.ppuf.batch.BatchEvaluator` and the service layer.

    All arrays are read-only; the artifact never mutates after
    construction.  Pickling drops the three index arrays (they are
    recomputed from ``(n, l)`` on unpickle), so a capacity-only artifact
    ships to pool workers in a few kilobytes.
    """

    def __init__(
        self,
        *,
        n: int,
        l: int,
        cap0: np.ndarray,
        cap1: np.ndarray,
        comparator_offset: float = 0.0,
        v_supply: float = 0.0,
        device_id: str = "",
        technology: Optional[dict] = None,
        conditions: Optional[dict] = None,
        v_grid: Optional[np.ndarray] = None,
        currents0: Optional[np.ndarray] = None,
        currents1: Optional[np.ndarray] = None,
        cocontent0: Optional[np.ndarray] = None,
        cocontent1: Optional[np.ndarray] = None,
    ):
        self.crossbar = Crossbar(n=int(n), l=int(l))
        edges = self.crossbar.num_edges
        src, dst = self.crossbar.edge_endpoints()
        self.edge_src = _readonly(src, np.int64, (edges,))
        self.edge_dst = _readonly(dst, np.int64, (edges,))
        self.edge_cells = _readonly(self.crossbar.edge_cells(), np.int64, (edges,))
        self.cap0 = _readonly(cap0, np.float64, (2, edges))
        self.cap1 = _readonly(cap1, np.float64, (2, edges))
        self.comparator = CurrentComparator(offset=float(comparator_offset))
        self.v_supply = float(v_supply)
        self.device_id = str(device_id)
        self.technology = dict(technology) if technology else {}
        self.conditions_dict = dict(conditions) if conditions else {}

        circuit = [v_grid, currents0, currents1, cocontent0, cocontent1]
        if any(entry is None for entry in circuit) and not all(
            entry is None for entry in circuit
        ):
            raise ReproError(
                "compiled artifact needs all five circuit-table arrays or none"
            )
        if v_grid is None:
            self.v_grid = None
            self.currents0 = self.currents1 = None
            self.cocontent0 = self.cocontent1 = None
        else:
            grid = np.ascontiguousarray(v_grid, dtype=np.float64)
            shape = (2, edges, grid.size)
            self.v_grid = _readonly(grid, np.float64, grid.shape)
            self.currents0 = _readonly(currents0, np.float64, shape)
            self.currents1 = _readonly(currents1, np.float64, shape)
            self.cocontent0 = _readonly(cocontent0, np.float64, shape)
            self.cocontent1 = _readonly(cocontent1, np.float64, shape)
        self._networks = (CompiledNetwork(self, 0), CompiledNetwork(self, 1))

    # ------------------------------------------------------------------
    # geometry / metadata
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.crossbar.n

    @property
    def l(self) -> int:
        return self.crossbar.l

    @property
    def num_edges(self) -> int:
        return self.crossbar.num_edges

    @property
    def has_circuit_tables(self) -> bool:
        return self.v_grid is not None

    @property
    def tech(self) -> Technology:
        if not self.technology:
            raise ReproError("compiled artifact carries no technology card")
        return Technology(**self.technology)

    @property
    def conditions(self) -> OperatingConditions:
        if not self.conditions_dict:
            raise ReproError("compiled artifact carries no operating conditions")
        return OperatingConditions(**self.conditions_dict)

    def csr(self):
        """The shared :class:`~repro.flow.csr.CsrTopology` view of this device.

        Every crossbar device of size ``n`` solves max-flow on the same
        complete directed graph — only the per-edge capacity rows differ —
        so the CSR view is a pure function of ``n`` served from the
        module-level :func:`~repro.flow.csr.complete_topology` cache: built
        once per size, shared across devices, pack reloads and pool workers
        (nothing is pickled; a worker's first call rebuilds from ``n``).
        The edge order matches ``edge_src``/``edge_dst``, so ``cap0``/
        ``cap1`` rows index the topology's forward arcs directly.
        """
        from repro.flow.csr import complete_topology

        return complete_topology(self.n)

    def network(self, which) -> CompiledNetwork:
        """The evaluation view for network ``"a"``/``"b"`` (or index 0/1)."""
        if isinstance(which, str):
            if which not in NETWORK_INDEX:
                raise ReproError(f"unknown network {which!r}; expected 'a' or 'b'")
            which = NETWORK_INDEX[which]
        return self._networks[which]

    @property
    def network_a(self) -> CompiledNetwork:
        return self._networks[0]

    @property
    def network_b(self) -> CompiledNetwork:
        return self._networks[1]

    def challenge_space(self) -> ChallengeSpace:
        return ChallengeSpace(self.crossbar)

    # ------------------------------------------------------------------
    # evaluation (mirrors Ppuf)
    # ------------------------------------------------------------------
    def currents(
        self,
        challenge: Challenge,
        *,
        engine: str = "maxflow",
        algorithm: str = DEFAULT_ALGORITHM,
        stats=None,
    ) -> Tuple[float, float]:
        """Source currents of the two networks (same contract as ``Ppuf``)."""
        from repro.ppuf.engines import network_current

        self._check_challenge(challenge)
        return (
            network_current(
                self._networks[0], challenge, engine, algorithm=algorithm, stats=stats
            ),
            network_current(
                self._networks[1], challenge, engine, algorithm=algorithm, stats=stats
            ),
        )

    def response(
        self,
        challenge: Challenge,
        *,
        engine: str = "maxflow",
        algorithm: str = DEFAULT_ALGORITHM,
        stats=None,
    ) -> int:
        current_a, current_b = self.currents(
            challenge, engine=engine, algorithm=algorithm, stats=stats
        )
        return self.comparator.compare(current_a, current_b)

    def response_bits(
        self,
        challenges,
        *,
        engine: str = "maxflow",
        algorithm: str = DEFAULT_ALGORITHM,
        stats=None,
    ) -> np.ndarray:
        return np.array(
            [
                self.response(c, engine=engine, algorithm=algorithm, stats=stats)
                for c in challenges
            ],
            dtype=np.uint8,
        )

    def responses(
        self,
        challenges,
        *,
        engine: str = "maxflow",
        algorithm: str = "batched_dinic",
        workers: int = 1,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Batched response bits through :class:`~repro.ppuf.batch.BatchEvaluator`."""
        from repro.ppuf.batch import BatchEvaluator

        evaluator = BatchEvaluator(
            self,
            engine=engine,
            algorithm=algorithm,
            workers=workers,
            chunk_size=chunk_size,
        )
        bits, _ = evaluator.evaluate(challenges)
        return bits

    def _check_challenge(self, challenge: Challenge) -> None:
        if challenge.num_bits != self.crossbar.num_control_bits:
            raise ChallengeError(
                f"challenge carries {challenge.num_bits} control bits; this "
                f"PPUF expects {self.crossbar.num_control_bits}"
            )
        if not (0 <= challenge.source < self.n and 0 <= challenge.sink < self.n):
            raise ChallengeError("challenge terminals out of node range")

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def header(self) -> dict:
        """The JSON header persisted next to the arrays (npz / shm manifest)."""
        return {
            "format": FORMAT_VERSION,
            "n": self.n,
            "l": self.l,
            "comparator_offset": self.comparator.offset,
            "v_supply": self.v_supply,
            "device_id": self.device_id,
            "technology": self.technology,
            "conditions": self.conditions_dict,
            "circuit_tables": self.has_circuit_tables,
        }

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """All artifact arrays keyed by their canonical entry names."""
        arrays = {key: getattr(self, key) for key in CAPACITY_KEYS}
        if self.has_circuit_tables:
            arrays.update({key: getattr(self, key) for key in CIRCUIT_KEYS})
        return arrays

    @classmethod
    def from_arrays(cls, header: dict, arrays: Dict[str, np.ndarray]) -> "CompiledDevice":
        """Rebuild an artifact from its header + array entries."""
        try:
            check_format("compiled PPUF artifact", header)
        except ValueError as error:
            raise ReproError(str(error)) from None
        try:
            circuit = {
                key: arrays[key] for key in CIRCUIT_KEYS if header.get("circuit_tables")
            }
            return cls(
                n=int(header["n"]),
                l=int(header["l"]),
                cap0=arrays["cap0"],
                cap1=arrays["cap1"],
                comparator_offset=float(header.get("comparator_offset", 0.0)),
                v_supply=float(header.get("v_supply", 0.0)),
                device_id=str(header.get("device_id", "")),
                technology=header.get("technology"),
                conditions=header.get("conditions"),
                **circuit,
            )
        except KeyError as error:
            raise ReproError(
                f"compiled artifact is missing entry {error.args[0]!r}"
            ) from error

    def __getstate__(self) -> dict:
        # The index arrays are pure functions of (n, l) — rebuilding them on
        # unpickle is cheaper than shipping them to every pool worker.
        state = self.__dict__.copy()
        for key in ("edge_src", "edge_dst", "edge_cells", "_networks"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        crossbar = self.crossbar
        edges = crossbar.num_edges
        src, dst = crossbar.edge_endpoints()
        self.edge_src = _readonly(src, np.int64, (edges,))
        self.edge_dst = _readonly(dst, np.int64, (edges,))
        self.edge_cells = _readonly(crossbar.edge_cells(), np.int64, (edges,))
        self._networks = (CompiledNetwork(self, 0), CompiledNetwork(self, 1))


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def compile_ppuf(
    ppuf,
    *,
    include_circuit: bool = True,
    device_id: Optional[str] = None,
) -> CompiledDevice:
    """Compile a :class:`~repro.ppuf.device.Ppuf` into a :class:`CompiledDevice`.

    Reads through the device's lazy per-bit caches (so compiling a warmed
    device copies nothing) and stacks both networks' tables into the flat
    artifact arrays.  ``include_circuit=False`` skips the I–V table build —
    the right choice for verification-only consumers (the service), whose
    residual-graph check needs only the capacities.

    ``device_id`` defaults to the content-derived id of the device's public
    description, tying the artifact to its source silicon.
    """
    import dataclasses

    from repro.ppuf.io import ppuf_to_dict
    from repro.service.registry import device_id_for

    networks = (ppuf.network_a, ppuf.network_b)
    tables = [net.compile(include_circuit=include_circuit) for net in networks]
    circuit: dict = {}
    if include_circuit:
        grids = [t.table0.v_grid for t in tables] + [t.table1.v_grid for t in tables]
        for grid in grids[1:]:
            if not np.array_equal(grid, grids[0]):
                raise ReproError(
                    "networks tabulate on different voltage grids; cannot compile"
                )
        circuit = {
            "v_grid": grids[0],
            "currents0": np.stack([t.table0.currents for t in tables]),
            "currents1": np.stack([t.table1.currents for t in tables]),
            "cocontent0": np.stack([t.table0.cocontent for t in tables]),
            "cocontent1": np.stack([t.table1.cocontent for t in tables]),
        }
    if device_id is None:
        device_id = device_id_for(ppuf_to_dict(ppuf))
    reference = ppuf.network_a
    return CompiledDevice(
        n=ppuf.n,
        l=ppuf.l,
        cap0=np.stack([t.cap0 for t in tables]),
        cap1=np.stack([t.cap1 for t in tables]),
        comparator_offset=ppuf.comparator.offset,
        v_supply=reference.conditions.v_supply,
        device_id=device_id,
        technology=dataclasses.asdict(reference.tech),
        conditions=dataclasses.asdict(reference.conditions),
        **circuit,
    )


# ----------------------------------------------------------------------
# shm transport — moved to repro.runtime.provision, the one module
# allowed to touch the shm machinery (CI greps).  Re-exported here (at
# the bottom, once CompiledDevice exists, because provision's attach
# path imports it back) for the historical import site.
# ----------------------------------------------------------------------
from repro.runtime.provision import (  # noqa: E402
    attach_compiled,
    share_compiled,
)

__all__ = [
    "CAPACITY_KEYS",
    "CIRCUIT_KEYS",
    "NETWORK_INDEX",
    "CompiledDevice",
    "CompiledNetwork",
    "NetworkTables",
    "attach_compiled",
    "compile_ppuf",
    "share_compiled",
]
