"""Batched CRP evaluation: challenge matrix in, response vector out.

:meth:`repro.ppuf.device.Ppuf.response` pays a full Python round trip per
challenge — edge-bit expansion, a fresh :class:`FlowNetwork`, a solver run,
a comparator call.  The attack experiments consume thousands of CRPs per
run and the protocol examples serve many verifiers at once, so this module
turns the loop inside out:

* capacities for *all* challenges of a chunk are assembled into one
  ``(2·C, n, n)`` tensor (network A rows first, then network B), reusing
  the per-bit capacity caches of :class:`~repro.ppuf.device.PpufNetwork`
  and a preallocated capacity/residual buffer pair across chunks;
* the default ``"batched"`` algorithm hands the whole tensor to
  :func:`repro.flow.batched.batched_max_flow`, which advances every
  instance in lockstep with vectorised wavefronts;
* naming an exact per-instance solver (``"dinic"``, ``"push_relabel"``,
  …) instead evaluates challenges one at a time with the same arithmetic
  as the sequential path — bit-for-bit identical to looping
  :meth:`~repro.ppuf.device.Ppuf.response` — while still skipping the
  per-challenge object churn;
* ``workers > 1`` fans chunks out over a :class:`ProcessPoolExecutor`;
  chunk results are reassembled in submission order, and because no
  arithmetic couples challenges, the response bits are independent of the
  worker count and chunking.

The ``"batched"`` solver reaches the same max-flow values as the exact
solvers up to float rounding (the value is unique; only the augmentation
order differs).  Comparator margins are astronomically larger than one
ulp, so response bits agree — the equivalence test suite pins this.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.flow import SOLVERS, FlowNetwork, batched_max_flow, blocking_flow
from repro.flow.instrument import StageTimer
from repro.ppuf.challenge import Challenge
from repro.ppuf.engines import check_engine

#: The cross-challenge vectorised solver (see :mod:`repro.flow.batched`).
BATCHED_ALGORITHM = "batched"

#: Default number of challenges per solver chunk.  Bounds the dense tensor
#: at ``2 * 256 * n²`` floats and gives the process pool units of work.
DEFAULT_CHUNK_SIZE = 256


@dataclass
class BatchReport:
    """Structured accounting of one batched evaluation.

    Benchmarks and the protocol experiments read this instead of timing
    around the call themselves.

    Attributes
    ----------
    challenges:
        Number of challenges evaluated.
    engine, algorithm, workers, chunks:
        Pipeline configuration actually used.
    prepare_seconds, solve_seconds, compare_seconds:
        Accumulated per-stage wall clock (summed across chunks; with
        ``workers > 1`` chunks overlap, so stage sums can exceed
        ``total_seconds``).
    total_seconds:
        End-to-end wall clock of :meth:`BatchEvaluator.evaluate`.
    solver_stats:
        Operation counts merged across all solves (keys depend on the
        algorithm, e.g. ``rounds``/``augmentations``/``bfs_edge_visits``).
    """

    challenges: int
    engine: str
    algorithm: str
    workers: int
    chunks: int
    prepare_seconds: float = 0.0
    solve_seconds: float = 0.0
    compare_seconds: float = 0.0
    total_seconds: float = 0.0
    solver_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Challenges evaluated per wall-clock second."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.challenges / self.total_seconds


class BatchEvaluator:
    """Reusable batched response pipeline for one PPUF.

    Parameters
    ----------
    ppuf:
        The :class:`~repro.ppuf.device.Ppuf` to evaluate.
    engine:
        ``"maxflow"`` (default) or ``"circuit"``.
    algorithm:
        ``"batched"`` (default, maxflow engine only) or any exact solver
        name from :data:`repro.flow.SOLVERS`.
    workers:
        Process count; 1 evaluates inline.
    chunk_size:
        Challenges per solver chunk (default :data:`DEFAULT_CHUNK_SIZE`).
    """

    def __init__(
        self,
        ppuf,
        *,
        engine: str = "maxflow",
        algorithm: str = BATCHED_ALGORITHM,
        workers: int = 1,
        chunk_size: Optional[int] = None,
    ):
        check_engine(engine)
        if algorithm != BATCHED_ALGORITHM and algorithm not in SOLVERS:
            known = ", ".join([BATCHED_ALGORITHM] + sorted(SOLVERS))
            raise SolverError(
                f"unknown algorithm {algorithm!r}; expected one of {known}"
            )
        if workers < 1:
            raise SolverError(f"workers must be >= 1, got {workers}")
        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        if chunk_size < 1:
            raise SolverError(f"chunk_size must be >= 1, got {chunk_size}")
        self.ppuf = ppuf
        self.engine = engine
        self.algorithm = algorithm
        self.workers = int(workers)
        self.chunk_size = int(chunk_size)
        crossbar = ppuf.crossbar
        self._cells = crossbar.edge_cells()
        self._edge_src, self._edge_dst = crossbar.edge_endpoints()
        # Dense capacity/residual buffers, allocated once and reused for
        # every full-size chunk this evaluator sees.
        self._capacity_buffer: Optional[np.ndarray] = None
        self._residual_buffer: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(
        self, challenges: Sequence[Challenge]
    ) -> Tuple[np.ndarray, BatchReport]:
        """Evaluate a challenge batch; returns ``(bits, report)``.

        ``bits`` is a uint8 vector aligned with the input order.
        """
        started = time.perf_counter()
        challenges = list(challenges)
        for challenge in challenges:
            self.ppuf._check_challenge(challenge)
        chunks = [
            challenges[i: i + self.chunk_size]
            for i in range(0, len(challenges), self.chunk_size)
        ]
        if not chunks:
            report = BatchReport(
                challenges=0,
                engine=self.engine,
                algorithm=self.algorithm,
                workers=self.workers,
                chunks=0,
                total_seconds=time.perf_counter() - started,
            )
            return np.zeros(0, dtype=np.uint8), report

        if self.workers == 1 or len(chunks) == 1:
            outcomes = [self._evaluate_chunk(chunk) for chunk in chunks]
            workers_used = 1
        else:
            workers_used = min(self.workers, len(chunks))
            with ProcessPoolExecutor(
                max_workers=workers_used,
                initializer=_worker_init,
                initargs=(
                    self.ppuf,
                    self.engine,
                    self.algorithm,
                    self.chunk_size,
                ),
            ) as pool:
                # Executor.map preserves submission order, so the result
                # vector is deterministic regardless of completion order.
                outcomes = list(pool.map(_worker_chunk, chunks))

        bits = np.concatenate([chunk_bits for chunk_bits, _, _ in outcomes])
        report = BatchReport(
            challenges=len(challenges),
            engine=self.engine,
            algorithm=self.algorithm,
            workers=workers_used,
            chunks=len(chunks),
            total_seconds=time.perf_counter() - started,
        )
        for _, seconds, stats in outcomes:
            report.prepare_seconds += seconds.get("prepare", 0.0)
            report.solve_seconds += seconds.get("solve", 0.0)
            report.compare_seconds += seconds.get("compare", 0.0)
            for key, value in stats.items():
                report.solver_stats[key] = report.solver_stats.get(key, 0) + value
        return bits, report

    # ------------------------------------------------------------------
    # chunk evaluation (also runs inside pool workers)
    # ------------------------------------------------------------------
    def _evaluate_chunk(
        self, challenges: List[Challenge]
    ) -> Tuple[np.ndarray, Dict[str, float], Dict[str, int]]:
        if self.engine == "circuit":
            return self._evaluate_chunk_circuit(challenges)
        return self._evaluate_chunk_maxflow(challenges)

    def _buffers(self, instances: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the reusable dense buffers sized for this chunk."""
        capacity = self._capacity_buffer
        if capacity is None or capacity.shape[0] < instances or capacity.shape[1] != n:
            size = max(instances, 2 * self.chunk_size)
            self._capacity_buffer = np.zeros((size, n, n), dtype=np.float64)
            self._residual_buffer = np.empty((size, n, n), dtype=np.float64)
            capacity = self._capacity_buffer
        return capacity[:instances], self._residual_buffer[:instances]

    def _evaluate_chunk_maxflow(self, challenges):
        timer = StageTimer()
        ppuf = self.ppuf
        n = ppuf.n
        count = len(challenges)
        src, dst = self._edge_src, self._edge_dst
        with timer.stage("prepare"):
            capacity, residual = self._buffers(2 * count, n)
            terminals = np.empty((2, 2 * count), dtype=np.int64)
            per_bit = [
                (
                    network._capacities_for_bit(0),
                    network._capacities_for_bit(1),
                )
                for network in (ppuf.network_a, ppuf.network_b)
            ]
            for index, challenge in enumerate(challenges):
                # Same selection arithmetic as Crossbar.bits_for_edges +
                # PpufNetwork.capacities, minus the per-call validation.
                choose = challenge.bits[self._cells] == 1
                terminals[0, index] = terminals[0, index + count] = challenge.source
                terminals[1, index] = terminals[1, index + count] = challenge.sink
                for half, (cap0, cap1) in enumerate(per_bit):
                    capacity[index + half * count, src, dst] = np.where(
                        choose, cap1, cap0
                    )
        stats: Dict[str, int] = {}
        if self.algorithm == BATCHED_ALGORITHM:
            with timer.stage("solve"):
                result = batched_max_flow(
                    capacity, terminals[0], terminals[1], residual_out=residual
                )
                values = result.values
                stats = result.stats
        else:
            values = np.empty(2 * count, dtype=np.float64)
            with timer.stage("solve"):
                for row in range(2 * count):
                    values[row] = self._solve_single(
                        capacity[row],
                        residual[row],
                        int(terminals[0, row]),
                        int(terminals[1, row]),
                        stats,
                    )
        with timer.stage("compare"):
            comparator = ppuf.comparator
            bits = (
                (values[:count] + comparator.offset) > values[count:]
            ).astype(np.uint8)
        return bits, timer.seconds, stats

    def _solve_single(self, capacity, residual, source, sink, stats):
        """One exact solve, arithmetic-identical to the sequential path."""
        if self.algorithm == "dinic":
            np.copyto(residual, capacity)
            run = blocking_flow(residual, source, sink)
            flow = np.clip(capacity - residual, 0.0, capacity)
            value = float(flow[source].sum() - flow[:, source].sum())
        else:
            network = FlowNetwork.from_capacity_matrix(capacity)
            result = SOLVERS[self.algorithm](network, source, sink)
            run = result.stats
            value = result.value
        for key, count in run.items():
            stats[key] = stats.get(key, 0) + int(count)
        return value

    def _evaluate_chunk_circuit(self, challenges):
        timer = StageTimer()
        ppuf = self.ppuf
        count = len(challenges)
        currents = np.empty((2, count), dtype=np.float64)
        with timer.stage("solve"):
            for index, challenge in enumerate(challenges):
                edge_bits = challenge.bits[self._cells]
                for half, network in enumerate((ppuf.network_a, ppuf.network_b)):
                    currents[half, index] = network.circuit_current(
                        edge_bits, challenge.source, challenge.sink
                    )
        with timer.stage("compare"):
            comparator = ppuf.comparator
            bits = ((currents[0] + comparator.offset) > currents[1]).astype(np.uint8)
        return bits, timer.seconds, {"dc_solves": 2 * count}


# ----------------------------------------------------------------------
# process-pool plumbing (module level so the pool can pickle it)
# ----------------------------------------------------------------------
_WORKER_EVALUATOR: Optional[BatchEvaluator] = None


def _worker_init(ppuf, engine, algorithm, chunk_size):
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = BatchEvaluator(
        ppuf,
        engine=engine,
        algorithm=algorithm,
        workers=1,
        chunk_size=chunk_size,
    )


def _worker_chunk(challenges):
    return _WORKER_EVALUATOR._evaluate_chunk(challenges)
