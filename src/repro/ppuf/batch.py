"""Batched CRP evaluation: challenge matrix in, response vector out.

:meth:`repro.ppuf.device.Ppuf.response` pays a full Python round trip per
challenge — edge-bit expansion, a fresh :class:`FlowNetwork`, a solver run,
a comparator call.  The attack experiments consume thousands of CRPs per
run and the protocol examples serve many verifiers at once, so this module
turns the loop inside out:

* capacities for *all* challenges of a chunk are assembled into one
  capacity table (network A rows first, then network B), reusing the
  per-bit capacity caches of :class:`~repro.ppuf.device.PpufNetwork` and a
  preallocated capacity/residual buffer pair across chunks.  The shape of
  that table follows the solver's tensor capability: an *edge-array*
  solver (:attr:`~repro.flow.registry.SolverSpec.tensor_edge_fn`, the
  default ``"batched_dinic"``) gets a ``(2·C, E)`` table over the shared
  :class:`~repro.flow.csr.CsrTopology` — one vectorised ``np.where`` per
  network, no dense ``(2·C, n, n)`` stack and no per-challenge Python
  loop — while a *dense* tensor solver
  (:attr:`~repro.flow.registry.SolverSpec.tensor_fn`, e.g. ``"batched"``)
  still gets the classic dense stack;
* any other registered *exact* solver is run one instance at a time
  through :meth:`~repro.flow.registry.SolverSpec.solve_matrix` —
  bit-for-bit identical to looping
  :meth:`~repro.ppuf.device.Ppuf.response` — still skipping the
  per-challenge object churn;
* ``workers > 1`` fans chunks out over a supervised
  :class:`~repro.runtime.pool.WorkerPool` (bounded in-flight window,
  crash supervision, merged :class:`~repro.runtime.stats.RuntimeStats`).
  The device ships to workers as a :class:`~repro.ppuf.compiled.CompiledDevice`
  placed in one shared-memory block by
  :func:`repro.runtime.provision.ship_compiled`: each worker *maps* the
  per-bit capacity / I–V tables (zero copies, one small manifest pickle)
  instead of receiving a full device pickle and re-deriving the caches.
  Pass ``share_memory=False`` to fall back to pickling (the benchmark
  baseline).  Chunk results are reassembled in submission order, and
  because no arithmetic couples challenges, the response bits are
  independent of the worker count and chunking.  Empty and single-chunk
  inputs short-circuit inline — no pool is ever spawned for them.

Every chunk fills one :class:`~repro.flow.registry.SolveStats` (phases
``prepare``/``solve``/``compare`` plus the solver's operation counts);
:class:`BatchReport` merges them into the single telemetry record its
consumers — benchmarks, protocol experiments, the service — read.

The ``"batched_dinic"`` and ``"batched"`` solvers reach the same max-flow
values as the exact solvers up to float rounding (the value is unique;
only the augmentation order differs).  Comparator margins are
astronomically larger than one ulp, so response bits agree — the
equivalence test suite pins this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.flow.csr import complete_topology
from repro.flow.registry import SolveStats, get_solver
from repro.ppuf.challenge import Challenge
from repro.ppuf.compiled import CompiledDevice
from repro.ppuf.engines import check_engine
from repro.runtime.pool import WorkerPool
from repro.runtime.provision import (
    ShippedArtifact,
    materialise_payload,
    ship_compiled,
)

#: The cross-challenge vectorised solver: edge-array batched Dinic
#: (see :mod:`repro.flow.batched_dinic`).  The dense lockstep
#: Edmonds–Karp remains registered as ``"batched"``.
BATCHED_ALGORITHM = "batched_dinic"

#: Default number of challenges per solver chunk.  Bounds the dense tensor
#: at ``2 * 256 * n²`` floats and gives the process pool units of work.
DEFAULT_CHUNK_SIZE = 256


@dataclass
class BatchReport:
    """Structured accounting of one batched evaluation.

    Benchmarks and the protocol experiments read this instead of timing
    around the call themselves.

    Attributes
    ----------
    challenges:
        Number of challenges evaluated.
    engine, algorithm, workers, chunks:
        Pipeline configuration actually used.
    stats:
        The merged :class:`~repro.flow.registry.SolveStats` across all
        chunks: per-phase seconds (``prepare``/``solve``/``compare``) and
        the solver's operation counts.  ``stats.total_seconds`` is the
        end-to-end wall clock of :meth:`BatchEvaluator.evaluate`; with
        ``workers > 1`` chunks overlap, so the phase sum can exceed it.

    ``prepare_seconds``/``solve_seconds``/``compare_seconds``/
    ``total_seconds``/``solver_stats`` are views into ``stats`` kept for
    earlier consumers of this report.
    """

    challenges: int
    engine: str
    algorithm: str
    workers: int
    chunks: int
    stats: SolveStats = field(default_factory=SolveStats)

    @property
    def prepare_seconds(self) -> float:
        return self.stats.phase_seconds.get("prepare", 0.0)

    @property
    def solve_seconds(self) -> float:
        return self.stats.phase_seconds.get("solve", 0.0)

    @property
    def compare_seconds(self) -> float:
        return self.stats.phase_seconds.get("compare", 0.0)

    @property
    def total_seconds(self) -> float:
        return self.stats.total_seconds

    @total_seconds.setter
    def total_seconds(self, value: float) -> None:
        self.stats.total_seconds = float(value)

    @property
    def solver_stats(self) -> Dict[str, int]:
        return self.stats.counters

    @property
    def throughput(self) -> float:
        """Challenges evaluated per wall-clock second."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.challenges / self.total_seconds


class BatchEvaluator:
    """Reusable batched response pipeline for one PPUF.

    Parameters
    ----------
    ppuf:
        The device to evaluate: a :class:`~repro.ppuf.device.Ppuf` or a
        :class:`~repro.ppuf.compiled.CompiledDevice` (both expose the same
        evaluation surface).
    engine:
        ``"maxflow"`` (default) or ``"circuit"``.
    algorithm:
        Any registered *exact* solver name (``repro solvers`` lists them);
        the default ``"batched_dinic"`` uses the edge-array tensor fast
        path, ``"batched"`` the dense lockstep one.
    workers:
        Process count; 1 evaluates inline.
    chunk_size:
        Challenges per solver chunk (default :data:`DEFAULT_CHUNK_SIZE`).
    share_memory:
        With ``workers > 1``, ship the device to pool workers as a
        compiled artifact in shared memory (default).  ``False`` pickles
        the device to every worker instead — the legacy transport, kept
        for comparison benchmarks.
    """

    def __init__(
        self,
        ppuf,
        *,
        engine: str = "maxflow",
        algorithm: str = BATCHED_ALGORITHM,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        share_memory: bool = True,
    ):
        check_engine(engine)
        spec = get_solver(algorithm)
        if not spec.exact:
            raise SolverError(
                f"algorithm {algorithm!r} is {spec.kind}; the batch pipeline "
                "needs an exact solver"
            )
        if workers < 1:
            raise SolverError(f"workers must be >= 1, got {workers}")
        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        if chunk_size < 1:
            raise SolverError(f"chunk_size must be >= 1, got {chunk_size}")
        self.ppuf = ppuf
        self.engine = engine
        self.algorithm = algorithm
        self._spec = spec
        self.workers = int(workers)
        self.chunk_size = int(chunk_size)
        self.share_memory = bool(share_memory)
        self._compiled: Optional[CompiledDevice] = (
            ppuf if isinstance(ppuf, CompiledDevice) else None
        )
        crossbar = ppuf.crossbar
        self._cells = crossbar.edge_cells()
        self._edge_src, self._edge_dst = crossbar.edge_endpoints()
        # Shared CSR view of the crossbar's complete-graph edge set; the
        # module-level cache makes every same-size evaluator (and every
        # pool worker) reuse one object.
        self._topology = complete_topology(crossbar.n)
        # Capacity/residual buffers, allocated once and reused for every
        # full-size chunk this evaluator sees.  The dense pair backs
        # tensor_fn solvers; the edge pair backs tensor_edge_fn solvers.
        self._capacity_buffer: Optional[np.ndarray] = None
        self._residual_buffer: Optional[np.ndarray] = None
        self._edge_capacity_buffer: Optional[np.ndarray] = None
        self._edge_residual_buffer: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(
        self, challenges: Sequence[Challenge]
    ) -> Tuple[np.ndarray, BatchReport]:
        """Evaluate a challenge batch; returns ``(bits, report)``.

        ``bits`` is a uint8 vector aligned with the input order.
        """
        started = time.perf_counter()
        challenges = list(challenges)
        for challenge in challenges:
            self.ppuf._check_challenge(challenge)
        chunks = [
            challenges[i: i + self.chunk_size]
            for i in range(0, len(challenges), self.chunk_size)
        ]
        if not chunks:
            report = BatchReport(
                challenges=0,
                engine=self.engine,
                algorithm=self.algorithm,
                workers=self.workers,
                chunks=0,
            )
            report.stats.algorithm = self.algorithm
            report.total_seconds = time.perf_counter() - started
            return np.zeros(0, dtype=np.uint8), report

        runtime_stats = None
        if self.workers == 1 or len(chunks) == 1:
            # Short-circuit: inline evaluation, no pool spawned — a lone
            # chunk (or B=0 above) must never pay worker start-up.
            outcomes = [self._evaluate_chunk(chunk) for chunk in chunks]
            workers_used = 1
        else:
            workers_used = min(self.workers, len(chunks))
            shipped = self._worker_payload()
            try:
                with WorkerPool(
                    workers_used,
                    initializer=_worker_init,
                    initargs=(
                        shipped.payload,
                        self.engine,
                        self.algorithm,
                        self.chunk_size,
                    ),
                ) as pool:
                    # WorkerPool.map preserves submission order, so the
                    # result vector is deterministic regardless of
                    # completion order.
                    outcomes = pool.map(_worker_chunk, chunks)
                runtime_stats = pool.stats
            finally:
                shipped.close()

        bits = np.concatenate([chunk_bits for chunk_bits, _ in outcomes])
        report = BatchReport(
            challenges=len(challenges),
            engine=self.engine,
            algorithm=self.algorithm,
            workers=workers_used,
            chunks=len(chunks),
        )
        for _, chunk_stats in outcomes:
            report.stats.merge(chunk_stats)
        if runtime_stats is not None:
            # Fold the pool's telemetry into the solver counters so one
            # report carries the whole story (tasks == chunks fanned out).
            for name, value in runtime_stats.counters().items():
                report.stats.count(f"runtime_{name}", value)
        # The merged per-chunk times double-count overlap under workers > 1;
        # the report's total is the end-to-end wall clock either way.
        report.total_seconds = time.perf_counter() - started
        return bits, report

    # ------------------------------------------------------------------
    # worker transport
    # ------------------------------------------------------------------
    def compiled_device(self) -> CompiledDevice:
        """The compiled artifact shipped to workers (compiled once, cached).

        The circuit engine needs the I–V tables; the max-flow engine ships
        capacities only.
        """
        need_circuit = self.engine == "circuit"
        cached = self._compiled
        if cached is None or (need_circuit and not cached.has_circuit_tables):
            if isinstance(self.ppuf, CompiledDevice):
                # A capacity-only artifact cannot grow circuit tables; ship
                # it as-is and let the circuit path raise its clear error.
                return self.ppuf
            cached = self.ppuf.compile(include_circuit=need_circuit)
            self._compiled = cached
        return cached

    def _worker_payload(self) -> ShippedArtifact:
        """The :class:`ShippedArtifact` handed to the pool fan-out.

        Shared-memory transport ships one small manifest pickle per worker
        and maps the tables; the fallback pickles the device (the compiled
        artifact when we have one — a plain :class:`Ppuf` otherwise, whose
        workers re-derive their caches: the legacy baseline).
        """
        if self.share_memory:
            return ship_compiled(self.compiled_device())
        device = self._compiled if self._compiled is not None else self.ppuf
        return ShippedArtifact(("pickle", device))

    # ------------------------------------------------------------------
    # chunk evaluation (also runs inside pool workers)
    # ------------------------------------------------------------------
    def _evaluate_chunk(
        self, challenges: List[Challenge]
    ) -> Tuple[np.ndarray, SolveStats]:
        if self.engine == "circuit":
            return self._evaluate_chunk_circuit(challenges)
        return self._evaluate_chunk_maxflow(challenges)

    def _buffers(self, instances: int, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the reusable dense buffers sized for this chunk."""
        capacity = self._capacity_buffer
        if capacity is None or capacity.shape[0] < instances or capacity.shape[1] != n:
            size = max(instances, 2 * self.chunk_size)
            self._capacity_buffer = np.zeros((size, n, n), dtype=np.float64)
            self._residual_buffer = np.empty((size, n, n), dtype=np.float64)
            capacity = self._capacity_buffer
        return capacity[:instances], self._residual_buffer[:instances]

    def _edge_buffers(self, instances: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the reusable edge-array buffers sized for this chunk.

        The residual buffer carries the solver's ``(B, 2E + 1)`` layout:
        forward arcs, reverse arcs, then the pinned-zero sentinel column.
        Leading-axis slices of a C-contiguous allocation stay contiguous,
        so the views satisfy the solvers' ``residual_out`` contract.
        """
        edges = self._topology.num_edges
        capacity = self._edge_capacity_buffer
        if capacity is None or capacity.shape[0] < instances:
            size = max(instances, 2 * self.chunk_size)
            self._edge_capacity_buffer = np.empty((size, edges), dtype=np.float64)
            self._edge_residual_buffer = np.empty(
                (size, 2 * edges + 1), dtype=np.float64
            )
            capacity = self._edge_capacity_buffer
        return capacity[:instances], self._edge_residual_buffer[:instances]

    def _evaluate_chunk_edges(self, challenges):
        """Edge-array fast path: one (2C, E) table over the shared CSR."""
        stats = SolveStats(algorithm=self.algorithm)
        ppuf = self.ppuf
        count = len(challenges)
        with stats.phase("prepare"):
            capacity, residual = self._edge_buffers(2 * count)
            sources = np.fromiter(
                (challenge.source for challenge in challenges),
                dtype=np.int64, count=count,
            )
            sinks = np.fromiter(
                (challenge.sink for challenge in challenges),
                dtype=np.int64, count=count,
            )
            # Same selection arithmetic as Crossbar.bits_for_edges +
            # PpufNetwork.capacities, lifted to the whole chunk: stack the
            # challenge bit vectors, gather per-edge control bits, and let
            # one np.where per network broadcast the per-bit capacity rows.
            bits = np.stack([challenge.bits for challenge in challenges])
            choose = bits[:, self._cells] == 1
            for half, network in enumerate((ppuf.network_a, ppuf.network_b)):
                np.copyto(
                    capacity[half * count:(half + 1) * count],
                    np.where(
                        choose,
                        network._capacities_for_bit(1),
                        network._capacities_for_bit(0),
                    ),
                )
        result = self._spec.solve_tensor_edges(
            self._topology,
            capacity,
            np.tile(sources, 2),
            np.tile(sinks, 2),
            residual_out=residual,
            stats=stats,
        )
        values = result.values
        with stats.phase("compare"):
            comparator = ppuf.comparator
            bits = (
                (values[:count] + comparator.offset) > values[count:]
            ).astype(np.uint8)
        return bits, stats

    def _evaluate_chunk_maxflow(self, challenges):
        if self._spec.tensor_edge_fn is not None:
            return self._evaluate_chunk_edges(challenges)
        stats = SolveStats(algorithm=self.algorithm)
        ppuf = self.ppuf
        n = ppuf.n
        count = len(challenges)
        src, dst = self._edge_src, self._edge_dst
        with stats.phase("prepare"):
            capacity, residual = self._buffers(2 * count, n)
            terminals = np.empty((2, 2 * count), dtype=np.int64)
            per_bit = [
                (
                    network._capacities_for_bit(0),
                    network._capacities_for_bit(1),
                )
                for network in (ppuf.network_a, ppuf.network_b)
            ]
            for index, challenge in enumerate(challenges):
                # Same selection arithmetic as Crossbar.bits_for_edges +
                # PpufNetwork.capacities, minus the per-call validation.
                choose = challenge.bits[self._cells] == 1
                terminals[0, index] = terminals[0, index + count] = challenge.source
                terminals[1, index] = terminals[1, index + count] = challenge.sink
                for half, (cap0, cap1) in enumerate(per_bit):
                    capacity[index + half * count, src, dst] = np.where(
                        choose, cap1, cap0
                    )
        if self._spec.tensor_fn is not None:
            result = self._spec.solve_tensor(
                capacity, terminals[0], terminals[1],
                residual_out=residual, stats=stats,
            )
            values = result.values
        else:
            values = np.empty(2 * count, dtype=np.float64)
            for row in range(2 * count):
                values[row] = self._spec.solve_matrix(
                    capacity[row],
                    residual[row],
                    int(terminals[0, row]),
                    int(terminals[1, row]),
                    stats=stats,
                )
        with stats.phase("compare"):
            comparator = ppuf.comparator
            bits = (
                (values[:count] + comparator.offset) > values[count:]
            ).astype(np.uint8)
        return bits, stats

    def _evaluate_chunk_circuit(self, challenges):
        stats = SolveStats(algorithm=self.algorithm)
        ppuf = self.ppuf
        count = len(challenges)
        currents = np.empty((2, count), dtype=np.float64)
        with stats.phase("solve"):
            start = time.perf_counter()
            for index, challenge in enumerate(challenges):
                edge_bits = challenge.bits[self._cells]
                for half, network in enumerate((ppuf.network_a, ppuf.network_b)):
                    currents[half, index] = network.circuit_current(
                        edge_bits, challenge.source, challenge.sink
                    )
            stats.total_seconds += time.perf_counter() - start
        stats.solves += 2 * count
        stats.count("dc_solves", 2 * count)
        with stats.phase("compare"):
            comparator = ppuf.comparator
            bits = ((currents[0] + comparator.offset) > currents[1]).astype(np.uint8)
        return bits, stats


# ----------------------------------------------------------------------
# process-pool plumbing (module level so the pool can pickle it)
# ----------------------------------------------------------------------
_WORKER_EVALUATOR: Optional[BatchEvaluator] = None


def _worker_init(payload, engine, algorithm, chunk_size):
    global _WORKER_EVALUATOR
    # materialise_payload resolves every transport kind (shm, pickle …)
    # and retains shared-memory mappings for the worker's lifetime.
    device = materialise_payload(payload)
    _WORKER_EVALUATOR = BatchEvaluator(
        device,
        engine=engine,
        algorithm=algorithm,
        workers=1,
        chunk_size=chunk_size,
    )


def _worker_chunk(challenges):
    return _WORKER_EVALUATOR._evaluate_chunk(challenges)
