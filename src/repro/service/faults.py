"""Fault injection between a real client and server on loopback.

:class:`FaultyTransport` is a TCP proxy that forwards JSON-line frames in
both directions and injects transport faults according to a
:class:`FaultPlan` — the harness the resilience test suite drives.  The
fault vocabulary maps onto the adversaries the protocol must survive:

=============  ==========================================================
kind           what the peer sees
=============  ==========================================================
``drop``       the frame silently never arrives (lossy network; the
               reader blocks until its timeout)
``stall``      the frame arrives ``seconds`` late (a simulator paying the
               ESG, or plain congestion)
``garbage``    the frame is replaced by bytes that are not JSON (a
               tamperer or a corrupted link)
``truncate``   the first half of the frame arrives, then the connection
               closes (a mid-frame crash)
``disconnect`` the connection closes before the frame is forwarded
=============  ==========================================================

Frames are matched by direction (:data:`C2S` client→server, :data:`S2C`
server→client), by per-direction frame index, and/or by the JSON ``type``
of the frame — so a plan can say "drop the 2nd CLAIM" or "stall every
CHALLENGE".  Each rule fires at most ``times`` times (default once), so an
honest client with a retry policy can make progress through a flaky plan.

The proxy is intentionally byte-oriented below the fault layer: it never
validates frames it merely forwards, so it also transports the garbage the
tests send on purpose.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.service import wire

#: Direction tags for :class:`FaultPlan` rules.
C2S = "c2s"  # client -> server
S2C = "s2c"  # server -> client

DROP = "drop"
STALL = "stall"
GARBAGE = "garbage"
TRUNCATE = "truncate"
DISCONNECT = "disconnect"

FAULT_KINDS = (DROP, STALL, GARBAGE, TRUNCATE, DISCONNECT)

#: What a ``garbage`` fault sends unless the rule overrides it.
DEFAULT_GARBAGE = b"{this is not json]]\n"


@dataclass
class _Rule:
    kind: str
    direction: str
    index: Optional[int]
    message_type: Optional[str]
    seconds: float
    payload: bytes
    times: int
    fired: int = 0

    def matches(self, direction: str, index: int, frame_type: Optional[str]) -> bool:
        if self.fired >= self.times:
            return False
        if self.direction != direction:
            return False
        if self.index is not None and self.index != index:
            return False
        if self.message_type is not None and self.message_type != frame_type:
            return False
        return True


@dataclass
class FaultPlan:
    """An ordered list of injection rules; first match per frame wins."""

    rules: List[_Rule] = field(default_factory=list)

    def inject(
        self,
        kind: str,
        *,
        direction: str = C2S,
        index: Optional[int] = None,
        message_type: Optional[str] = None,
        seconds: float = 0.2,
        payload: bytes = DEFAULT_GARBAGE,
        times: int = 1,
    ) -> "FaultPlan":
        """Add one rule (chainable).  ``index`` counts frames per direction."""
        if kind not in FAULT_KINDS:
            raise ServiceError(f"unknown fault kind {kind!r} (have {FAULT_KINDS})")
        if direction not in (C2S, S2C):
            raise ServiceError(f"direction must be {C2S!r} or {S2C!r}, got {direction!r}")
        if times < 1:
            raise ServiceError(f"times must be >= 1, got {times}")
        self.rules.append(
            _Rule(kind, direction, index, message_type, seconds, payload, times)
        )
        return self

    def fault_for(self, direction: str, index: int, frame: bytes) -> Optional[_Rule]:
        frame_type: Optional[str] = None
        if any(r.message_type is not None for r in self.rules):
            try:
                parsed = json.loads(frame)
                if isinstance(parsed, dict) and isinstance(parsed.get("type"), str):
                    frame_type = parsed["type"]
            except (json.JSONDecodeError, UnicodeDecodeError):
                frame_type = None
        for rule in self.rules:
            if rule.matches(direction, index, frame_type):
                rule.fired += 1
                return rule
        return None


class FaultyTransport:
    """A loopback TCP proxy that injects faults from a :class:`FaultPlan`.

    >>> plan = FaultPlan().inject("drop", direction=S2C, message_type="challenge")
    >>> # async with FaultyTransport(server.port, plan) as proxy:
    >>> #     client = ServiceClient("127.0.0.1", proxy.port, ...)

    ``injected`` counts fired faults per kind and ``frames`` counts frames
    seen per direction, so tests can assert the fault actually happened.
    """

    def __init__(
        self,
        upstream_port: int,
        plan: Optional[FaultPlan] = None,
        *,
        upstream_host: str = "127.0.0.1",
        host: str = "127.0.0.1",
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.port: Optional[int] = None
        self.plan = plan if plan is not None else FaultPlan()
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.frames: Dict[str, int] = {C2S: 0, S2C: 0}
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: set = set()

    # ------------------------------------------------------------------
    async def start(self) -> "FaultyTransport":
        self._server = await asyncio.start_server(
            self._handle_client, self.host, 0, limit=wire.MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def __aenter__(self) -> "FaultyTransport":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_client(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        try:
            server_reader, server_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port, limit=wire.MAX_LINE_BYTES
            )
        except OSError:
            client_writer.close()
            return
        up = asyncio.create_task(
            self._pump(C2S, client_reader, server_writer, client_writer)
        )
        down = asyncio.create_task(
            self._pump(S2C, server_reader, client_writer, server_writer)
        )
        self._tasks.update((up, down))
        up.add_done_callback(self._tasks.discard)
        down.add_done_callback(self._tasks.discard)

    async def _pump(
        self,
        direction: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        reverse_writer: asyncio.StreamWriter,
    ) -> None:
        """Forward frames one way, consulting the plan for each."""
        try:
            while True:
                frame = await reader.readline()
                if not frame:
                    break
                index = self.frames[direction]
                self.frames[direction] = index + 1
                rule = self.plan.fault_for(direction, index, frame)
                if rule is None:
                    writer.write(frame)
                    await writer.drain()
                    continue
                self.injected[rule.kind] += 1
                if rule.kind == DROP:
                    continue
                if rule.kind == STALL:
                    await asyncio.sleep(rule.seconds)
                    writer.write(frame)
                    await writer.drain()
                elif rule.kind == GARBAGE:
                    payload = rule.payload
                    if not payload.endswith(b"\n"):
                        payload += b"\n"
                    writer.write(payload)
                    await writer.drain()
                elif rule.kind == TRUNCATE:
                    writer.write(frame[: max(1, len(frame) // 2)])
                    await writer.drain()
                    break
                elif rule.kind == DISCONNECT:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            for w in (writer, reverse_writer):
                try:
                    w.close()
                except RuntimeError:
                    pass
