"""Client library: the honest prover side of the wire protocol.

An honest device holder answers each challenge by executing it on the
local :class:`~repro.ppuf.device.Ppuf` (here: solving the public max-flow
instance, the software stand-in for the circuit settling in O(n)) and
ships the compact path-decomposition claim back within the deadline.

Test hooks mirror the adversaries of the paper's argument: ``tamper``
mutates the outgoing wire claim (a cheating prover), ``delay`` stalls
before answering (a simulator paying the ESG and missing the deadline).

Both an async :class:`ServiceClient` and blocking one-shot helpers
(:func:`enroll_device`, :func:`authenticate_device`, :func:`fetch_stats`)
are provided; the CLI and tests use the blocking forms.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ServiceError
from repro.ppuf.device import Ppuf
from repro.ppuf.io import ppuf_to_dict
from repro.ppuf.verification import PpufProver
from repro.service import wire
from repro.service.registry import device_id_for


@dataclass
class AuthOutcome:
    """What a full authentication attempt produced."""

    accepted: bool
    reason: str
    rounds_run: int
    session_id: str
    transcript: List[dict] = field(default_factory=list)


class ServiceClient:
    """One TCP connection to a :class:`~repro.service.server.PpufAuthServer`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=wire.MAX_LINE_BYTES
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(self, message: dict) -> dict:
        """Send one message and read one reply (raising on wire errors)."""
        if self._writer is None:
            raise ServiceError("client is not connected")
        await wire.write_message(self._writer, message)
        reply = await wire.read_message(self._reader)
        if reply is None:
            raise ServiceError("server closed the connection")
        return reply

    async def request_ok(self, message: dict) -> dict:
        reply = await self.request(message)
        if reply["type"] == wire.ERROR:
            raise ServiceError(f"server error: {reply.get('error')}")
        return reply

    # ------------------------------------------------------------------
    async def enroll(self, ppuf: Ppuf) -> str:
        """Publish the device description; returns the server's device id."""
        reply = await self.request_ok(
            {"type": wire.ENROLL, "device": ppuf_to_dict(ppuf)}
        )
        return reply["device_id"]

    async def stats(self) -> dict:
        reply = await self.request_ok({"type": wire.STATS})
        return reply["stats"]

    async def authenticate(
        self,
        ppuf: Ppuf,
        *,
        network: str = "a",
        rounds: Optional[int] = None,
        algorithm: str = "dinic",
        tamper: Optional[Callable[[dict], dict]] = None,
        delay: float = 0.0,
    ) -> AuthOutcome:
        """Run one full authentication session as the device holder.

        ``tamper`` receives each outgoing wire-claim dict and returns the
        (possibly mutated) dict to send; ``delay`` sleeps that many seconds
        before answering each challenge.
        """
        device_id = device_id_for(ppuf_to_dict(ppuf))
        net = ppuf.network_a if network == "a" else ppuf.network_b
        prover = PpufProver(net)
        message = {"type": wire.HELLO, "device_id": device_id, "network": network}
        if rounds is not None:
            message["rounds"] = int(rounds)
        reply = await self.request_ok(message)
        transcript: List[dict] = []
        while reply["type"] == wire.CHALLENGE:
            challenge = wire.challenge_from_wire(reply["challenge"])
            if delay:
                await asyncio.sleep(delay)
            claim = prover.answer_compact(challenge, algorithm=algorithm)
            claim_wire = wire.claim_to_wire(claim)
            if tamper is not None:
                claim_wire = tamper(claim_wire)
            transcript.append(
                {
                    "round": reply["round"],
                    "nonce": reply["nonce"],
                    "value": claim.value,
                    "deadline_seconds": reply["deadline_seconds"],
                }
            )
            reply = await self.request_ok(
                {
                    "type": wire.CLAIM,
                    "session": reply["session"],
                    "nonce": reply["nonce"],
                    "claim": claim_wire,
                }
            )
        if reply["type"] != wire.VERDICT:
            raise ServiceError(f"expected a verdict, got {reply['type']!r}")
        return AuthOutcome(
            accepted=bool(reply["accepted"]),
            reason=str(reply.get("reason", "")),
            rounds_run=int(reply.get("rounds_run", len(transcript))),
            session_id=str(reply.get("session", "")),
            transcript=transcript,
        )


# ----------------------------------------------------------------------
# blocking one-shot helpers (CLI entry points)
# ----------------------------------------------------------------------
async def _with_client(host: str, port: int, action):
    async with ServiceClient(host, port) as client:
        return await action(client)


def enroll_device(host: str, port: int, ppuf: Ppuf) -> str:
    """Blocking enroll of one device."""
    return asyncio.run(_with_client(host, port, lambda c: c.enroll(ppuf)))


def authenticate_device(host: str, port: int, ppuf: Ppuf, **kwargs) -> AuthOutcome:
    """Blocking authentication of one device (see :meth:`ServiceClient.authenticate`)."""
    return asyncio.run(
        _with_client(host, port, lambda c: c.authenticate(ppuf, **kwargs))
    )


def fetch_stats(host: str, port: int) -> dict:
    """Blocking ``STATS`` snapshot."""
    return asyncio.run(_with_client(host, port, lambda c: c.stats()))
