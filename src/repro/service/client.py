"""Client library: the honest prover side of the wire protocol.

An honest device holder answers each challenge by executing it on the
local :class:`~repro.ppuf.device.Ppuf` (here: solving the public max-flow
instance, the software stand-in for the circuit settling in O(n)) and
ships the compact path-decomposition claim back within the deadline.

Test hooks mirror the adversaries of the paper's argument: ``tamper``
mutates the outgoing wire claim (a cheating prover), ``delay`` stalls
before answering (a simulator paying the ESG and missing the deadline).

Resilience (:mod:`repro.service.resilience`): every network operation has
a finite per-operation ``timeout`` (default
:data:`~repro.service.resilience.DEFAULT_TIMEOUT`), transport failures are
classified — :class:`~repro.errors.ServiceTimeout` for a stalled peer,
:class:`~repro.errors.ConnectionLost` for a dropped connection, plain
:class:`~repro.errors.ServiceError` for a server-reported error — and
idempotent verbs (ENROLL / HELLO / STATS) are transparently
reconnected-and-retried under the client's :class:`RetryPolicy`.  CLAIM is
never auto-retried; its nonce is already consumed, so a resend would be
rejected as a replay.

Both an async :class:`ServiceClient` and blocking one-shot helpers
(:func:`enroll_device`, :func:`authenticate_device`, :func:`fetch_stats`)
are provided; the CLI and tests use the blocking forms.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConnectionLost, ServiceError
from repro.flow.registry import DEFAULT_ALGORITHM
from repro.ppuf.compiled import CompiledDevice
from repro.ppuf.device import Ppuf
from repro.ppuf.io import ppuf_to_dict
from repro.ppuf.verification import PpufProver
from repro.service import wire
from repro.service.registry import device_id_for
from repro.service.resilience import (
    DEFAULT_TIMEOUT,
    IDEMPOTENT_TYPES,
    RetryPolicy,
    with_timeout,
)

#: Transport-level exceptions normalised into :class:`ConnectionLost`.
_CONNECTION_ERRORS = (
    ConnectionResetError,
    ConnectionRefusedError,
    BrokenPipeError,
    asyncio.IncompleteReadError,
)


@dataclass
class AuthOutcome:
    """What a full authentication attempt produced."""

    accepted: bool
    reason: str
    rounds_run: int
    session_id: str
    transcript: List[dict] = field(default_factory=list)


class ServiceClient:
    """One TCP connection to a :class:`~repro.service.server.PpufAuthServer`.

    Parameters
    ----------
    timeout:
        Per-operation deadline [s] applied to connect and to every
        request/response exchange.  Finite by default — a dead server
        surfaces as :class:`~repro.errors.ServiceTimeout`, never a hang.
    retry:
        Policy for reconnect-and-retry of idempotent verbs.  ``None``
        uses the default :class:`RetryPolicy`; pass
        ``RetryPolicy.no_retry()`` to disable.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retry: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.retries_performed = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServiceClient":
        try:
            self._reader, self._writer = await with_timeout(
                asyncio.open_connection(
                    self.host, self.port, limit=wire.MAX_LINE_BYTES
                ),
                self.timeout,
                f"connect to {self.host}:{self.port}",
            )
        except OSError as error:
            raise ConnectionLost(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except _CONNECTION_ERRORS:
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def request(self, message: dict, *, timeout: Optional[float] = None) -> dict:
        """Send one message and read one reply within the deadline.

        Raises :class:`ServiceTimeout` on a stalled exchange and
        :class:`ConnectionLost` when the server drops the connection —
        both subclasses of :class:`ServiceError`, so existing handlers
        still work.  Never retries; see :meth:`request_ok`.
        """
        if self._writer is None:
            raise ServiceError("client is not connected")
        deadline = self.timeout if timeout is None else timeout
        try:
            reply = await with_timeout(
                self._exchange(message), deadline, f"{message.get('type')} exchange"
            )
        except _CONNECTION_ERRORS as error:
            raise ConnectionLost(f"connection lost mid-request: {error}") from error
        if reply is None:
            raise ConnectionLost("server closed the connection")
        return reply

    async def _exchange(self, message: dict) -> Optional[dict]:
        await wire.write_message(self._writer, message)
        return await wire.read_message(self._reader)

    async def request_ok(
        self,
        message: dict,
        *,
        timeout: Optional[float] = None,
        retry: bool = False,
    ) -> dict:
        """Request, raising :class:`ServiceError` on an ``error`` reply.

        With ``retry=True`` — allowed only for idempotent verbs — a
        transport failure tears the connection down, backs off per the
        policy, reconnects and resends.  Retried frames carry a ``retry``
        attempt counter so the server's ``retries_observed`` telemetry
        sees them.
        """
        if retry:
            reply = await self._request_idempotent(message, timeout=timeout)
        else:
            reply = await self.request(message, timeout=timeout)
        reply_type = reply.get("type")
        if not isinstance(reply_type, str):
            raise ServiceError(f"server reply missing a 'type' string: {reply!r}")
        if reply_type == wire.ERROR:
            raise ServiceError(f"server error: {reply.get('error')}")
        return reply

    async def _request_idempotent(
        self, message: dict, *, timeout: Optional[float] = None
    ) -> dict:
        message_type = message.get("type")
        if message_type not in IDEMPOTENT_TYPES:
            raise ServiceError(
                f"refusing to auto-retry non-idempotent verb {message_type!r}"
            )
        policy = self.retry
        last_error: Optional[BaseException] = None
        for attempt in range(policy.attempts):
            if attempt:
                await asyncio.sleep(policy.delay(attempt))
                self.retries_performed += 1
                message = {**message, "retry": attempt}
                try:
                    await self.close()
                    await self.connect()
                except ServiceError as error:
                    last_error = error
                    continue
            try:
                return await self.request(message, timeout=timeout)
            except ServiceError as error:
                if not policy.is_retryable(error):
                    raise
                last_error = error
        raise last_error  # type: ignore[misc]  # attempts >= 1 guarantees it's set

    # ------------------------------------------------------------------
    async def enroll(self, ppuf: Ppuf) -> str:
        """Publish the device description; returns the server's device id."""
        reply = await self.request_ok(
            {"type": wire.ENROLL, "device": ppuf_to_dict(ppuf)}, retry=True
        )
        return reply["device_id"]

    async def stats(self) -> dict:
        reply = await self.request_ok({"type": wire.STATS}, retry=True)
        return reply["stats"]

    async def authenticate(
        self,
        ppuf,
        *,
        network: str = "a",
        rounds: Optional[int] = None,
        algorithm: str = DEFAULT_ALGORITHM,
        tamper: Optional[Callable[[dict], dict]] = None,
        delay: float = 0.0,
    ) -> AuthOutcome:
        """Run one full authentication session as the device holder.

        ``ppuf`` may be a live :class:`~repro.ppuf.device.Ppuf` or a
        :class:`~repro.ppuf.compiled.CompiledDevice` (whose stamped
        ``device_id`` identifies the enrolled silicon — ``repro compile``
        produces these and ``repro auth --compiled`` loads them).

        ``tamper`` receives each outgoing wire-claim dict and returns the
        (possibly mutated) dict to send; ``delay`` sleeps that many seconds
        before answering each challenge.

        The opening HELLO is retried under the client policy (a fresh
        session costs the server nothing); once a challenge is
        outstanding, CLAIM goes out exactly once — a transport failure
        there raises and the whole authentication must be restarted.
        """
        if isinstance(ppuf, CompiledDevice):
            device_id = ppuf.device_id
        else:
            device_id = device_id_for(ppuf_to_dict(ppuf))
        net = ppuf.network_a if network == "a" else ppuf.network_b
        prover = PpufProver(net)
        message = {"type": wire.HELLO, "device_id": device_id, "network": network}
        if rounds is not None:
            message["rounds"] = int(rounds)
        reply = await self.request_ok(message, retry=True)
        transcript: List[dict] = []
        while reply["type"] == wire.CHALLENGE:
            challenge = wire.challenge_from_wire(reply["challenge"])
            if delay:
                await asyncio.sleep(delay)
            claim = prover.answer_compact(challenge, algorithm=algorithm)
            claim_wire = wire.claim_to_wire(claim)
            if tamper is not None:
                claim_wire = tamper(claim_wire)
            transcript.append(
                {
                    "round": reply["round"],
                    "nonce": reply["nonce"],
                    "value": claim.value,
                    "deadline_seconds": reply["deadline_seconds"],
                }
            )
            reply = await self.request_ok(
                {
                    "type": wire.CLAIM,
                    "session": reply["session"],
                    "nonce": reply["nonce"],
                    "claim": claim_wire,
                }
            )
        if reply["type"] != wire.VERDICT:
            raise ServiceError(f"expected a verdict, got {reply['type']!r}")
        return AuthOutcome(
            accepted=bool(reply["accepted"]),
            reason=str(reply.get("reason", "")),
            rounds_run=int(reply.get("rounds_run", len(transcript))),
            session_id=str(reply.get("session", "")),
            transcript=transcript,
        )


# ----------------------------------------------------------------------
# blocking one-shot helpers (CLI entry points)
# ----------------------------------------------------------------------
async def _with_client(
    host: str,
    port: int,
    action,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    retry: Optional[RetryPolicy] = None,
):
    async with ServiceClient(host, port, timeout=timeout, retry=retry) as client:
        return await action(client)


def enroll_device(
    host: str,
    port: int,
    ppuf: Ppuf,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    retry: Optional[RetryPolicy] = None,
) -> str:
    """Blocking enroll of one device."""
    return asyncio.run(
        _with_client(host, port, lambda c: c.enroll(ppuf), timeout=timeout, retry=retry)
    )


def authenticate_device(
    host: str,
    port: int,
    ppuf,  # a Ppuf or a CompiledDevice
    *,
    timeout: float = DEFAULT_TIMEOUT,
    retry: Optional[RetryPolicy] = None,
    **kwargs,
) -> AuthOutcome:
    """Blocking authentication of one device (see :meth:`ServiceClient.authenticate`)."""
    return asyncio.run(
        _with_client(
            host,
            port,
            lambda c: c.authenticate(ppuf, **kwargs),
            timeout=timeout,
            retry=retry,
        )
    )


def fetch_stats(
    host: str,
    port: int,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    retry: Optional[RetryPolicy] = None,
) -> dict:
    """Blocking ``STATS`` snapshot."""
    return asyncio.run(
        _with_client(host, port, lambda c: c.stats(), timeout=timeout, retry=retry)
    )
