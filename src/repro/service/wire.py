"""JSON-lines wire protocol for the authentication service.

Every message is one JSON object on one ``\\n``-terminated line — trivially
debuggable with ``nc`` and free of framing ambiguity.  The vocabulary:

=============  ======  =====================================================
type           sender  payload
=============  ======  =====================================================
``enroll``     client  ``device`` — the public PPUF dict (:func:`ppuf_to_dict`)
``enrolled``   server  ``device_id``
``hello``      client  ``device_id``, ``network`` ("a"/"b"), opt. ``rounds``
``challenge``  server  ``session``, ``nonce``, ``round``, ``rounds``,
                       ``challenge``, ``deadline_seconds``,
                       ``paper_deadline_seconds``
``claim``      client  ``session``, ``nonce``, ``claim``
``verdict``    server  ``session``, ``accepted``, ``reason``, ``rounds_run``
``stats``      client  (empty) → server replies with a ``stats`` snapshot
``error``      server  ``error`` — protocol violation; the session (if any)
                       is dead
=============  ======  =====================================================

Challenges travel as ``{source, sink, bits}``; claims travel in the compact
path-decomposition form (:class:`repro.ppuf.verification.CompactClaim`) —
O(n) paths instead of the dense n×n flow matrix, the bandwidth-conscious
format the protocol module already defines.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Optional

import numpy as np

from repro.errors import ServiceError
from repro.flow.registry import DEFAULT_ALGORITHM
from repro.flow.decomposition import PathFlow
from repro.service.resilience import with_timeout
from repro.ppuf.challenge import Challenge
from repro.ppuf.verification import CompactClaim

#: Hard per-line ceiling; a compact claim for the largest plausible device
#: is far below this, so anything bigger is garbage or abuse.
MAX_LINE_BYTES = 8 * 1024 * 1024

# Message type tags (client -> server unless noted).
ENROLL = "enroll"
ENROLLED = "enrolled"  # server -> client
HELLO = "hello"
CHALLENGE = "challenge"  # server -> client
CLAIM = "claim"
VERDICT = "verdict"  # server -> client
STATS = "stats"  # request and reply share the tag
ERROR = "error"  # server -> client


def encode_message(message: dict) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


async def read_message(
    reader: asyncio.StreamReader,
    *,
    limit: int = MAX_LINE_BYTES,
    timeout: Optional[float] = None,
) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF; :class:`ServiceError` on junk.

    With ``timeout``, a peer that stalls mid-frame raises
    :class:`~repro.errors.ServiceTimeout` instead of blocking forever.
    """
    try:
        line = await with_timeout(reader.readline(), timeout, "wire read")
    except (asyncio.LimitOverrunError, ValueError) as error:
        raise ServiceError(f"wire frame exceeds reader limit: {error}") from error
    if not line:
        return None
    if len(line) > limit:
        raise ServiceError(f"wire frame of {len(line)} bytes exceeds {limit}")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ServiceError(f"malformed wire frame: {error}") from error
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ServiceError("wire frame must be a JSON object with a 'type' string")
    return message


async def write_message(
    writer: asyncio.StreamWriter, message: dict, *, timeout: Optional[float] = None
) -> None:
    """Encode, enqueue and flush one frame (``timeout`` bounds the drain)."""
    writer.write(encode_message(message))
    await with_timeout(writer.drain(), timeout, "wire write")


# ----------------------------------------------------------------------
# payload (de)serialisation
# ----------------------------------------------------------------------
def challenge_to_wire(challenge: Challenge) -> dict:
    return {
        "source": challenge.source,
        "sink": challenge.sink,
        "bits": challenge.bits.tolist(),
    }


def challenge_from_wire(payload: dict) -> Challenge:
    try:
        return Challenge(
            source=int(payload["source"]),
            sink=int(payload["sink"]),
            bits=np.asarray(payload["bits"], dtype=np.uint8),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(f"malformed wire challenge: {error}") from error


def claim_to_wire(claim: CompactClaim) -> dict:
    return {
        "challenge": challenge_to_wire(claim.challenge),
        "paths": [
            {"vertices": list(path.vertices), "value": path.value}
            for path in claim.paths
        ],
        "value": claim.value,
        "elapsed_seconds": claim.elapsed_seconds,
        # Solver attribution for the server's per-algorithm telemetry.
        "algorithm": claim.algorithm,
    }


def claim_from_wire(payload: dict) -> CompactClaim:
    try:
        paths: List[PathFlow] = [
            PathFlow(
                vertices=tuple(int(v) for v in entry["vertices"]),
                value=float(entry["value"]),
            )
            for entry in payload["paths"]
        ]
        return CompactClaim(
            challenge=challenge_from_wire(payload["challenge"]),
            paths=paths,
            value=float(payload["value"]),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            algorithm=str(payload.get("algorithm", DEFAULT_ALGORITHM)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ServiceError(f"malformed wire claim: {error}") from error
