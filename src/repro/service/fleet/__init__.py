"""Hash-sharded authentication fleet: one front door, N shard servers.

The population-scale tier of :mod:`repro.service`.  A fleet is:

* a :class:`~repro.service.fleet.topology.ShardMap` — rendezvous-hashing
  of ``device_id``s onto named shards (deterministic, minimal-motion
  membership changes, drain-then-remove);
* a :class:`~repro.service.fleet.supervisor.FleetSupervisor` — N
  ``repro serve`` worker subprocesses over one shared artifact pack,
  health-checked and restarted with seeded backoff;
* a :class:`~repro.service.fleet.router.FleetRouter` — the wire-level
  front door that pins each connection to its device's shard and merges
  fleet-wide ``STATS``;
* a :class:`~repro.service.fleet.mapfile.ShardMapFile` — the shared,
  versioned shard-map artifact that any number of routers and
  supervisors (on any host) publish, watch, and route identically from,
  enabling live ``fleet scale``/``drain``/``remove``;
* a load-generation harness
  (:func:`~repro.service.fleet.loadgen.generate_load`) for honest and
  hostile traffic at fleet scale.

Entry points: ``python -m repro fleet serve|stats|load|scale|drain|remove``, or

>>> from repro.service.fleet import FleetRouter, FleetSupervisor, ShardMap
"""

from repro.service.fleet.loadgen import LoadReport, generate_load, run_load
from repro.service.fleet.mapfile import (
    MAPFILE_FORMAT,
    ShardMapFile,
    decode_shard_map,
    encode_shard_map,
)
from repro.service.fleet.router import FleetRouter, RouterStats
from repro.service.fleet.supervisor import (
    FleetSupervisor,
    ShardWorkerSpec,
    probe_stats,
)
from repro.service.fleet.topology import (
    ACTIVE,
    DOWN,
    DRAINING,
    ShardDescriptor,
    ShardMap,
    default_shard_names,
    shard_score,
)

__all__ = [
    "ACTIVE",
    "DOWN",
    "DRAINING",
    "FleetRouter",
    "FleetSupervisor",
    "LoadReport",
    "MAPFILE_FORMAT",
    "RouterStats",
    "ShardDescriptor",
    "ShardMap",
    "ShardMapFile",
    "ShardWorkerSpec",
    "decode_shard_map",
    "default_shard_names",
    "encode_shard_map",
    "generate_load",
    "probe_stats",
    "run_load",
    "shard_score",
]
