"""The shared shard-map file: one artifact every router routes from.

A fleet's membership lives in a small JSON file published atomically and
stamped with a monotonically increasing ``version``.  Any number of
:class:`~repro.service.fleet.router.FleetRouter` instances — in other
processes, on other hosts sharing the path over a network filesystem —
load the same file and therefore route identically; the supervisor and
the ``repro fleet scale/drain/remove`` CLI mutate it, and every watcher
picks the change up on its next poll.  This replaces the PR 7 topology
where the map existed only inside one router's memory and membership
change meant restarting the fleet.

File format (``format: 1``)::

    {
      "format": 1,
      "version": 7,
      "shards": [ {"name": "shard-0", "host": "...", "port": N,
                   "state": "active|draining|down"}, ... ]
    }

The concurrency story, in order of machinery:

* **torn-write safety** — writers go through
  :func:`repro.ppuf.io.atomic_write_text` (temp file, fsync,
  umask-respecting :func:`~repro.ppuf.io.publish_temp` rename), so a
  reader sees either the old map or the new one, never a partial line;
* **lost-update safety** — read-modify-write cycles
  (:meth:`ShardMapFile.mutate`) serialise on an ``flock``'d sidecar
  ``<path>.lock`` file, so a supervisor publishing a respawned worker's
  port and an operator draining a shard at the same moment compose
  instead of overwriting each other;
* **staleness detection** — ``version`` only ever grows (every publish
  is read-version + 1 under the lock), so a watcher can order updates
  without trusting filesystem timestamps; :meth:`ShardMapFile.poll`
  uses ``(mtime_ns, inode, size)`` only as a cheap "anything new?"
  filter before paying for a read.

One :class:`ShardMapFile` instance tracks one watcher's progress
(:meth:`poll` is stateful); give each watching component its own
instance even when they share a path.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
from contextlib import contextmanager
from typing import Callable, Optional, Tuple

try:  # POSIX advisory locking; absent on some platforms (best-effort there)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.errors import ServiceError
from repro.ppuf.io import atomic_write_text
from repro.service.fleet.topology import ShardMap

logger = logging.getLogger(__name__)

#: Shard-map file schema version (the ``format`` key).
MAPFILE_FORMAT = 1

#: Default seconds between watcher polls of the map file.
DEFAULT_POLL_INTERVAL = 0.25


def encode_shard_map(shard_map: ShardMap, *, version: int) -> str:
    """The canonical file text for ``shard_map`` at ``version``."""
    if not isinstance(version, int) or isinstance(version, bool) or version < 0:
        raise ServiceError(f"shard-map version must be an int >= 0, got {version!r}")
    payload = {"format": MAPFILE_FORMAT, "version": version, **shard_map.to_dict()}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def decode_shard_map(text: str, *, path: str = "<shard map>") -> Tuple[ShardMap, int]:
    """Parse file text into ``(ShardMap, version)``; :class:`ServiceError` on junk."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ServiceError(f"malformed shard-map file {path!r}: {error}") from error
    if not isinstance(payload, dict):
        raise ServiceError(f"shard-map file {path!r} must hold a JSON object")
    fmt = payload.get("format")
    if fmt != MAPFILE_FORMAT:
        raise ServiceError(
            f"shard-map file {path!r} has format {fmt!r}; this build reads "
            f"format {MAPFILE_FORMAT}"
        )
    version = payload.get("version")
    if not isinstance(version, int) or isinstance(version, bool) or version < 0:
        raise ServiceError(
            f"shard-map file {path!r} carries a bad version: {version!r}"
        )
    return ShardMap.from_dict(payload), version


class ShardMapFile:
    """One path, three verbs: ``publish``, ``mutate``, ``poll``/``watch``.

    Parameters
    ----------
    path:
        Where the map lives.  The sidecar lock file is ``<path>.lock``.
    poll_interval:
        Default seconds between :meth:`watch` polls.
    """

    def __init__(self, path, *, poll_interval: float = DEFAULT_POLL_INTERVAL):
        self.path = os.fspath(path)
        self.poll_interval = float(poll_interval)
        self._seen_stat: Optional[tuple] = None
        self._seen_version = -1
        # Highest version this instance wrote — kept separate from
        # _seen_version (the poll gate) so a writer's own publishes never
        # suppress polls of a concurrent writer's earlier version.  Used
        # only as the version floor when healing a corrupt file.
        self._written_version = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ShardMapFile({self.path!r}, seen_version={self._seen_version})"

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Tuple[ShardMap, int]:
        """Read the current map; marks its version as seen for :meth:`poll`."""
        stat = self._stat()
        try:
            with open(self.path) as handle:
                text = handle.read()
        except OSError as error:
            raise ServiceError(
                f"cannot read shard-map file {self.path!r}: {error}"
            ) from error
        shard_map, version = decode_shard_map(text, path=self.path)
        self._seen_stat = stat
        self._seen_version = max(self._seen_version, version)
        return shard_map, version

    def _stat(self) -> Optional[tuple]:
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_ino, stat.st_size)

    def poll(self) -> Optional[Tuple[ShardMap, int]]:
        """``(map, version)`` when a newer version was published, else ``None``.

        Cheap when idle: one ``stat`` against the remembered
        ``(mtime_ns, inode, size)`` triple; the file is only read (and
        version compared) when the stat changed.  Every publish goes
        through an atomic rename, so the inode changes with the content
        and stat equality is a safe negative.  A corrupt file raises
        :class:`ServiceError` *after* remembering the stat, so a watcher
        logs it once instead of every tick.
        """
        current = self._stat()
        if current is None or current == self._seen_stat:
            return None
        self._seen_stat = current
        try:
            with open(self.path) as handle:
                text = handle.read()
        except OSError as error:
            raise ServiceError(
                f"cannot read shard-map file {self.path!r}: {error}"
            ) from error
        shard_map, version = decode_shard_map(text, path=self.path)
        if version <= self._seen_version:
            return None
        self._seen_version = version
        return shard_map, version

    async def watch(
        self,
        callback: Callable,
        *,
        poll_interval: Optional[float] = None,
    ) -> None:
        """Poll forever; run ``callback(shard_map, version)`` per new version.

        The callback may be sync or async.  Corrupt or half-migrated
        files are logged and skipped — the watcher keeps its last good
        map and keeps polling; the next successful publish heals it.
        Cancel the task to stop watching.
        """
        interval = self.poll_interval if poll_interval is None else poll_interval
        while True:
            try:
                update = self.poll()
            except ServiceError as error:
                logger.warning("shard-map watch skipping bad read: %s", error)
                update = None
            if update is not None:
                result = callback(*update)
                if asyncio.iscoroutine(result):
                    await result
            await asyncio.sleep(interval)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    @contextmanager
    def _lock(self):
        """Exclusive advisory lock on the sidecar ``<path>.lock`` file."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        handle = open(self.path + ".lock", "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def _read_locked(self) -> Tuple[ShardMap, int]:
        """Current file contents under the caller's lock (empty map if none).

        A corrupt file must not wedge writers forever: it is treated as
        an empty map at the highest version this instance knows, so the
        next publish overwrites the junk with good bytes at an advancing
        version instead of raising on every attempt.
        """
        if not self.exists():
            return ShardMap(), 0
        with open(self.path) as handle:
            text = handle.read()
        try:
            return decode_shard_map(text, path=self.path)
        except ServiceError as error:
            logger.warning(
                "shard-map file %r is corrupt (%s); next publish rewrites it",
                self.path,
                error,
            )
            return ShardMap(), max(self._seen_version, self._written_version, 0)

    def publish(self, shard_map: ShardMap, *, version: Optional[int] = None) -> int:
        """Atomically write ``shard_map`` at the next version; returns it.

        ``version`` defaults to (current file version) + 1, read under
        the lock so concurrent publishers never reuse a number.  An
        explicit ``version`` must still advance past the file's.
        """
        with self._lock():
            _, current = self._read_locked()
            if version is None:
                version = current + 1
            elif version <= current:
                raise ServiceError(
                    f"shard-map version must advance monotonically: "
                    f"{version} <= published {current}"
                )
            atomic_write_text(
                self.path, encode_shard_map(shard_map, version=version)
            )
        self._written_version = max(self._written_version, version)
        return version

    def mutate(self, mutator: Callable[[ShardMap], object]) -> Tuple[ShardMap, int]:
        """One serialized read-modify-write: load, ``mutator(map)``, publish.

        This is how every live membership change happens — the CLI's
        ``scale``/``drain``/``remove`` and the supervisor's port updates
        all route through here, so concurrent writers interleave whole
        transactions instead of overwriting each other's edits.  Returns
        the published ``(map, version)``.  A mutator that raises leaves
        the file untouched.
        """
        with self._lock():
            shard_map, version = self._read_locked()
            mutator(shard_map)
            version += 1
            atomic_write_text(
                self.path, encode_shard_map(shard_map, version=version)
            )
        self._written_version = max(self._written_version, version)
        return shard_map, version
