"""Load generation: hundreds of concurrent provers against a fleet.

The harness drives many :class:`~repro.service.client.ServiceClient`
sessions — honest provers and a configurable fraction of *hostile* ones
that tamper their claim values (the fleet is correct when it rejects
every one) — against any wire endpoint: a single server, a
:class:`~repro.service.fleet.router.FleetRouter`, or a
:class:`~repro.service.faults.FaultyTransport` for chaos at fleet scale
(pass a :class:`~repro.service.faults.FaultPlan` and the harness routes
every client through its own proxy).

Each session opens a fresh connection (what a population of devices looks
like to the front door), runs one authentication, and records wall-clock
latency.  The report carries sessions/sec plus p50/p99 latency — the two
numbers the ROADMAP's scaling trajectory is plotted in.

One Python process can saturate only one core with proving (the prover's
max-flow solve is the *expensive* side of the paper's asymmetry), so
:func:`generate_load` fans client-driving workers out across processes
on a :class:`~repro.runtime.pool.WorkerPool` — required to keep a
multi-shard fleet verify-bound instead of loadgen-bound.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ServiceError
from repro.flow.registry import DEFAULT_ALGORITHM
from repro.runtime.pool import WorkerPool
from repro.service.client import ServiceClient
from repro.service.faults import FaultPlan, FaultyTransport
from repro.service.resilience import RetryPolicy


@dataclass
class LoadReport:
    """What a load run produced, in fleet-benchmark units."""

    clients: int
    duration_seconds: float
    sessions: int = 0
    accepted: int = 0
    rejected: int = 0
    errors: int = 0
    hostile_sessions: int = 0
    hostile_rejected: int = 0
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    @property
    def sessions_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.sessions / self.duration_seconds

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def merge(self, other: "LoadReport") -> "LoadReport":
        """Fold another worker's report in (duration is the max, not sum)."""
        self.clients += other.clients
        self.duration_seconds = max(self.duration_seconds, other.duration_seconds)
        self.sessions += other.sessions
        self.accepted += other.accepted
        self.rejected += other.rejected
        self.errors += other.errors
        self.hostile_sessions += other.hostile_sessions
        self.hostile_rejected += other.hostile_rejected
        self.latencies_ms.extend(other.latencies_ms)
        return self

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "duration_seconds": round(self.duration_seconds, 3),
            "sessions": self.sessions,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "hostile_sessions": self.hostile_sessions,
            "hostile_rejected": self.hostile_rejected,
            "sessions_per_second": round(self.sessions_per_second, 2),
            "latency_ms": {
                "p50": round(self.percentile_ms(50), 3),
                "p99": round(self.percentile_ms(99), 3),
                "max": round(max(self.latencies_ms, default=0.0), 3),
            },
        }


def _tamper_value(claim_wire: dict) -> dict:
    """The hostile mix: a forged claim value (must be rejected)."""
    return {**claim_wire, "value": claim_wire.get("value", 0.0) * 2.0 + 1.0}


async def _drive_client(
    index: int,
    host: str,
    port: int,
    device,
    *,
    hostile: bool,
    deadline: float,
    rounds: int,
    algorithm: str,
    timeout: float,
    report: LoadReport,
) -> None:
    """One client: authenticate in a loop until the shared deadline."""
    loop = asyncio.get_running_loop()
    await asyncio.sleep((index % 50) * 0.002)  # stagger the connect herd
    while loop.time() < deadline:
        start = time.perf_counter()
        try:
            async with ServiceClient(
                host, port, timeout=timeout, retry=RetryPolicy.no_retry()
            ) as client:
                outcome = await client.authenticate(
                    device,
                    rounds=rounds,
                    algorithm=algorithm,
                    tamper=_tamper_value if hostile else None,
                )
        except ServiceError:
            report.errors += 1
            await asyncio.sleep(0.01)  # a beat before hammering a sick endpoint
            continue
        report.latencies_ms.append((time.perf_counter() - start) * 1e3)
        report.sessions += 1
        if hostile:
            report.hostile_sessions += 1
            if not outcome.accepted:
                report.hostile_rejected += 1
        if outcome.accepted:
            report.accepted += 1
        else:
            report.rejected += 1


async def run_load(
    host: str,
    port: int,
    devices: Sequence,
    *,
    clients: int = 16,
    duration_seconds: float = 5.0,
    hostile_fraction: float = 0.0,
    rounds: int = 1,
    algorithm: str = DEFAULT_ALGORITHM,
    timeout: float = 30.0,
    fault_plan: Optional[FaultPlan] = None,
    hostile_clients: Optional[int] = None,
) -> LoadReport:
    """Drive ``clients`` concurrent provers for ``duration_seconds``.

    ``devices`` are live :class:`~repro.ppuf.device.Ppuf` or
    :class:`~repro.ppuf.compiled.CompiledDevice` objects, assigned to
    clients round-robin; they must already be enrolled (or packed) at the
    target.  With ``fault_plan``, every client connects through one
    :class:`FaultyTransport` injecting that plan — chaos at fleet scale.
    """
    if not devices:
        raise ServiceError("load generation needs at least one device")
    if clients < 1:
        raise ServiceError(f"clients must be >= 1, got {clients}")
    if not 0.0 <= hostile_fraction <= 1.0:
        raise ServiceError(
            f"hostile_fraction must be in [0, 1], got {hostile_fraction}"
        )
    if hostile_clients is None:
        hostile_clients = int(round(clients * hostile_fraction))
    proxy: Optional[FaultyTransport] = None
    target_host, target_port = host, port
    if fault_plan is not None:
        proxy = await FaultyTransport(port, fault_plan, upstream_host=host).start()
        target_host, target_port = proxy.host, proxy.port
    report = LoadReport(clients=clients, duration_seconds=duration_seconds)
    deadline = asyncio.get_running_loop().time() + duration_seconds
    try:
        await asyncio.gather(
            *(
                _drive_client(
                    index,
                    target_host,
                    target_port,
                    devices[index % len(devices)],
                    hostile=index < hostile_clients,
                    deadline=deadline,
                    rounds=rounds,
                    algorithm=algorithm,
                    timeout=timeout,
                    report=report,
                )
                for index in range(clients)
            )
        )
    finally:
        if proxy is not None:
            await proxy.stop()
    return report


# ----------------------------------------------------------------------
# process fan-out (the blocking entry point the CLI and bench use)
# ----------------------------------------------------------------------
def _load_worker(args: dict) -> dict:
    """One loadgen process: open the pack locally, drive a client slice."""
    devices = args["devices"]
    if devices is None:
        from repro.ppuf.pack import ArtifactPack

        pack = ArtifactPack(args["pack"])
        devices = [pack.device(device_id) for device_id in args["device_ids"]]
    report = asyncio.run(
        run_load(
            args["host"],
            args["port"],
            devices,
            clients=args["clients"],
            duration_seconds=args["duration_seconds"],
            rounds=args["rounds"],
            algorithm=args["algorithm"],
            timeout=args["timeout"],
            hostile_clients=args["hostile_clients"],
            hostile_fraction=0.0,
        )
    )
    return {
        "clients": report.clients,
        "duration_seconds": report.duration_seconds,
        "sessions": report.sessions,
        "accepted": report.accepted,
        "rejected": report.rejected,
        "errors": report.errors,
        "hostile_sessions": report.hostile_sessions,
        "hostile_rejected": report.hostile_rejected,
        "latencies_ms": report.latencies_ms,
    }


def generate_load(
    host: str,
    port: int,
    *,
    devices: Optional[Sequence] = None,
    pack: Optional[str] = None,
    clients: int = 16,
    duration_seconds: float = 5.0,
    hostile_fraction: float = 0.0,
    rounds: int = 1,
    algorithm: str = DEFAULT_ALGORITHM,
    timeout: float = 30.0,
    processes: int = 1,
    fault_plan: Optional[FaultPlan] = None,
) -> LoadReport:
    """Blocking load run, optionally fanned out across processes.

    Pass ``pack`` (preferred for multi-process runs — each worker maps the
    pack itself, nothing heavy pickles) or explicit ``devices``.  With
    ``processes > 1`` the client population is split evenly; hostile
    clients are distributed first-come so the global hostile count matches
    ``hostile_fraction`` exactly.
    """
    if (devices is None) == (pack is None):
        raise ServiceError("pass exactly one of 'devices' or 'pack'")
    if processes < 1:
        raise ServiceError(f"processes must be >= 1, got {processes}")
    if fault_plan is not None and processes > 1:
        raise ServiceError("fault_plan chaos requires processes=1")
    device_ids: Optional[List[str]] = None
    if pack is not None:
        from repro.ppuf.pack import ArtifactPack

        device_ids = ArtifactPack(pack).ids()
        if not device_ids:
            raise ServiceError(f"pack {pack!r} holds no devices")
    if processes == 1:
        if devices is None:
            from repro.ppuf.pack import ArtifactPack

            opened = ArtifactPack(pack)
            devices = [opened.device(device_id) for device_id in device_ids]
        return asyncio.run(
            run_load(
                host,
                port,
                devices,
                clients=clients,
                duration_seconds=duration_seconds,
                hostile_fraction=hostile_fraction,
                rounds=rounds,
                algorithm=algorithm,
                timeout=timeout,
                fault_plan=fault_plan,
            )
        )

    hostile_total = int(round(clients * hostile_fraction))
    base, extra = divmod(clients, processes)
    jobs: List[dict] = []
    cursor = 0
    for worker_index in range(processes):
        slice_clients = base + (1 if worker_index < extra else 0)
        if slice_clients == 0:
            continue
        slice_hostile = max(0, min(slice_clients, hostile_total))
        hostile_total -= slice_hostile
        slice_devices = None
        slice_ids = None
        if pack is not None:
            # Round-robin the fleet across workers so every device stays hot.
            slice_ids = [
                device_ids[(cursor + offset) % len(device_ids)]
                for offset in range(slice_clients)
            ]
        else:
            slice_devices = [
                devices[(cursor + offset) % len(devices)]
                for offset in range(slice_clients)
            ]
        jobs.append(
            {
                "host": host,
                "port": port,
                "devices": slice_devices,
                "pack": pack,
                "device_ids": slice_ids,
                "clients": slice_clients,
                "duration_seconds": duration_seconds,
                "hostile_clients": slice_hostile,
                "rounds": rounds,
                "algorithm": algorithm,
                "timeout": timeout,
            }
        )
        cursor += slice_clients
    merged = LoadReport(clients=0, duration_seconds=duration_seconds)
    with WorkerPool(len(jobs)) as pool:
        for result in pool.map(_load_worker, jobs):
            merged.merge(LoadReport(**result))
    return merged
