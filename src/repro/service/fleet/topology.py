"""Fleet topology: rendezvous-hashing device ids onto shards.

A fleet is N independent :class:`~repro.service.server.PpufAuthServer`
processes; the :class:`ShardMap` decides, for every ``device_id``, which
shard owns it.  Ownership uses *rendezvous (highest-random-weight)
hashing*: each shard's score for a device is
``SHA-256(shard_name | device_id)`` and the highest score wins.  The
properties that matter at fleet scale:

* **deterministic** — routing is a pure function of the shard names and
  the device id, so every router instance (and a restarted one) agrees
  without coordination, and a device's session state always lives on one
  shard;
* **stable under membership change** — removing a shard remaps *only*
  the devices that shard owned (they fall to their second-highest
  scorer); adding one steals only the devices it now wins.  No global
  reshuffle, unlike modulo hashing;
* **restart-proof** — identity is the shard *name*, not its address: a
  shard respawned by the supervisor on a fresh ephemeral port keeps its
  name and therefore its device population.

Membership changes are two-phase (*drain, then remove*): ``drain`` makes
a shard ineligible for new sessions while existing connections finish;
``remove`` drops it.  Descriptors serialise to plain dicts so a topology
can cross process boundaries or be published for external routers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import ServiceError

#: Shard lifecycle states.  Only ``active`` shards receive new sessions;
#: ``draining`` shards finish what they have; ``down`` shards are being
#: restarted by the supervisor and are skipped by the router.
ACTIVE = "active"
DRAINING = "draining"
DOWN = "down"

SHARD_STATES = (ACTIVE, DRAINING, DOWN)


@dataclass
class ShardDescriptor:
    """One shard's identity and address.

    ``name`` is the stable routing identity (rendezvous scores hash it);
    ``host``/``port`` are where the shard currently listens and may change
    across restarts without moving any devices.
    """

    name: str
    host: str = "127.0.0.1"
    port: int = 0
    state: str = ACTIVE

    def __post_init__(self):
        if not self.name:
            raise ServiceError("shard name must be non-empty")
        if self.state not in SHARD_STATES:
            raise ServiceError(
                f"shard state must be one of {SHARD_STATES}, got {self.state!r}"
            )

    @property
    def routable(self) -> bool:
        return self.state == ACTIVE

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardDescriptor":
        try:
            return cls(
                name=str(payload["name"]),
                host=str(payload.get("host", "127.0.0.1")),
                port=int(payload.get("port", 0)),
                state=str(payload.get("state", ACTIVE)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed shard descriptor: {error}") from error


def shard_score(shard_name: str, device_id: str) -> int:
    """The rendezvous weight of ``shard_name`` for ``device_id``.

    SHA-256 over ``name|device_id`` read as a big-endian integer — the
    same digest family the registry derives device ids with, so scores
    are uniform over the id space and identical in every process.
    """
    digest = hashlib.sha256(f"{shard_name}|{device_id}".encode("utf-8")).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """The routing table: shard descriptors plus rendezvous ownership."""

    def __init__(self, shards: Iterable[ShardDescriptor] = ()):
        self._shards: Dict[str, ShardDescriptor] = {}
        for descriptor in shards:
            self.add(descriptor)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, descriptor: ShardDescriptor) -> ShardDescriptor:
        """Add a shard; its name must be new (use :meth:`update` to move)."""
        if descriptor.name in self._shards:
            raise ServiceError(f"shard {descriptor.name!r} already in the map")
        self._shards[descriptor.name] = descriptor
        return descriptor

    def update(self, descriptor: ShardDescriptor) -> ShardDescriptor:
        """Replace a known shard's descriptor (restart → new port/state)."""
        if descriptor.name not in self._shards:
            raise ServiceError(f"unknown shard {descriptor.name!r}")
        self._shards[descriptor.name] = descriptor
        return descriptor

    def drain(self, name: str) -> ShardDescriptor:
        """Phase one of removal: stop routing new sessions to ``name``."""
        descriptor = self.get(name)
        descriptor.state = DRAINING
        return descriptor

    def set_state(self, name: str, state: str) -> ShardDescriptor:
        if state not in SHARD_STATES:
            raise ServiceError(
                f"shard state must be one of {SHARD_STATES}, got {state!r}"
            )
        descriptor = self.get(name)
        descriptor.state = state
        return descriptor

    def remove(self, name: str) -> ShardDescriptor:
        """Phase two: drop the shard from the map entirely."""
        try:
            return self._shards.pop(name)
        except KeyError:
            raise ServiceError(f"unknown shard {name!r}") from None

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> ShardDescriptor:
        try:
            return self._shards[name]
        except KeyError:
            raise ServiceError(f"unknown shard {name!r}") from None

    def shards(self) -> List[ShardDescriptor]:
        """All shards, sorted by name (deterministic iteration order)."""
        return [self._shards[name] for name in sorted(self._shards)]

    def routable_shards(self) -> List[ShardDescriptor]:
        return [shard for shard in self.shards() if shard.routable]

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_for(self, device_id: str) -> ShardDescriptor:
        """The active shard that owns ``device_id`` (highest rendezvous score)."""
        best: Optional[ShardDescriptor] = None
        best_score = -1
        for shard in self._shards.values():
            if not shard.routable:
                continue
            score = shard_score(shard.name, device_id)
            if score > best_score:
                best, best_score = shard, score
        if best is None:
            raise ServiceError("no active shard available for routing")
        return best

    def assignments(self, device_ids: Iterable[str]) -> Dict[str, List[str]]:
        """Owner name → owned device ids, for capacity planning and tests."""
        owned: Dict[str, List[str]] = {name: [] for name in self._shards}
        for device_id in device_ids:
            owned[self.shard_for(device_id).name].append(device_id)
        return owned

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"shards": [shard.to_dict() for shard in self.shards()]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardMap":
        shards = payload.get("shards")
        if not isinstance(shards, list):
            raise ServiceError("shard map payload must carry a 'shards' list")
        return cls(ShardDescriptor.from_dict(entry) for entry in shards)


# Re-exported convenience: default shard names for an N-shard fleet.
def default_shard_names(count: int) -> List[str]:
    if count < 1:
        raise ServiceError(f"a fleet needs >= 1 shard, got {count}")
    return [f"shard-{index}" for index in range(count)]
