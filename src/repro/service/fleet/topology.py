"""Fleet topology: rendezvous-hashing device ids onto shards.

A fleet is N independent :class:`~repro.service.server.PpufAuthServer`
processes; the :class:`ShardMap` decides, for every ``device_id``, which
shard owns it.  Ownership uses *rendezvous (highest-random-weight)
hashing*: each shard's score for a device is
``SHA-256(shard_name | device_id)`` and the highest score wins.  The
properties that matter at fleet scale:

* **deterministic** — routing is a pure function of the shard names and
  the device id, so every router instance (and a restarted one) agrees
  without coordination, and a device's session state always lives on one
  shard;
* **stable under membership change** — removing a shard remaps *only*
  the devices that shard owned (they fall to their second-highest
  scorer); adding one steals only the devices it now wins.  No global
  reshuffle, unlike modulo hashing;
* **restart-proof** — identity is the shard *name*, not its address: a
  shard respawned by the supervisor on a fresh ephemeral port keeps its
  name and therefore its device population.

Membership changes are two-phase (*drain, then remove*): ``drain`` makes
a shard ineligible for new sessions while existing connections finish;
``remove`` drops it.  Descriptors serialise to plain dicts so a topology
can cross process boundaries or be published for external routers (the
shard-map file, :mod:`repro.service.fleet.mapfile`).

Descriptors are *immutable* (frozen dataclasses) and every state change
replaces the stored descriptor instead of mutating it — copy-on-write.
That makes a snapshot taken via :meth:`ShardMap.shards` a true snapshot:
a later ``drain`` cannot silently rewrite state inside a list someone
captured earlier (a router mid-reload, a supervisor event log, a test).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.errors import ServiceError

#: Shard lifecycle states.  Only ``active`` shards receive new sessions;
#: ``draining`` shards finish what they have; ``down`` shards are being
#: restarted by the supervisor and are skipped by the router.
ACTIVE = "active"
DRAINING = "draining"
DOWN = "down"

SHARD_STATES = (ACTIVE, DRAINING, DOWN)


@dataclass(frozen=True)
class ShardDescriptor:
    """One shard's identity and address.

    ``name`` is the stable routing identity (rendezvous scores hash it);
    ``host``/``port`` are where the shard currently listens and may change
    across restarts without moving any devices.  ``port=0`` means "not
    bound yet" — a placeholder published by ``fleet scale`` that the
    supervisor replaces with the real ephemeral port once the worker
    reports it.

    Instances are frozen: state transitions go through
    :meth:`with_state` (or :meth:`ShardMap.set_state`), which return a
    *new* descriptor — previously captured snapshots never change.
    """

    name: str
    host: str = "127.0.0.1"
    port: int = 0
    state: str = ACTIVE

    def __post_init__(self):
        if not self.name:
            raise ServiceError("shard name must be non-empty")
        if not isinstance(self.host, str) or not self.host.strip():
            raise ServiceError(
                f"shard {self.name!r} field 'host' must be a non-blank "
                f"string, got {self.host!r}"
            )
        if not 0 <= self.port <= 65535:
            raise ServiceError(
                f"shard {self.name!r} field 'port' out of range 0..65535: "
                f"{self.port}"
            )
        if self.state not in SHARD_STATES:
            raise ServiceError(
                f"shard state must be one of {SHARD_STATES}, got {self.state!r}"
            )

    def with_state(self, state: str) -> "ShardDescriptor":
        """A copy of this descriptor in ``state`` (validated on build)."""
        return replace(self, state=state)

    @property
    def routable(self) -> bool:
        return self.state == ACTIVE

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardDescriptor":
        try:
            return cls(
                name=str(payload["name"]),
                host=str(payload.get("host", "127.0.0.1")),
                port=int(payload.get("port", 0)),
                state=str(payload.get("state", ACTIVE)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed shard descriptor: {error}") from error


def shard_score(shard_name: str, device_id: str) -> int:
    """The rendezvous weight of ``shard_name`` for ``device_id``.

    SHA-256 over ``name|device_id`` read as a big-endian integer — the
    same digest family the registry derives device ids with, so scores
    are uniform over the id space and identical in every process.
    """
    digest = hashlib.sha256(f"{shard_name}|{device_id}".encode("utf-8")).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """The routing table: shard descriptors plus rendezvous ownership."""

    def __init__(self, shards: Iterable[ShardDescriptor] = ()):
        self._shards: Dict[str, ShardDescriptor] = {}
        for descriptor in shards:
            self.add(descriptor)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, descriptor: ShardDescriptor) -> ShardDescriptor:
        """Add a shard; its name must be new (use :meth:`update` to move)."""
        if descriptor.name in self._shards:
            raise ServiceError(f"shard {descriptor.name!r} already in the map")
        self._shards[descriptor.name] = descriptor
        return descriptor

    def update(self, descriptor: ShardDescriptor) -> ShardDescriptor:
        """Replace a known shard's descriptor (restart → new port/state)."""
        if descriptor.name not in self._shards:
            raise ServiceError(f"unknown shard {descriptor.name!r}")
        self._shards[descriptor.name] = descriptor
        return descriptor

    def drain(self, name: str) -> ShardDescriptor:
        """Phase one of removal: stop routing new sessions to ``name``.

        Copy-on-write: the stored descriptor is *replaced* by a draining
        copy, which is returned.  Snapshots taken before the drain keep
        the old state.
        """
        return self.set_state(name, DRAINING)

    def set_state(self, name: str, state: str) -> ShardDescriptor:
        """Replace ``name``'s descriptor with a copy in ``state``."""
        if state not in SHARD_STATES:
            raise ServiceError(
                f"shard state must be one of {SHARD_STATES}, got {state!r}"
            )
        descriptor = self.get(name).with_state(state)
        self._shards[name] = descriptor
        return descriptor

    def remove(self, name: str) -> ShardDescriptor:
        """Phase two: drop the shard from the map entirely."""
        try:
            return self._shards.pop(name)
        except KeyError:
            raise ServiceError(f"unknown shard {name!r}") from None

    def replace_all(self, descriptors: Iterable[ShardDescriptor]) -> None:
        """Swap the whole membership in one step (shard-map file reload).

        The map *object* keeps its identity — a router or supervisor
        holding it by reference sees the new membership on its next
        lookup — while the membership is rebuilt atomically: either the
        old set or the new one, never a half-applied mix.
        """
        fresh: Dict[str, ShardDescriptor] = {}
        for descriptor in descriptors:
            if descriptor.name in fresh:
                raise ServiceError(
                    f"duplicate shard {descriptor.name!r} in replacement set"
                )
            fresh[descriptor.name] = descriptor
        self._shards = fresh

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> ShardDescriptor:
        try:
            return self._shards[name]
        except KeyError:
            raise ServiceError(f"unknown shard {name!r}") from None

    def shards(self) -> List[ShardDescriptor]:
        """All shards, sorted by name (deterministic iteration order)."""
        return [self._shards[name] for name in sorted(self._shards)]

    def routable_shards(self) -> List[ShardDescriptor]:
        return [shard for shard in self.shards() if shard.routable]

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_for(self, device_id: str) -> ShardDescriptor:
        """The active shard that owns ``device_id`` (highest rendezvous score)."""
        best: Optional[ShardDescriptor] = None
        best_score = -1
        for shard in self._shards.values():
            if not shard.routable:
                continue
            score = shard_score(shard.name, device_id)
            if score > best_score:
                best, best_score = shard, score
        if best is None:
            raise ServiceError(self.no_shard_reason())
        return best

    def no_shard_reason(self) -> str:
        """Why routing is impossible right now — drain vs outage.

        An operator watching ERROR frames must be able to tell a planned
        drain ("come back in a minute") from an empty or dead fleet (page
        someone), so the three conditions get three distinct messages.
        """
        if not self._shards:
            return "no shard available for routing: the shard map is empty"
        draining = sum(1 for s in self._shards.values() if s.state == DRAINING)
        down = sum(1 for s in self._shards.values() if s.state == DOWN)
        if draining:
            return (
                "no active shard available for routing: fleet is draining "
                f"({draining} draining, {down} down of {len(self._shards)} "
                "shards)"
            )
        return (
            "no active shard available for routing: fleet is down "
            f"(all {len(self._shards)} shards down)"
        )

    def assignments(self, device_ids: Iterable[str]) -> Dict[str, List[str]]:
        """Owner name → owned device ids, for capacity planning and tests."""
        owned: Dict[str, List[str]] = {name: [] for name in self._shards}
        for device_id in device_ids:
            owned[self.shard_for(device_id).name].append(device_id)
        return owned

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"shards": [shard.to_dict() for shard in self.shards()]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardMap":
        shards = payload.get("shards")
        if not isinstance(shards, list):
            raise ServiceError("shard map payload must carry a 'shards' list")
        return cls(ShardDescriptor.from_dict(entry) for entry in shards)


# Re-exported convenience: default shard names for an N-shard fleet.
def default_shard_names(count: int) -> List[str]:
    if count < 1:
        raise ServiceError(f"a fleet needs >= 1 shard, got {count}")
    return [f"shard-{index}" for index in range(count)]
