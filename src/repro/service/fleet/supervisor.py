"""Shard lifecycle: spawn, health-check, restart.

:class:`FleetSupervisor` turns ``repro serve`` into a horizontally scaled
fleet: it spawns N shard workers as subprocesses — each one a full
:class:`~repro.service.server.PpufAuthServer` with its own asyncio loop
and verification pool, all mapping the *same* artifact pack read-only, so
the fleet's artifact bytes exist once on disk and once in the page cache
no matter how many shards serve them.  Workers bind ``port=0`` and report
the ephemeral port back on stdout as a machine-readable
``{"event": "listening", "port": …}`` line; the supervisor records it in
the shared :class:`~repro.service.fleet.topology.ShardMap` that the
router routes from.

Health: a monitor task polls each worker — process liveness first, then a
wire ``STATS`` probe (a server that answers STATS has a live event loop,
registry and stats spine).  A dead or repeatedly unresponsive shard is
marked ``down`` in the map (the router stops sending it connections),
killed if needed, and respawned with seeded exponential backoff reusing
:class:`~repro.service.resilience.RetryPolicy` — the same deterministic
schedule the client retries with.  The respawned worker keeps its shard
*name* (so rendezvous routing is undisturbed) but gets a fresh ephemeral
port, which the map update propagates to the router instantly.

Shutdown is drain-friendly: workers get SIGTERM first — ``repro serve``
installs handlers that stop the listener and drain in-flight
verifications — and SIGKILL only after a grace period.

With a ``map_file`` the supervisor becomes one *participant* in a shared
fleet instead of its sole owner.  The shard-map file
(:mod:`repro.service.fleet.mapfile`) is authoritative for **membership
and desired state**; the supervisor stays authoritative for the
**addresses** of workers it spawned (it publishes their ephemeral ports
into the file).  A watch task reconciles every published version:

* a placeholder descriptor (``port=0``, local host) with an unknown name
  is a **spawn request** — ``repro fleet scale`` publishes these and the
  supervisor turns them into workers, then publishes the real port;
* an unknown name with a *foreign* address is **adopted as a remote
  shard**: probed via wire ``STATS`` like a local worker but never
  spawned, restarted, or signalled — its own supervisor does that;
* a local shard marked ``draining`` starts the drain lifecycle: poll
  STATS until the shard *settles* (:func:`~repro.service.stats.shard_settled`
  over consecutive snapshot deltas), delete it from the map, SIGTERM the
  worker — so ``repro fleet drain`` against the file decommissions a
  live shard with zero dropped sessions;
* a name deleted from the file is decommissioned immediately (SIGTERM
  for local workers, released for remote ones).
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import ServiceError
from repro.service import wire
from repro.service.fleet.mapfile import ShardMapFile
from repro.service.fleet.topology import (
    ACTIVE,
    DOWN,
    DRAINING,
    ShardDescriptor,
    ShardMap,
    default_shard_names,
)
from repro.service.resilience import RetryPolicy
from repro.service.stats import shard_settled

logger = logging.getLogger(__name__)


class _NoChange(Exception):
    """Raised inside a map-file mutator to abort a no-op publish."""

#: Default wall-clock budget [s] for a worker to report its listening port.
DEFAULT_STARTUP_TIMEOUT = 60.0


@dataclass
class ShardWorkerSpec:
    """What every shard worker serves — the ``repro serve`` flag set.

    One spec describes the whole fleet; per-shard variation is limited to
    the seed (offset by shard index so challenge streams differ) and the
    ephemeral port.
    """

    pack: Optional[str] = None
    registry: Optional[str] = None
    workers: int = 0
    rounds: int = 4
    deadline_seconds: float = 5.0
    idle_timeout: float = 60.0
    connection_timeout: float = 300.0
    verify_timeout: float = 60.0
    max_connections: int = 256
    allow_enroll: bool = True
    use_compiled: bool = True
    seed: Optional[int] = None
    host: str = "127.0.0.1"

    def serve_args(self, shard_index: int) -> List[str]:
        """The ``repro serve`` argv tail for shard ``shard_index``."""
        args = [
            "serve",
            "--host", self.host,
            "--port", "0",
            "--workers", str(self.workers),
            "--rounds", str(self.rounds),
            "--deadline", str(self.deadline_seconds),
            "--idle-timeout", str(self.idle_timeout),
            "--timeout", str(self.connection_timeout),
            "--verify-timeout", str(self.verify_timeout),
            "--max-connections", str(self.max_connections),
        ]
        if self.pack:
            args += ["--pack", self.pack]
        if self.registry:
            args += ["--registry", self.registry]
        if self.seed is not None:
            args += ["--seed", str(self.seed + shard_index)]
        if not self.allow_enroll:
            args.append("--no-enroll")
        if not self.use_compiled:
            args.append("--no-compiled")
        return args


@dataclass
class ShardWorker:
    """One supervised shard: its process handle and restart history.

    ``remote=True`` marks a shard this supervisor adopted from the shard-map
    file but did not spawn: it is probed for health like a local worker but
    never restarted or signalled — its own supervisor owns its process.
    """

    name: str
    index: int
    process: Optional[asyncio.subprocess.Process] = None
    restarts: int = 0
    probe_failures: int = 0
    remote: bool = False
    host: str = ""
    port: int = 0
    draining: bool = False
    stdout_drain: Optional[asyncio.Task] = field(default=None, repr=False)
    drain_task: Optional[asyncio.Task] = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None


def _worker_env() -> dict:
    """Subprocess env with the live ``repro`` package importable."""
    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return env


async def probe_stats(host: str, port: int, *, timeout: float = 5.0) -> dict:
    """One wire ``STATS`` round trip; raises on anything unhealthy."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port, limit=wire.MAX_LINE_BYTES),
        timeout=timeout,
    )
    try:
        await wire.write_message(writer, {"type": wire.STATS})
        reply = await wire.read_message(reader, timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    if reply is None or reply.get("type") != wire.STATS:
        raise ServiceError(f"unhealthy stats reply: {reply!r}")
    return reply["stats"]


class FleetSupervisor:
    """Spawn and babysit N shard workers behind one :class:`ShardMap`.

    Parameters
    ----------
    shards:
        Worker count; shard names are ``shard-0 … shard-{N-1}``.
    spec:
        The :class:`ShardWorkerSpec` every worker serves.
    shard_map:
        Routing table to populate — pass the one the router holds so
        membership changes propagate by reference.
    map_file:
        A :class:`~repro.service.fleet.mapfile.ShardMapFile` (or its path)
        to publish local shards into and reconcile membership from.  Give
        the supervisor its own instance — poll progress is per-watcher.
    map_poll_interval:
        Seconds between map-file polls (only with ``map_file``).
    probe_interval, probe_timeout, probe_failures_threshold:
        Health-check cadence; a worker failing ``threshold`` consecutive
        STATS probes is killed and restarted.
    restart_policy:
        Backoff schedule for respawns (seeded → deterministic in tests).
    startup_timeout:
        Budget [s] for a spawned worker to report its listening port.
    """

    def __init__(
        self,
        shards: int,
        spec: Optional[ShardWorkerSpec] = None,
        *,
        shard_map: Optional[ShardMap] = None,
        map_file: Optional[Union[str, os.PathLike, ShardMapFile]] = None,
        map_poll_interval: Optional[float] = None,
        probe_interval: float = 1.0,
        probe_timeout: float = 5.0,
        probe_failures_threshold: int = 3,
        restart_policy: Optional[RetryPolicy] = None,
        startup_timeout: float = DEFAULT_STARTUP_TIMEOUT,
    ):
        if shards < 1:
            raise ServiceError(f"a fleet needs >= 1 shard, got {shards}")
        self.spec = spec if spec is not None else ShardWorkerSpec()
        self.shard_map = shard_map if shard_map is not None else ShardMap()
        if isinstance(map_file, ShardMapFile) or map_file is None:
            self.map_file = map_file
        else:
            self.map_file = ShardMapFile(map_file)
        self.map_poll_interval = map_poll_interval
        self.map_version: Optional[int] = None
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_failures_threshold = probe_failures_threshold
        self.restart_policy = (
            restart_policy
            if restart_policy is not None
            else RetryPolicy(base_delay=0.2, max_delay=5.0, seed=0)
        )
        self.startup_timeout = startup_timeout
        self.workers: Dict[str, ShardWorker] = {
            name: ShardWorker(name=name, index=index)
            for index, name in enumerate(default_shard_names(shards))
        }
        self.events: List[dict] = []
        self._monitor: Optional[asyncio.Task] = None
        self._map_watch: Optional[asyncio.Task] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetSupervisor":
        for worker in self.workers.values():
            descriptor = await self._spawn(worker)
            if worker.name in self.shard_map:
                self.shard_map.update(descriptor)
            else:
                self.shard_map.add(descriptor)
        if self.map_file is not None:
            descriptors = [self.shard_map.get(name) for name in self.workers]

            def _publish(shard_map: ShardMap) -> None:
                for descriptor in descriptors:
                    if descriptor.name in shard_map:
                        shard_map.update(descriptor)
                    else:
                        shard_map.add(descriptor)

            self.map_file.mutate(_publish)
            # load() marks the published version seen, so the watch task
            # does not re-fire on our own write; reconciling it once here
            # adopts any shards other participants published earlier.
            file_map, version = self.map_file.load()
            await self._reconcile(file_map, version)
            self._map_watch = asyncio.create_task(
                self.map_file.watch(
                    self._reconcile, poll_interval=self.map_poll_interval
                )
            )
        self._monitor = asyncio.create_task(self._monitor_loop())
        return self

    async def stop(self, *, grace_seconds: float = 10.0) -> None:
        self._stopping = True
        for task_attr in ("_map_watch", "_monitor"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, task_attr, None)
        for worker in self.workers.values():
            if worker.drain_task is not None:
                worker.drain_task.cancel()
                worker.drain_task = None
        local = [worker for worker in self.workers.values() if not worker.remote]
        if self.map_file is not None and local:
            # Tell every other watcher these shards are going away before
            # their ports actually die.  Remote entries are not ours to
            # touch — their supervisor publishes their fate.
            names = [worker.name for worker in local]

            def _mark_down(shard_map: ShardMap) -> None:
                changed = False
                for name in names:
                    if name in shard_map and shard_map.get(name).state != DOWN:
                        shard_map.set_state(name, DOWN)
                        changed = True
                if not changed:
                    raise _NoChange()

            try:
                self.map_file.mutate(_mark_down)
            except (_NoChange, ServiceError):
                pass
        await asyncio.gather(
            *(
                self._stop_worker(worker, grace_seconds=grace_seconds)
                for worker in local
            )
        )

    async def __aenter__(self) -> "FleetSupervisor":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _record(self, event: str, worker: ShardWorker, **detail) -> None:
        entry = {"event": event, "shard": worker.name, **detail}
        self.events.append(entry)
        logger.info("fleet supervisor: %s", entry)

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    async def _spawn(self, worker: ShardWorker) -> ShardDescriptor:
        """Launch one worker and wait for its listening event."""
        argv = [sys.executable, "-m", "repro"] + self.spec.serve_args(worker.index)
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.PIPE,
            env=_worker_env(),
        )
        worker.process = process
        worker.probe_failures = 0
        try:
            port = await asyncio.wait_for(
                self._await_listening(process), timeout=self.startup_timeout
            )
        except asyncio.TimeoutError:
            process.kill()
            await process.wait()
            raise ServiceError(
                f"shard {worker.name!r} did not report a listening port within "
                f"{self.startup_timeout:g} s"
            ) from None
        worker.stdout_drain = asyncio.create_task(self._drain_stdout(process))
        worker.host = self.spec.host
        worker.port = port
        self._record("spawned", worker, pid=process.pid, port=port)
        return ShardDescriptor(
            name=worker.name, host=self.spec.host, port=port, state=ACTIVE
        )

    async def _await_listening(self, process: asyncio.subprocess.Process) -> int:
        """Read worker stdout until the ``listening`` event names a port."""
        while True:
            line = await process.stdout.readline()
            if not line:
                raise ServiceError(
                    "shard worker exited before reporting its listening port "
                    f"(exit code {process.returncode})"
                )
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # not every stdout line is ours
            if isinstance(event, dict) and event.get("event") == "listening":
                return int(event["port"])

    @staticmethod
    async def _drain_stdout(process: asyncio.subprocess.Process) -> None:
        """Keep the worker's stdout pipe from filling after startup."""
        try:
            while await process.stdout.readline():
                pass
        except (asyncio.CancelledError, ValueError):
            pass

    async def _stop_worker(
        self, worker: ShardWorker, *, grace_seconds: float
    ) -> None:
        process = worker.process
        if process is None:
            return
        if process.returncode is None:
            process.terminate()  # SIGTERM → the server drains and exits 0
            try:
                await asyncio.wait_for(process.wait(), timeout=grace_seconds)
            except asyncio.TimeoutError:
                logger.warning(
                    "shard %s ignored SIGTERM for %g s; killing",
                    worker.name,
                    grace_seconds,
                )
                process.kill()
                await process.wait()
        if worker.stdout_drain is not None:
            worker.stdout_drain.cancel()
            try:
                await worker.stdout_drain
            except asyncio.CancelledError:
                pass
            worker.stdout_drain = None
        self._record("stopped", worker, exit_code=process.returncode)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _next_index(self) -> int:
        return 1 + max((worker.index for worker in self.workers.values()), default=-1)

    async def add_shard(self) -> ShardDescriptor:
        """Grow the fleet by one worker (rendezvous steals only its share)."""
        name = f"shard-{len(self.workers)}"
        while name in self.workers:  # names must stay unique across history
            name = f"shard-{int(name.rsplit('-', 1)[1]) + 1}"
        worker = ShardWorker(name=name, index=self._next_index())
        self.workers[name] = worker
        descriptor = await self._spawn(worker)
        self._publish_descriptor(descriptor)
        return descriptor

    async def drain_shard(self, name: str) -> None:
        """Start the graceful decommission of ``name`` (returns at once).

        The full lifecycle runs in the background: mark ``draining`` (the
        router stops pinning new sessions, splices in flight continue) →
        poll STATS until the shard settles → delete it from the map →
        SIGTERM its worker.  Idempotent while a drain is in progress.
        """
        worker = self.workers.get(name)
        if worker is None:
            raise ServiceError(f"unknown shard {name!r}")
        if worker.draining:
            return
        self._set_state(name, DRAINING)
        self._begin_drain(worker)

    async def remove_shard(
        self, name: str, *, grace_seconds: float = 10.0
    ) -> None:
        """Force-remove one shard *now* — no settle wait, sessions pinned
        to it are cut.  Use :meth:`drain_shard` for the graceful path."""
        worker = self.workers.get(name)
        if worker is None:
            raise ServiceError(f"unknown shard {name!r}")
        if name in self.shard_map:
            self.shard_map.drain(name)
        self._delete_from_file(name)
        await self._decommission(worker, grace_seconds=grace_seconds)

    # ------------------------------------------------------------------
    # shard-map file: publishing and reconciliation
    # ------------------------------------------------------------------
    def _publish_descriptor(self, descriptor: ShardDescriptor) -> None:
        """Upsert ``descriptor`` into the in-process map and the file."""
        if descriptor.name in self.shard_map:
            self.shard_map.update(descriptor)
        else:
            self.shard_map.add(descriptor)
        if self.map_file is None:
            return

        def _upsert(shard_map: ShardMap) -> None:
            if descriptor.name in shard_map:
                shard_map.update(descriptor)
            else:
                shard_map.add(descriptor)

        self.map_file.mutate(_upsert)

    def _set_state(self, name: str, state: str) -> None:
        """Publish a state transition to the map (and file), if it changes."""
        if name in self.shard_map:
            self.shard_map.set_state(name, state)
        if self.map_file is None:
            return

        def _apply(shard_map: ShardMap) -> None:
            if name not in shard_map or shard_map.get(name).state == state:
                raise _NoChange()
            shard_map.set_state(name, state)

        try:
            self.map_file.mutate(_apply)
        except _NoChange:
            pass

    def _delete_from_file(self, name: str) -> None:
        if self.map_file is None:
            return

        def _drop(shard_map: ShardMap) -> None:
            if name not in shard_map:
                raise _NoChange()
            shard_map.remove(name)

        try:
            self.map_file.mutate(_drop)
        except _NoChange:
            pass

    def _is_spawn_request(self, descriptor: ShardDescriptor) -> bool:
        """``fleet scale`` placeholder: local host, no port bound yet.

        The ``down`` state requirement keeps a placeholder that was
        drained before anyone spawned it from being resurrected.
        """
        return (
            descriptor.port == 0
            and descriptor.host == self.spec.host
            and descriptor.state == DOWN
        )

    async def _reconcile(self, file_map: ShardMap, version: int) -> None:
        """Make local reality match one published version of the map.

        The file is authoritative for membership and desired state; this
        supervisor is authoritative for the addresses of workers it
        spawned.  Reconciles are idempotent and serialized (they run only
        in the watch task, or in :meth:`start` before it exists), so a
        version observed twice or a half-applied previous attempt heals.
        """
        self.map_version = version
        to_spawn: List[ShardDescriptor] = []
        for descriptor in file_map.shards():
            worker = self.workers.get(descriptor.name)
            if worker is None:
                if self._is_spawn_request(descriptor):
                    if not self._stopping:
                        to_spawn.append(descriptor)
                elif descriptor.port == 0:
                    # another host's spawn request, or a placeholder
                    # drained before anyone bound it — nothing to adopt
                    pass
                else:
                    worker = ShardWorker(
                        name=descriptor.name,
                        index=self._next_index(),
                        remote=True,
                        host=descriptor.host,
                        port=descriptor.port,
                        draining=descriptor.state == DRAINING,
                    )
                    self.workers[descriptor.name] = worker
                    self._record(
                        "adopted", worker, host=descriptor.host, port=descriptor.port
                    )
                continue
            if worker.remote:
                worker.host, worker.port = descriptor.host, descriptor.port
                worker.draining = descriptor.state == DRAINING
            elif descriptor.state == DRAINING and not worker.draining:
                # an operator (or another host's CLI) marked our shard
                # draining in the file — we own its settle-and-remove
                worker.draining = True
                self._begin_drain(worker)
        for name in list(self.workers):
            if name not in file_map:
                await self._decommission(self.workers[name])
        # the router-visible map mirrors the file; our just-spawned ports
        # reach it through _publish_descriptor's next version
        self.shard_map.replace_all(file_map.shards())
        for descriptor in to_spawn:
            worker = ShardWorker(name=descriptor.name, index=self._next_index())
            self.workers[descriptor.name] = worker
            try:
                spawned = await self._spawn(worker)
            except ServiceError as error:
                self._record("respawn_failed", worker, error=str(error))
                del self.workers[descriptor.name]
                continue
            self._publish_descriptor(spawned)

    def _begin_drain(self, worker: ShardWorker) -> None:
        worker.draining = True
        worker.probe_failures = 0
        self._record("draining", worker)
        worker.drain_task = asyncio.create_task(self._drain_to_removal(worker))

    async def _drain_to_removal(self, worker: ShardWorker) -> None:
        """Poll STATS until the shard settles, then delete it from the map.

        With a map file the deletion is published there and the watch
        task's reconcile performs the actual decommission — so every
        participant (other routers, the shard's own supervisor if it is
        remote) observes the same removal in the same version order.
        """
        previous: Optional[dict] = None
        while True:
            try:
                current = await probe_stats(
                    worker.host, worker.port, timeout=self.probe_timeout
                )
            except (ServiceError, OSError, asyncio.TimeoutError):
                break  # already dead — nothing left to settle
            if previous is not None and shard_settled(previous, current):
                break
            previous = current
            await asyncio.sleep(self.probe_interval)
        self._record("settled", worker)
        self._delete_from_file(worker.name)
        if self.map_file is None:
            await self._decommission(worker)

    async def _decommission(
        self, worker: ShardWorker, *, grace_seconds: float = 10.0
    ) -> None:
        """Tear one shard out of this supervisor's world (map already knows)."""
        if worker.drain_task is not None and worker.drain_task is not asyncio.current_task():
            worker.drain_task.cancel()
        worker.drain_task = None
        if worker.remote:
            self._record("released", worker)  # not ours to SIGTERM
        else:
            await self._stop_worker(worker, grace_seconds=grace_seconds)
        self.workers.pop(worker.name, None)
        if worker.name in self.shard_map:
            self.shard_map.remove(worker.name)

    # ------------------------------------------------------------------
    # health monitoring
    # ------------------------------------------------------------------
    async def _monitor_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval)
            for worker in list(self.workers.values()):
                try:
                    await self._check_worker(worker)
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 — the monitor must keep monitoring
                    logger.exception(
                        "health check of shard %s failed; continuing", worker.name
                    )

    async def _check_worker(self, worker: ShardWorker) -> None:
        if worker.remote:
            await self._check_remote(worker)
            return
        if worker.draining:
            # A draining worker that died has, by definition, settled.
            # Never restart it — finish the removal instead.
            if not worker.alive:
                self._record(
                    "died",
                    worker,
                    exit_code=worker.process.returncode if worker.process else None,
                )
                self._delete_from_file(worker.name)
                if self.map_file is None:
                    await self._decommission(worker)
            return
        if not worker.alive:
            self._record(
                "died",
                worker,
                exit_code=worker.process.returncode if worker.process else None,
            )
            await self._restart(worker)
            return
        if worker.name not in self.shard_map:
            return
        descriptor = self.shard_map.get(worker.name)
        if not descriptor.routable:
            return
        try:
            await probe_stats(
                descriptor.host, descriptor.port, timeout=self.probe_timeout
            )
        except (ServiceError, OSError, asyncio.TimeoutError) as error:
            worker.probe_failures += 1
            self._record(
                "probe_failed",
                worker,
                failures=worker.probe_failures,
                error=str(error),
            )
            if worker.probe_failures >= self.probe_failures_threshold:
                if worker.process is not None and worker.process.returncode is None:
                    worker.process.kill()
                    await worker.process.wait()
                await self._restart(worker)
        else:
            worker.probe_failures = 0

    async def _check_remote(self, worker: ShardWorker) -> None:
        """Probe an adopted shard; flip it active/down in the shared map.

        Never spawns or signals — the remote's own supervisor owns its
        process.  State transitions respect the drain lifecycle: a
        ``draining`` shard is neither resurrected to ``active`` on a good
        probe nor demoted to ``down`` on a bad one (its owner is already
        tearing it down).
        """
        if worker.name not in self.shard_map:
            return
        state = self.shard_map.get(worker.name).state
        if state == DRAINING:
            return
        try:
            await probe_stats(worker.host, worker.port, timeout=self.probe_timeout)
        except (ServiceError, OSError, asyncio.TimeoutError) as error:
            worker.probe_failures += 1
            self._record(
                "probe_failed",
                worker,
                failures=worker.probe_failures,
                error=str(error),
            )
            if worker.probe_failures >= self.probe_failures_threshold and state == ACTIVE:
                self._set_state(worker.name, DOWN)
        else:
            if state == DOWN:
                self._record("remote_recovered", worker)
                self._set_state(worker.name, ACTIVE)
            worker.probe_failures = 0

    async def _restart(self, worker: ShardWorker) -> None:
        """Respawn a dead shard: mark down, back off, spawn, re-activate."""
        if self._stopping:
            return
        self._set_state(worker.name, DOWN)
        if worker.stdout_drain is not None:
            worker.stdout_drain.cancel()
            worker.stdout_drain = None
        worker.restarts += 1
        delay = self.restart_policy.delay(min(worker.restarts, 16))
        self._record("restarting", worker, attempt=worker.restarts, backoff=delay)
        await asyncio.sleep(delay)
        try:
            descriptor = await self._spawn(worker)
        except ServiceError as error:
            self._record("respawn_failed", worker, error=str(error))
            return  # the next monitor tick sees the dead worker and retries
        self._publish_descriptor(descriptor)

    # ------------------------------------------------------------------
    def restarts(self) -> Dict[str, int]:
        return {name: worker.restarts for name, worker in self.workers.items()}
