"""Shard lifecycle: spawn, health-check, restart.

:class:`FleetSupervisor` turns ``repro serve`` into a horizontally scaled
fleet: it spawns N shard workers as subprocesses — each one a full
:class:`~repro.service.server.PpufAuthServer` with its own asyncio loop
and verification pool, all mapping the *same* artifact pack read-only, so
the fleet's artifact bytes exist once on disk and once in the page cache
no matter how many shards serve them.  Workers bind ``port=0`` and report
the ephemeral port back on stdout as a machine-readable
``{"event": "listening", "port": …}`` line; the supervisor records it in
the shared :class:`~repro.service.fleet.topology.ShardMap` that the
router routes from.

Health: a monitor task polls each worker — process liveness first, then a
wire ``STATS`` probe (a server that answers STATS has a live event loop,
registry and stats spine).  A dead or repeatedly unresponsive shard is
marked ``down`` in the map (the router stops sending it connections),
killed if needed, and respawned with seeded exponential backoff reusing
:class:`~repro.service.resilience.RetryPolicy` — the same deterministic
schedule the client retries with.  The respawned worker keeps its shard
*name* (so rendezvous routing is undisturbed) but gets a fresh ephemeral
port, which the map update propagates to the router instantly.

Shutdown is drain-friendly: workers get SIGTERM first — ``repro serve``
installs handlers that stop the listener and drain in-flight
verifications — and SIGKILL only after a grace period.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.service import wire
from repro.service.fleet.topology import (
    ACTIVE,
    DOWN,
    ShardDescriptor,
    ShardMap,
    default_shard_names,
)
from repro.service.resilience import RetryPolicy

logger = logging.getLogger(__name__)

#: Default wall-clock budget [s] for a worker to report its listening port.
DEFAULT_STARTUP_TIMEOUT = 60.0


@dataclass
class ShardWorkerSpec:
    """What every shard worker serves — the ``repro serve`` flag set.

    One spec describes the whole fleet; per-shard variation is limited to
    the seed (offset by shard index so challenge streams differ) and the
    ephemeral port.
    """

    pack: Optional[str] = None
    registry: Optional[str] = None
    workers: int = 0
    rounds: int = 4
    deadline_seconds: float = 5.0
    idle_timeout: float = 60.0
    connection_timeout: float = 300.0
    verify_timeout: float = 60.0
    max_connections: int = 256
    allow_enroll: bool = True
    use_compiled: bool = True
    seed: Optional[int] = None
    host: str = "127.0.0.1"

    def serve_args(self, shard_index: int) -> List[str]:
        """The ``repro serve`` argv tail for shard ``shard_index``."""
        args = [
            "serve",
            "--host", self.host,
            "--port", "0",
            "--workers", str(self.workers),
            "--rounds", str(self.rounds),
            "--deadline", str(self.deadline_seconds),
            "--idle-timeout", str(self.idle_timeout),
            "--timeout", str(self.connection_timeout),
            "--verify-timeout", str(self.verify_timeout),
            "--max-connections", str(self.max_connections),
        ]
        if self.pack:
            args += ["--pack", self.pack]
        if self.registry:
            args += ["--registry", self.registry]
        if self.seed is not None:
            args += ["--seed", str(self.seed + shard_index)]
        if not self.allow_enroll:
            args.append("--no-enroll")
        if not self.use_compiled:
            args.append("--no-compiled")
        return args


@dataclass
class ShardWorker:
    """One supervised shard: its process handle and restart history."""

    name: str
    index: int
    process: Optional[asyncio.subprocess.Process] = None
    restarts: int = 0
    probe_failures: int = 0
    stdout_drain: Optional[asyncio.Task] = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None


def _worker_env() -> dict:
    """Subprocess env with the live ``repro`` package importable."""
    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return env


async def probe_stats(host: str, port: int, *, timeout: float = 5.0) -> dict:
    """One wire ``STATS`` round trip; raises on anything unhealthy."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port, limit=wire.MAX_LINE_BYTES),
        timeout=timeout,
    )
    try:
        await wire.write_message(writer, {"type": wire.STATS})
        reply = await wire.read_message(reader, timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    if reply is None or reply.get("type") != wire.STATS:
        raise ServiceError(f"unhealthy stats reply: {reply!r}")
    return reply["stats"]


class FleetSupervisor:
    """Spawn and babysit N shard workers behind one :class:`ShardMap`.

    Parameters
    ----------
    shards:
        Worker count; shard names are ``shard-0 … shard-{N-1}``.
    spec:
        The :class:`ShardWorkerSpec` every worker serves.
    shard_map:
        Routing table to populate — pass the one the router holds so
        membership changes propagate by reference.
    probe_interval, probe_timeout, probe_failures_threshold:
        Health-check cadence; a worker failing ``threshold`` consecutive
        STATS probes is killed and restarted.
    restart_policy:
        Backoff schedule for respawns (seeded → deterministic in tests).
    startup_timeout:
        Budget [s] for a spawned worker to report its listening port.
    """

    def __init__(
        self,
        shards: int,
        spec: Optional[ShardWorkerSpec] = None,
        *,
        shard_map: Optional[ShardMap] = None,
        probe_interval: float = 1.0,
        probe_timeout: float = 5.0,
        probe_failures_threshold: int = 3,
        restart_policy: Optional[RetryPolicy] = None,
        startup_timeout: float = DEFAULT_STARTUP_TIMEOUT,
    ):
        if shards < 1:
            raise ServiceError(f"a fleet needs >= 1 shard, got {shards}")
        self.spec = spec if spec is not None else ShardWorkerSpec()
        self.shard_map = shard_map if shard_map is not None else ShardMap()
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_failures_threshold = probe_failures_threshold
        self.restart_policy = (
            restart_policy
            if restart_policy is not None
            else RetryPolicy(base_delay=0.2, max_delay=5.0, seed=0)
        )
        self.startup_timeout = startup_timeout
        self.workers: Dict[str, ShardWorker] = {
            name: ShardWorker(name=name, index=index)
            for index, name in enumerate(default_shard_names(shards))
        }
        self.events: List[dict] = []
        self._monitor: Optional[asyncio.Task] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetSupervisor":
        for worker in self.workers.values():
            descriptor = await self._spawn(worker)
            if worker.name in self.shard_map:
                self.shard_map.update(descriptor)
            else:
                self.shard_map.add(descriptor)
        self._monitor = asyncio.create_task(self._monitor_loop())
        return self

    async def stop(self, *, grace_seconds: float = 10.0) -> None:
        self._stopping = True
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except asyncio.CancelledError:
                pass
            self._monitor = None
        await asyncio.gather(
            *(
                self._stop_worker(worker, grace_seconds=grace_seconds)
                for worker in self.workers.values()
            )
        )

    async def __aenter__(self) -> "FleetSupervisor":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _record(self, event: str, worker: ShardWorker, **detail) -> None:
        entry = {"event": event, "shard": worker.name, **detail}
        self.events.append(entry)
        logger.info("fleet supervisor: %s", entry)

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    async def _spawn(self, worker: ShardWorker) -> ShardDescriptor:
        """Launch one worker and wait for its listening event."""
        argv = [sys.executable, "-m", "repro"] + self.spec.serve_args(worker.index)
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.PIPE,
            env=_worker_env(),
        )
        worker.process = process
        worker.probe_failures = 0
        try:
            port = await asyncio.wait_for(
                self._await_listening(process), timeout=self.startup_timeout
            )
        except asyncio.TimeoutError:
            process.kill()
            await process.wait()
            raise ServiceError(
                f"shard {worker.name!r} did not report a listening port within "
                f"{self.startup_timeout:g} s"
            ) from None
        worker.stdout_drain = asyncio.create_task(self._drain_stdout(process))
        self._record("spawned", worker, pid=process.pid, port=port)
        return ShardDescriptor(
            name=worker.name, host=self.spec.host, port=port, state=ACTIVE
        )

    async def _await_listening(self, process: asyncio.subprocess.Process) -> int:
        """Read worker stdout until the ``listening`` event names a port."""
        while True:
            line = await process.stdout.readline()
            if not line:
                raise ServiceError(
                    "shard worker exited before reporting its listening port "
                    f"(exit code {process.returncode})"
                )
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # not every stdout line is ours
            if isinstance(event, dict) and event.get("event") == "listening":
                return int(event["port"])

    @staticmethod
    async def _drain_stdout(process: asyncio.subprocess.Process) -> None:
        """Keep the worker's stdout pipe from filling after startup."""
        try:
            while await process.stdout.readline():
                pass
        except (asyncio.CancelledError, ValueError):
            pass

    async def _stop_worker(
        self, worker: ShardWorker, *, grace_seconds: float
    ) -> None:
        process = worker.process
        if process is None:
            return
        if process.returncode is None:
            process.terminate()  # SIGTERM → the server drains and exits 0
            try:
                await asyncio.wait_for(process.wait(), timeout=grace_seconds)
            except asyncio.TimeoutError:
                logger.warning(
                    "shard %s ignored SIGTERM for %g s; killing",
                    worker.name,
                    grace_seconds,
                )
                process.kill()
                await process.wait()
        if worker.stdout_drain is not None:
            worker.stdout_drain.cancel()
            try:
                await worker.stdout_drain
            except asyncio.CancelledError:
                pass
            worker.stdout_drain = None
        self._record("stopped", worker, exit_code=process.returncode)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    async def add_shard(self) -> ShardDescriptor:
        """Grow the fleet by one worker (rendezvous steals only its share)."""
        name = f"shard-{len(self.workers)}"
        while name in self.workers:  # names must stay unique across history
            name = f"shard-{int(name.rsplit('-', 1)[1]) + 1}"
        worker = ShardWorker(name=name, index=len(self.workers))
        self.workers[name] = worker
        descriptor = await self._spawn(worker)
        self.shard_map.add(descriptor)
        return descriptor

    async def remove_shard(
        self, name: str, *, grace_seconds: float = 10.0
    ) -> None:
        """Drain, stop and drop one shard (its devices remap by rendezvous)."""
        worker = self.workers.get(name)
        if worker is None:
            raise ServiceError(f"unknown shard {name!r}")
        if name in self.shard_map:
            self.shard_map.drain(name)
        await self._stop_worker(worker, grace_seconds=grace_seconds)
        if name in self.shard_map:
            self.shard_map.remove(name)
        del self.workers[name]

    # ------------------------------------------------------------------
    # health monitoring
    # ------------------------------------------------------------------
    async def _monitor_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval)
            for worker in list(self.workers.values()):
                try:
                    await self._check_worker(worker)
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 — the monitor must keep monitoring
                    logger.exception(
                        "health check of shard %s failed; continuing", worker.name
                    )

    async def _check_worker(self, worker: ShardWorker) -> None:
        if not worker.alive:
            self._record(
                "died",
                worker,
                exit_code=worker.process.returncode if worker.process else None,
            )
            await self._restart(worker)
            return
        descriptor = self.shard_map.get(worker.name)
        if not descriptor.routable:
            return
        try:
            await probe_stats(
                descriptor.host, descriptor.port, timeout=self.probe_timeout
            )
        except (ServiceError, OSError, asyncio.TimeoutError) as error:
            worker.probe_failures += 1
            self._record(
                "probe_failed",
                worker,
                failures=worker.probe_failures,
                error=str(error),
            )
            if worker.probe_failures >= self.probe_failures_threshold:
                if worker.process is not None and worker.process.returncode is None:
                    worker.process.kill()
                    await worker.process.wait()
                await self._restart(worker)
        else:
            worker.probe_failures = 0

    async def _restart(self, worker: ShardWorker) -> None:
        """Respawn a dead shard: mark down, back off, spawn, re-activate."""
        if self._stopping:
            return
        if worker.name in self.shard_map:
            self.shard_map.set_state(worker.name, DOWN)
        if worker.stdout_drain is not None:
            worker.stdout_drain.cancel()
            worker.stdout_drain = None
        worker.restarts += 1
        delay = self.restart_policy.delay(min(worker.restarts, 16))
        self._record("restarting", worker, attempt=worker.restarts, backoff=delay)
        await asyncio.sleep(delay)
        try:
            descriptor = await self._spawn(worker)
        except ServiceError as error:
            self._record("respawn_failed", worker, error=str(error))
            return  # the next monitor tick sees the dead worker and retries
        if worker.name in self.shard_map:
            self.shard_map.update(descriptor)
        else:
            self.shard_map.add(descriptor)

    # ------------------------------------------------------------------
    def restarts(self) -> Dict[str, int]:
        return {name: worker.restarts for name, worker in self.workers.items()}
