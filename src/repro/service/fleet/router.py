"""The fleet front door: one address, N shards behind it.

:class:`FleetRouter` is an asyncio TCP proxy speaking the same JSON-lines
wire protocol as a single server, so every existing client
(:class:`~repro.service.client.ServiceClient`, ``repro auth``) talks to a
fleet unchanged.  Per connection it:

1. relays each ``ENROLL`` as a single request/response round trip to the
   owning shard — the content-derived id is recomputed from the carried
   description (:func:`device_id_for`), so a connection that enrolls many
   devices lands every one on its own owner, and enrollment agrees with
   routing by construction;
2. on ``HELLO`` (which carries ``device_id`` outright) *pins* the
   connection to the owning shard
   (:meth:`~repro.service.fleet.topology.ShardMap.shard_for`) — session
   state (nonce, challenge, deadline) lives on one shard — forwards the
   frame, then splices bytes bidirectionally with bounded buffers (each
   chunk is written and drained before the next is read, so a slow peer
   backpressures instead of ballooning the router);
3. answers ``STATS`` itself by fanning the request out to every shard and
   folding the snapshots with :meth:`ServerStats.merge_snapshot` — the
   merged counters are exactly the sum of what the shards observed.

A connection whose shard is down gets one clean wire ``ERROR`` frame and
a close — never a hang; a shard that dies mid-session closes the spliced
connection, which the client surfaces as
:class:`~repro.errors.ConnectionLost` within its timeout.

The routing table can be *live*: constructed with a ``map_file``
(:class:`~repro.service.fleet.mapfile.ShardMapFile`), the router watches
the shared shard-map file and swaps its membership on every version
bump.  Reloads only affect where *new* sessions go — pinned connections
are raw byte splices over already-dialed sockets, so a scale-out or a
drain never drops a session in flight.  Any number of routers — other
processes, other hosts — watching the same file route identically,
because routing is a pure function of the (shared) shard names.
"""

from __future__ import annotations

import asyncio
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import ServiceError, ServiceTimeout
from repro.service import wire
from repro.service.fleet.mapfile import ShardMapFile
from repro.service.fleet.topology import ShardDescriptor, ShardMap
from repro.service.registry import device_id_for
from repro.service.stats import ServerStats

logger = logging.getLogger(__name__)

#: Splice chunk size — also the per-direction in-flight buffer bound.
SPLICE_CHUNK_BYTES = 64 * 1024

#: Wire verbs the router can pin to a shard (they identify a device).
ROUTABLE_TYPES = frozenset({wire.ENROLL, wire.HELLO})


@dataclass
class RouterStats:
    """The router's own counters (shard counters live on the shards)."""

    connections_opened: int = 0
    connections_routed: int = 0
    shard_unavailable: int = 0
    unroutable_frames: int = 0
    protocol_errors: int = 0
    stats_fanouts: int = 0
    #: shard-map file reloads applied (version bumps seen while serving)
    map_reloads: int = 0
    splice_bytes: Dict[str, int] = field(
        default_factory=lambda: {"c2s": 0, "s2c": 0}
    )

    def snapshot(self) -> dict:
        return {
            "connections_opened": self.connections_opened,
            "connections_routed": self.connections_routed,
            "shard_unavailable": self.shard_unavailable,
            "unroutable_frames": self.unroutable_frames,
            "protocol_errors": self.protocol_errors,
            "stats_fanouts": self.stats_fanouts,
            "map_reloads": self.map_reloads,
            "splice_bytes": dict(self.splice_bytes),
        }


class FleetRouter:
    """Hash-sharding front-door proxy over a :class:`ShardMap`.

    The map is shared by reference with the supervisor: when the
    supervisor restarts a crashed shard on a new ephemeral port and
    updates the map, the router routes new connections there with no
    handshake between the two.

    Parameters
    ----------
    shard_map:
        Live routing table (shared with a supervisor, or static).  May be
        omitted when ``map_file`` is given — the router then starts from
        the published map (or empty until the file appears).
    map_file:
        A :class:`~repro.service.fleet.mapfile.ShardMapFile` (or its
        path) to watch: every published version bump atomically replaces
        the routing membership without touching pinned connections.
        Give each router its own ``ShardMapFile`` instance — poll
        progress is per-instance.
    map_poll_interval:
        Seconds between map-file polls (only with ``map_file``).
    host, port:
        Front-door bind; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    connection_timeout:
        Idle cutoff [s] while waiting for a client's next pre-pin frame.
    shard_connect_timeout:
        Deadline [s] for dialing a shard before declaring it unavailable.
    stats_timeout:
        Per-shard deadline [s] for the ``STATS`` fan-out; a shard that
        misses it is reported unhealthy instead of stalling the reply.
    """

    def __init__(
        self,
        shard_map: Optional[ShardMap] = None,
        *,
        map_file: Optional[Union[str, os.PathLike, ShardMapFile]] = None,
        map_poll_interval: Optional[float] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        connection_timeout: Optional[float] = 300.0,
        shard_connect_timeout: float = 5.0,
        stats_timeout: float = 5.0,
    ):
        if shard_map is None and map_file is None:
            raise ServiceError("router needs a shard_map, a map_file, or both")
        if isinstance(map_file, ShardMapFile) or map_file is None:
            self.map_file = map_file
        else:
            self.map_file = ShardMapFile(map_file)
        self.map_poll_interval = map_poll_interval
        self.map_version: Optional[int] = None
        self.shard_map = shard_map if shard_map is not None else ShardMap()
        self.host = host
        self.port = port
        self.connection_timeout = connection_timeout
        self.shard_connect_timeout = shard_connect_timeout
        self.stats_timeout = stats_timeout
        self.stats = RouterStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._map_watch: Optional[asyncio.Task] = None
        self._connections: set = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetRouter":
        if self._server is not None:
            raise ServiceError("router already started")
        if self.map_file is not None:
            if self.map_file.exists():
                shard_map, version = self.map_file.load()
                self.shard_map.replace_all(shard_map.shards())
                self.map_version = version
            self._map_watch = asyncio.create_task(
                self.map_file.watch(
                    self._on_map_update, poll_interval=self.map_poll_interval
                )
            )
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=wire.MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def _on_map_update(self, shard_map: ShardMap, version: int) -> None:
        """Apply a published membership change to *future* routing only.

        ``replace_all`` swaps the table under the shared map object;
        already-pinned connections are byte splices over sockets dialed
        earlier, so they complete against whatever shard they pinned to —
        exactly the drain semantics the two-phase lifecycle needs.
        """
        self.shard_map.replace_all(shard_map.shards())
        self.map_version = version
        self.stats.map_reloads += 1
        logger.info(
            "router reloaded shard map v%d (%d shards)", version, len(shard_map)
        )

    async def stop(self) -> None:
        if self._map_watch is not None:
            self._map_watch.cancel()
            try:
                await self._map_watch
            except asyncio.CancelledError:
                pass
            self._map_watch = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "FleetRouter":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections_opened += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            await self._route_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # router stop() cancelling in-flight connections
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except ServiceTimeout:
            pass
        except Exception:  # noqa: BLE001 — one bad connection must not escape
            logger.exception("router connection handler failed")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve pre-pin frames until the connection pins to a shard."""
        while True:
            try:
                message = await wire.read_message(
                    reader, timeout=self.connection_timeout
                )
            except ServiceTimeout:
                await wire.write_message(
                    writer, {"type": wire.ERROR, "error": "connection idle timeout"}
                )
                return
            except ServiceError as error:
                self.stats.protocol_errors += 1
                await wire.write_message(
                    writer, {"type": wire.ERROR, "error": str(error)}
                )
                return
            if message is None:
                return
            message_type = message["type"]
            if message_type == wire.STATS:
                await wire.write_message(writer, await self._fleet_stats())
                continue
            if message_type == wire.ENROLL:
                await self._relay_enroll(message, writer)
                continue
            if message_type not in ROUTABLE_TYPES:
                self.stats.unroutable_frames += 1
                await wire.write_message(
                    writer,
                    {
                        "type": wire.ERROR,
                        "error": (
                            f"router cannot route {message_type!r}: open a "
                            "session with 'hello' or 'enroll' first"
                        ),
                    },
                )
                continue
            await self._pin_and_splice(message, reader, writer)
            return

    def _device_id_of(self, message: dict) -> str:
        if message["type"] == wire.HELLO:
            device_id = message.get("device_id")
            if not isinstance(device_id, str):
                raise ServiceError("hello requires a 'device_id' string")
            return device_id
        public = message.get("device")
        if not isinstance(public, dict):
            raise ServiceError("enroll requires a 'device' object")
        return device_id_for(public)

    async def _dial_shard(self, message: dict, writer: asyncio.StreamWriter):
        """Resolve the owner shard of ``message`` and connect to it.

        Returns ``(shard, reader, writer)`` or ``None`` after answering
        the client with a clean wire ``ERROR`` (bad frame, no routable
        shard, or the owner being down).
        """
        try:
            device_id = self._device_id_of(message)
            shard = self.shard_map.shard_for(device_id)
        except ServiceError as error:
            self.stats.protocol_errors += 1
            await wire.write_message(writer, {"type": wire.ERROR, "error": str(error)})
            return None
        try:
            upstream_reader, upstream_writer = await asyncio.wait_for(
                asyncio.open_connection(
                    shard.host, shard.port, limit=wire.MAX_LINE_BYTES
                ),
                timeout=self.shard_connect_timeout,
            )
        except (OSError, asyncio.TimeoutError):
            self.stats.shard_unavailable += 1
            await wire.write_message(
                writer,
                {
                    "type": wire.ERROR,
                    "error": f"shard {shard.name!r} unavailable; retry shortly",
                },
            )
            return None
        return shard, upstream_reader, upstream_writer

    async def _relay_enroll(
        self, message: dict, writer: asyncio.StreamWriter
    ) -> None:
        """One ENROLL round trip to the owner shard (no pinning).

        Enrollment must land on the shard that will later serve the
        device's sessions, even when one connection enrolls a whole
        population — so each frame is routed independently.
        """
        dialed = await self._dial_shard(message, writer)
        if dialed is None:
            return
        shard, upstream_reader, upstream_writer = dialed
        try:
            upstream_writer.write(wire.encode_message(message))
            await upstream_writer.drain()
            reply = await wire.read_message(
                upstream_reader, timeout=self.shard_connect_timeout
            )
        except (ServiceError, ConnectionResetError, BrokenPipeError):
            reply = None
        finally:
            upstream_writer.close()
            try:
                await upstream_writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if reply is None:
            self.stats.shard_unavailable += 1
            reply = {
                "type": wire.ERROR,
                "error": f"shard {shard.name!r} dropped the enrollment",
            }
        await wire.write_message(writer, reply)

    async def _pin_and_splice(
        self,
        first_message: dict,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        dialed = await self._dial_shard(first_message, writer)
        if dialed is None:
            return
        _, upstream_reader, upstream_writer = dialed
        self.stats.connections_routed += 1
        try:
            upstream_writer.write(wire.encode_message(first_message))
            await upstream_writer.drain()
            await asyncio.gather(
                self._splice("c2s", reader, upstream_writer),
                self._splice("s2c", upstream_reader, writer),
            )
        finally:
            upstream_writer.close()
            try:
                await upstream_writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _splice(
        self,
        direction: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Copy bytes one way until EOF; close the far side so its peer sees it."""
        try:
            while True:
                chunk = await reader.read(SPLICE_CHUNK_BYTES)
                if not chunk:
                    break
                self.stats.splice_bytes[direction] += len(chunk)
                writer.write(chunk)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Half-close propagation: when one side stops talking, the
            # other must see EOF instead of waiting forever.
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass

    # ------------------------------------------------------------------
    # STATS fan-out
    # ------------------------------------------------------------------
    async def _shard_snapshot(self, shard: ShardDescriptor) -> dict:
        """One shard's STATS snapshot, or an unhealthy marker on failure."""
        entry = {**shard.to_dict(), "healthy": False}
        if shard.port == 0:
            # A ``fleet scale`` placeholder the supervisor hasn't bound
            # yet — nothing to dial, and that's expected, not an outage.
            entry["error"] = "not bound yet (awaiting supervisor spawn)"
            return entry
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    shard.host, shard.port, limit=wire.MAX_LINE_BYTES
                ),
                timeout=self.stats_timeout,
            )
        except (OSError, asyncio.TimeoutError) as error:
            entry["error"] = f"unreachable: {error}"
            return entry
        try:
            await wire.write_message(writer, {"type": wire.STATS})
            reply = await wire.read_message(reader, timeout=self.stats_timeout)
            if reply is None or reply.get("type") != wire.STATS:
                entry["error"] = f"bad stats reply: {reply!r}"
                return entry
            entry["healthy"] = True
            entry["stats"] = reply["stats"]
        except (ServiceError, ConnectionResetError, BrokenPipeError) as error:
            entry["error"] = str(error)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return entry

    async def _fleet_stats(self) -> dict:
        """The merged fleet snapshot plus per-shard detail.

        The reply's ``stats`` key is what a single-server STATS would
        carry — merged exactly across healthy shards — so existing
        clients (``ServiceClient.stats``) work against a fleet unchanged.
        ``fleet`` adds per-shard health and snapshots plus the router's
        own counters.
        """
        self.stats.stats_fanouts += 1
        shards = self.shard_map.shards()
        entries: List[dict] = await asyncio.gather(
            *(self._shard_snapshot(shard) for shard in shards)
        )
        merged = ServerStats.merge_snapshot(
            entry["stats"] for entry in entries if entry["healthy"]
        )
        # ``devices`` is a gauge over a fleet that maps one shared pack —
        # every shard reports the same population, so the fleet size is
        # the max, not the sum.
        device_counts = [
            entry["stats"].get("devices", 0) for entry in entries if entry["healthy"]
        ]
        merged["devices"] = max(device_counts, default=0)
        return {
            "type": wire.STATS,
            "stats": merged,
            "fleet": {
                "shards": entries,
                "healthy_shards": sum(1 for e in entries if e["healthy"]),
                "router": self.stats.snapshot(),
                "map_version": self.map_version,
            },
        }
