"""The device registry: enrollment and lookup of public PPUF descriptions.

PPUFs are *public* PUFs — enrollment stores no secrets, only the public
device description (:func:`repro.ppuf.io.ppuf_to_dict`).  The registry key
is content-derived: the SHA-256 digest of the canonical JSON form, so the
same silicon always enrolls under the same id and a tampered description
changes the id (a self-authenticating directory, like the paper's public
model registry).

With a ``directory``, every enrollment is persisted as
``<device_id>.json`` via the atomic writer in :mod:`repro.ppuf.io`, and a
restarted server reloads its fleet from disk.  :meth:`DeviceRegistry.load_directory`
is a *rebuild*: it replaces the resident fleet with what the directory
holds right now (deleted files drop out, cached compiled artifacts are
invalidated) and skips — with a logged warning — any ``<id>.json`` whose
filename does not match its content-derived digest, so a renamed or
tampered file can never enroll under an id other than the one written on
its name.

The registry also serves *compiled* evaluation artifacts
(:class:`~repro.ppuf.compiled.CompiledDevice`) through a bounded LRU of
warm per-device handles.  Cold misses fill from, in order:

1. a packed fleet file (:class:`~repro.ppuf.pack.ArtifactPack`, one mmap
   shared by every device — the fleet-scale tier);
2. the legacy per-device ``<device_id>.npz`` next to the JSON;
3. compilation from the enrolled description (persisted as ``.npz`` when
   a directory is configured).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Union

from repro.errors import ReproError, ServiceError
from repro.ppuf.compiled import CompiledDevice
from repro.ppuf.device import Ppuf
from repro.ppuf.io import (
    atomic_write_text,
    load_compiled,
    ppuf_from_dict,
    ppuf_to_dict,
    save_compiled,
)
from repro.ppuf.pack import ArtifactPack

logger = logging.getLogger(__name__)

#: Default bound on the warm compiled-artifact LRU.  Pack-backed artifacts
#: are cheap mmap views, but each still pins Python-side index objects —
#: a million-device fleet must not mirror itself into the warm tier.
DEFAULT_COMPILED_CACHE_SIZE = 256


def canonical_json(public: dict) -> str:
    """Canonical serialisation: sorted keys, no whitespace.

    JSON round-trips Python floats exactly (shortest-repr), so the client
    and the server compute identical digests from equal descriptions even
    after the dict has crossed the wire.
    """
    return json.dumps(public, sort_keys=True, separators=(",", ":"))


def device_id_for(public: dict) -> str:
    """Stable device id: SHA-256 of the canonical public description."""
    return hashlib.sha256(canonical_json(public).encode("utf-8")).hexdigest()


class DeviceRegistry:
    """Enrolled devices, keyed by :func:`device_id_for`.

    Parameters
    ----------
    directory:
        Optional persistence root.  When given, enrollments are written
        there atomically and ``load_directory`` is called on construction.
    pack:
        Optional packed fleet: a path or an open
        :class:`~repro.ppuf.pack.ArtifactPack`.  Devices found in the pack
        are served as zero-copy mmap slices; ids in the pack count as
        enrolled for lookup/verification (the public JSON directory can
        stay empty for a pre-provisioned fleet).
    compiled_cache_size:
        Bound on the warm compiled-artifact LRU (see the module docstring
        for the tiering).  ``None`` disables the bound.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        pack: Union[ArtifactPack, str, None] = None,
        *,
        compiled_cache_size: Optional[int] = DEFAULT_COMPILED_CACHE_SIZE,
    ):
        if compiled_cache_size is not None and compiled_cache_size < 1:
            raise ServiceError(
                f"compiled_cache_size must be >= 1, got {compiled_cache_size}"
            )
        self.directory = directory
        self.pack = ArtifactPack(pack) if isinstance(pack, (str, os.PathLike)) else pack
        self.compiled_cache_size = compiled_cache_size
        self._public: Dict[str, dict] = {}
        self._devices: Dict[str, Ppuf] = {}
        self._compiled: "OrderedDict[str, CompiledDevice]" = OrderedDict()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self.load_directory()

    # ------------------------------------------------------------------
    def _known_ids(self) -> set:
        known = set(self._public)
        if self.pack is not None:
            known.update(self.pack.ids())
        return known

    def __len__(self) -> int:
        return len(self._known_ids())

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._public or (
            self.pack is not None and device_id in self.pack
        )

    def ids(self) -> List[str]:
        return sorted(self._known_ids())

    # ------------------------------------------------------------------
    def enroll(self, public: dict) -> str:
        """Enroll a public description; returns the device id.

        The description is validated by rebuilding the device from it
        (:class:`ReproError` propagates for a malformed dict).  Re-enrolling
        an already-known device returns the same id — and restores the
        on-disk JSON if it went missing (a lost file must not stay lost
        just because the id is still resident).
        """
        device = ppuf_from_dict(public)
        device_id = device_id_for(public)
        known = device_id in self._public
        if not known:
            self._public[device_id] = public
            self._devices[device_id] = device
        if self.directory is not None:
            path = self._path(device_id)
            if not known or not os.path.exists(path):
                atomic_write_text(path, canonical_json(public))
        return device_id

    def enroll_ppuf(self, ppuf: Ppuf) -> str:
        """Enroll a live device object by its public description."""
        return self.enroll(ppuf_to_dict(ppuf))

    # ------------------------------------------------------------------
    def public(self, device_id: str) -> dict:
        """The enrolled public description for a device id."""
        try:
            return self._public[device_id]
        except KeyError:
            raise ServiceError(f"unknown device id {device_id!r}") from None

    def device(self, device_id: str):
        """The rebuilt (cached) device for a device id.

        For an id that lives only in the pack (no public JSON enrolled)
        this returns the compiled artifact instead — call-compatible with
        :class:`~repro.ppuf.device.Ppuf` for every evaluation and
        challenge-issuing consumer.
        """
        if device_id in self._devices:
            return self._devices[device_id]
        if device_id not in self._public and self.pack is not None:
            if device_id in self.pack:
                return self.compiled(device_id)
        self._devices[device_id] = ppuf_from_dict(self.public(device_id))
        return self._devices[device_id]

    def compiled(self, device_id: str) -> CompiledDevice:
        """The compiled (capacity-only) evaluation artifact for a device id.

        Warm hits come from a bounded LRU; cold misses fill from the pack
        (an mmap row slice), then the legacy ``<device_id>.npz``, then
        compilation (persisted as ``.npz`` when a directory is
        configured).  Verification needs only the capacity tables, so
        circuit I–V tables are not built here.
        """
        artifact = self._compiled.get(device_id)
        if artifact is not None:
            self._compiled.move_to_end(device_id)
            return artifact
        if self.pack is not None and device_id in self.pack:
            return self._remember(device_id, self.pack.device(device_id))
        path = self._compiled_path(device_id) if self.directory else None
        if path is not None and os.path.exists(path):
            try:
                artifact = load_compiled(path)
                if artifact.device_id != device_id:
                    artifact = None  # stale or foreign artifact: recompile
            except ReproError:
                artifact = None
        if artifact is None:
            artifact = self.device(device_id).compile(
                include_circuit=False, device_id=device_id
            )
            if path is not None:
                save_compiled(artifact, path)
        return self._remember(device_id, artifact)

    def _remember(self, device_id: str, artifact: CompiledDevice) -> CompiledDevice:
        self._compiled[device_id] = artifact
        self._compiled.move_to_end(device_id)
        if self.compiled_cache_size is not None:
            while len(self._compiled) > self.compiled_cache_size:
                self._compiled.popitem(last=False)
        return artifact

    # ------------------------------------------------------------------
    def load_directory(self) -> int:
        """(Re)load every ``*.json`` under ``directory``; returns the count.

        This *rebuilds* the resident fleet: devices whose files were
        deleted drop out, and the compiled-artifact cache is invalidated
        wholesale so a re-enrolled id can never be served a stale
        artifact.  Files that fail to parse are skipped (a server should
        come up with the healthy part of its fleet, not crash on one bad
        entry), as are files whose name does not match the content-derived
        digest of what they hold — silently enrolling such a file would
        register it under a different id than the one on its filename.
        """
        if self.directory is None:
            return 0
        self._public.clear()
        self._devices.clear()
        self._compiled.clear()
        loaded = 0
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path) as handle:
                    public = json.load(handle)
                device = ppuf_from_dict(public)
            except (OSError, json.JSONDecodeError, ReproError):
                continue
            device_id = device_id_for(public)
            if name != f"{device_id}.json":
                logger.warning(
                    "registry reload: skipping %s — filename does not match "
                    "the content-derived digest %s", path, device_id,
                )
                continue
            self._public[device_id] = public
            self._devices[device_id] = device
            loaded += 1
        return loaded

    def _path(self, device_id: str) -> str:
        return os.path.join(self.directory, f"{device_id}.json")

    def _compiled_path(self, device_id: str) -> str:
        return os.path.join(self.directory, f"{device_id}.npz")
