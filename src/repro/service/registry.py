"""The device registry: enrollment and lookup of public PPUF descriptions.

PPUFs are *public* PUFs — enrollment stores no secrets, only the public
device description (:func:`repro.ppuf.io.ppuf_to_dict`).  The registry key
is content-derived: the SHA-256 digest of the canonical JSON form, so the
same silicon always enrolls under the same id and a tampered description
changes the id (a self-authenticating directory, like the paper's public
model registry).

With a ``directory``, every enrollment is persisted as
``<device_id>.json`` via the atomic writer in :mod:`repro.ppuf.io`, and a
restarted server reloads its fleet from disk.

The registry also serves *compiled* evaluation artifacts
(:class:`~repro.ppuf.compiled.CompiledDevice`): :meth:`DeviceRegistry.compiled`
compiles a device's capacity tables once (persisting them as
``<device_id>.npz`` next to the JSON when a directory is configured) so
the verification workers map precomputed tables instead of re-deriving
capacity caches on every cold claim.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.errors import ReproError, ServiceError
from repro.ppuf.compiled import CompiledDevice
from repro.ppuf.device import Ppuf
from repro.ppuf.io import (
    atomic_write_text,
    load_compiled,
    ppuf_from_dict,
    ppuf_to_dict,
    save_compiled,
)


def canonical_json(public: dict) -> str:
    """Canonical serialisation: sorted keys, no whitespace.

    JSON round-trips Python floats exactly (shortest-repr), so the client
    and the server compute identical digests from equal descriptions even
    after the dict has crossed the wire.
    """
    return json.dumps(public, sort_keys=True, separators=(",", ":"))


def device_id_for(public: dict) -> str:
    """Stable device id: SHA-256 of the canonical public description."""
    return hashlib.sha256(canonical_json(public).encode("utf-8")).hexdigest()


class DeviceRegistry:
    """Enrolled devices, keyed by :func:`device_id_for`.

    Parameters
    ----------
    directory:
        Optional persistence root.  When given, enrollments are written
        there atomically and ``load_directory`` is called on construction.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._public: Dict[str, dict] = {}
        self._devices: Dict[str, Ppuf] = {}
        self._compiled: Dict[str, CompiledDevice] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self.load_directory()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._public)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._public

    def ids(self) -> List[str]:
        return sorted(self._public)

    # ------------------------------------------------------------------
    def enroll(self, public: dict) -> str:
        """Enroll a public description; returns the device id.

        The description is validated by rebuilding the device from it
        (:class:`ReproError` propagates for a malformed dict).  Re-enrolling
        an already-known device is a no-op returning the same id.
        """
        device = ppuf_from_dict(public)
        device_id = device_id_for(public)
        if device_id not in self._public:
            self._public[device_id] = public
            self._devices[device_id] = device
            if self.directory is not None:
                atomic_write_text(self._path(device_id), canonical_json(public))
        return device_id

    def enroll_ppuf(self, ppuf: Ppuf) -> str:
        """Enroll a live device object by its public description."""
        return self.enroll(ppuf_to_dict(ppuf))

    # ------------------------------------------------------------------
    def public(self, device_id: str) -> dict:
        """The enrolled public description for a device id."""
        try:
            return self._public[device_id]
        except KeyError:
            raise ServiceError(f"unknown device id {device_id!r}") from None

    def device(self, device_id: str) -> Ppuf:
        """The rebuilt (cached) device for a device id."""
        if device_id not in self._devices:
            self._devices[device_id] = ppuf_from_dict(self.public(device_id))
        return self._devices[device_id]

    def compiled(self, device_id: str) -> CompiledDevice:
        """The compiled (capacity-only) evaluation artifact for a device id.

        Compiled once per registry lifetime; with a ``directory`` the
        artifact is persisted as ``<device_id>.npz`` and reloaded instead
        of recompiled on restart.  Verification needs only the capacity
        tables, so circuit I–V tables are not built here.
        """
        artifact = self._compiled.get(device_id)
        if artifact is not None:
            return artifact
        path = self._compiled_path(device_id) if self.directory else None
        if path is not None and os.path.exists(path):
            try:
                artifact = load_compiled(path)
                if artifact.device_id != device_id:
                    artifact = None  # stale or foreign artifact: recompile
            except ReproError:
                artifact = None
        if artifact is None:
            artifact = self.device(device_id).compile(
                include_circuit=False, device_id=device_id
            )
            if path is not None:
                save_compiled(artifact, path)
        self._compiled[device_id] = artifact
        return artifact

    # ------------------------------------------------------------------
    def load_directory(self) -> int:
        """(Re)load every ``*.json`` under ``directory``; returns the count.

        Files that fail to parse are skipped (a server should come up with
        the healthy part of its fleet, not crash on one bad entry).
        """
        if self.directory is None:
            return 0
        loaded = 0
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path) as handle:
                    public = json.load(handle)
                device = ppuf_from_dict(public)
            except (OSError, json.JSONDecodeError, ReproError):
                continue
            device_id = device_id_for(public)
            self._public[device_id] = public
            self._devices[device_id] = device
            loaded += 1
        return loaded

    def _path(self, device_id: str) -> str:
        return os.path.join(self.directory, f"{device_id}.json")

    def _compiled_path(self, device_id: str) -> str:
        return os.path.join(self.directory, f"{device_id}.npz")
