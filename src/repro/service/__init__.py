"""Networked authentication service.

The in-process protocol of :mod:`repro.ppuf.protocol` moved onto a real
request/response boundary: an asyncio JSON-lines TCP server hosts a
public-device registry and runs the verifier side of the time-bounded
protocol (``HELLO → CHALLENGE(nonce, deadline) → CLAIM → VERDICT``), while
:mod:`repro.service.client` implements the honest device holder.

Entry points: ``python -m repro serve`` / ``python -m repro auth``, or

>>> from repro.service import DeviceRegistry, PpufAuthServer, ServiceClient
"""

from repro.service.client import (
    AuthOutcome,
    ServiceClient,
    authenticate_device,
    enroll_device,
    fetch_stats,
)
from repro.service.faults import FaultPlan, FaultyTransport
from repro.service.registry import DeviceRegistry, device_id_for
from repro.service.resilience import DEFAULT_TIMEOUT, RetryPolicy
from repro.service.server import PpufAuthServer, VerificationPool
from repro.service.sessions import (
    ReplayRejected,
    Session,
    SessionExpired,
    SessionLimitExceeded,
    SessionManager,
    UnknownSession,
)
from repro.service.stats import LatencyHistogram, ServerStats

__all__ = [
    "AuthOutcome",
    "ServiceClient",
    "authenticate_device",
    "enroll_device",
    "fetch_stats",
    "FaultPlan",
    "FaultyTransport",
    "DeviceRegistry",
    "device_id_for",
    "DEFAULT_TIMEOUT",
    "RetryPolicy",
    "PpufAuthServer",
    "VerificationPool",
    "Session",
    "SessionManager",
    "SessionExpired",
    "SessionLimitExceeded",
    "ReplayRejected",
    "UnknownSession",
    "LatencyHistogram",
    "ServerStats",
]
