"""Verifier-side session state machine for the wire protocol.

One :class:`Session` tracks one authentication attempt::

    HELLO ──▶ CHALLENGED ──claim──▶ (verify) ──▶ CHALLENGED (next round)
                                          └────▶ CLOSED (verdict)

Security properties enforced here (the transport-independent part of the
time-bounded protocol):

* **per-session nonces** — every challenge carries a fresh random nonce;
  a claim must echo the nonce of the *outstanding* challenge;
* **replay rejection** — a nonce is consumed the moment a claim citing it
  is admitted, so replaying an old claim (same session or a recording of
  it) raises :class:`ReplayRejected`;
* **monotonic deadlines** — the elapsed time between challenge issue and
  claim arrival comes from :func:`time.monotonic`, immune to wall-clock
  steps; the caller compares it against the session's deadline;
* **idle expiry** — a session that stops talking is swept after
  ``idle_timeout`` seconds and cannot be resumed.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.errors import ServiceError
from repro.ppuf.challenge import Challenge, ChallengeSpace
from repro.ppuf.device import Ppuf


class UnknownSession(ServiceError):
    """The claim cites a session id the server does not hold."""


class SessionExpired(ServiceError):
    """The session idled past its timeout before the claim arrived."""


class ReplayRejected(ServiceError):
    """The claim cites a nonce that was already consumed (or never issued)."""


class SessionLimitExceeded(ServiceError):
    """The manager is at ``max_sessions``; HELLO floods get backpressure."""


AWAITING_CLAIM = "awaiting_claim"
CLOSED = "closed"


@dataclass
class Session:
    """One in-flight authentication attempt."""

    session_id: str
    device_id: str
    network: str  # "a" or "b"
    rounds_total: int
    deadline_seconds: float
    round_index: int = 0
    state: str = AWAITING_CLAIM
    nonce: str = ""
    issued_at: float = 0.0  # monotonic, when the outstanding challenge left
    expires_at: float = 0.0  # monotonic idle deadline
    challenge: Optional[Challenge] = None
    used_nonces: Set[str] = field(default_factory=set)


class SessionManager:
    """Owns every live :class:`Session`; single-threaded (event loop) use.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock response deadline enforced per round over the wire.
    idle_timeout:
        Seconds of silence after which a session is expirable.
    rounds:
        Default round count for sessions that don't request one.
    seed:
        Challenge-sampling seed (``None`` → OS entropy).  Nonces and
        session ids always come from :mod:`secrets`.
    max_sessions:
        Hard cap on concurrent sessions; :meth:`open` raises
        :class:`SessionLimitExceeded` beyond it, so a HELLO flood costs
        the server one error reply instead of unbounded session state.
        ``None`` disables the cap.
    """

    def __init__(
        self,
        *,
        deadline_seconds: float = 5.0,
        idle_timeout: float = 60.0,
        rounds: int = 4,
        seed: Optional[int] = None,
        max_sessions: Optional[int] = 4096,
        clock=time.monotonic,
    ):
        if deadline_seconds <= 0:
            raise ServiceError(f"deadline must be positive, got {deadline_seconds}")
        if idle_timeout <= 0:
            raise ServiceError(f"idle timeout must be positive, got {idle_timeout}")
        if max_sessions is not None and max_sessions < 1:
            raise ServiceError(f"max_sessions must be >= 1, got {max_sessions}")
        self.deadline_seconds = deadline_seconds
        self.idle_timeout = idle_timeout
        self.default_rounds = rounds
        self.max_sessions = max_sessions
        self.clock = clock
        self._rng = np.random.default_rng(seed)
        self._sessions: Dict[str, Session] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def get(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSession(f"unknown session {session_id!r}")
        if self.clock() >= session.expires_at:
            self.close(session)
            raise SessionExpired(f"session {session_id!r} expired")
        return session

    # ------------------------------------------------------------------
    def open(self, device_id: str, device: Ppuf, network: str, rounds: Optional[int]) -> Session:
        """Create a session and issue its first challenge."""
        if network not in ("a", "b"):
            raise ServiceError(f"network must be 'a' or 'b', got {network!r}")
        rounds = self.default_rounds if rounds is None else int(rounds)
        if not 1 <= rounds <= 1024:
            raise ServiceError(f"rounds must be in [1, 1024], got {rounds}")
        if self.max_sessions is not None and len(self._sessions) >= self.max_sessions:
            # Expiry may free room before we refuse: sweep first.
            self.expire_idle()
            if len(self._sessions) >= self.max_sessions:
                raise SessionLimitExceeded(
                    f"session capacity {self.max_sessions} reached; retry later"
                )
        session = Session(
            session_id=secrets.token_hex(8),
            device_id=device_id,
            network=network,
            rounds_total=rounds,
            deadline_seconds=self.deadline_seconds,
        )
        self._sessions[session.session_id] = session
        self._issue(session, device)
        return session

    def _issue(self, session: Session, device: Ppuf) -> None:
        """Attach a fresh challenge + nonce and start the response clock."""
        session.challenge = ChallengeSpace(device.crossbar).random(self._rng)
        session.nonce = secrets.token_hex(16)
        session.state = AWAITING_CLAIM
        now = self.clock()
        session.issued_at = now
        session.expires_at = now + self.idle_timeout

    # ------------------------------------------------------------------
    def admit_claim(self, session_id: str, nonce: str) -> tuple:
        """Validate a claim's session/nonce; returns ``(session, elapsed)``.

        Consumes the nonce immediately — before any verification work — so
        a duplicate of the same claim is a replay even while the original
        is still being verified.  ``elapsed`` is the monotonic seconds since
        the outstanding challenge was issued; the caller compares it with
        ``session.deadline_seconds``.
        """
        session = self.get(session_id)
        if session.state != AWAITING_CLAIM:
            raise ServiceError(f"session {session_id!r} is not awaiting a claim")
        if nonce in session.used_nonces:
            raise ReplayRejected(f"nonce {nonce!r} was already consumed")
        if nonce != session.nonce:
            raise ServiceError(f"nonce {nonce!r} does not match the outstanding challenge")
        elapsed = self.clock() - session.issued_at
        session.used_nonces.add(nonce)
        session.state = "verifying"
        session.expires_at = self.clock() + self.idle_timeout
        return session, elapsed

    def advance(self, session: Session, device: Ppuf) -> bool:
        """After an accepted round: next challenge, or ``False`` if done."""
        session.round_index += 1
        if session.round_index >= session.rounds_total:
            self.close(session)
            return False
        self._issue(session, device)
        return True

    def close(self, session: Session) -> None:
        session.state = CLOSED
        self._sessions.pop(session.session_id, None)

    # ------------------------------------------------------------------
    def expire_idle(self) -> int:
        """Drop every session past its idle deadline; returns the count."""
        now = self.clock()
        stale = [s for s in self._sessions.values() if now >= s.expires_at]
        for session in stale:
            self.close(session)
        return len(stale)
