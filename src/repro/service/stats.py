"""Per-server counters and the verify-latency histograms.

Everything here is mutated from the single event-loop thread, so plain
integer increments suffice — no locks.  ``snapshot()`` produces the JSON
payload the ``STATS`` wire request returns.

Verify latency is recorded twice: once in the overall histogram and once
per solver algorithm (claims carry the registered solver name on the wire,
validated against :mod:`repro.flow.registry`), so a fleet operator can see
live which algorithms provers use and what each one costs to verify.

Stats are *mergeable*: every counter sums and every histogram adds
bucket-wise (:meth:`LatencyHistogram.merge`), so a fleet router can fan a
``STATS`` request out to N shards and fold the snapshots into one exact
fleet snapshot (:meth:`ServerStats.merge_snapshot`) — the merged counters
equal what a single server observing the union of the traffic would have
counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.errors import ServiceError
from repro.flow.registry import is_registered
from repro.runtime.stats import merge_runtime_snapshots


#: Upper bucket edges [s] for the verify-latency histogram — log-spaced so
#: both a 10-node toy device (~100 µs verifies) and a secure-size device
#: (seconds) land in informative buckets.  The last bucket is open-ended.
DEFAULT_BUCKET_EDGES = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)


@dataclass
class LatencyHistogram:
    """Fixed-bucket latency histogram with running total/max."""

    edges: tuple = DEFAULT_BUCKET_EDGES
    counts: List[int] = field(default_factory=list)
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    observations: int = 0

    def __post_init__(self):
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, seconds: float) -> None:
        index = len(self.edges)
        for i, edge in enumerate(self.edges):
            if seconds <= edge:
                index = i
                break
        self.counts[index] += 1
        self.observations += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.observations if self.observations else 0.0

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram bucket-wise (returns ``self``).

        Merging is exact — the result is indistinguishable from one
        histogram having observed both streams — but only defined for
        identical bucket edges (shards share :data:`DEFAULT_BUCKET_EDGES`).
        """
        if tuple(other.edges) != tuple(self.edges):
            raise ServiceError(
                "cannot merge latency histograms with different bucket edges: "
                f"{self.edges!r} vs {other.edges!r}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.observations += other.observations
        self.total_seconds += other.total_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)
        return self

    def snapshot(self) -> dict:
        buckets = {}
        for edge, count in zip(self.edges, self.counts):
            buckets[f"le_{edge:g}"] = count
        buckets["inf"] = self.counts[-1]
        return {
            "observations": self.observations,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
            "buckets": buckets,
        }


#: Telemetry key for claims naming no (or an unregistered) solver.
UNKNOWN_ALGORITHM = "unknown"


def shard_settled(previous: dict, current: dict) -> bool:
    """True when a draining shard's in-flight work has settled.

    ``previous`` and ``current`` are two consecutive wire ``STATS``
    snapshots from the same shard.  Settled means nothing is live *now*
    (no open sessions, no verification in the pool or queued in the
    micro-batcher) and nothing *started* between the two polls
    (``sessions_opened`` unchanged) — the delta guard closes the race
    where a session opens and closes entirely between two polls of an
    instantaneously-idle shard.  A supervisor draining a shard polls
    until this holds, then removes and terminates it.
    """
    if current.get("active_sessions", 0):
        return False
    if current.get("verifications_in_flight", 0):
        return False
    return current.get("sessions_opened", 0) == previous.get("sessions_opened", 0)


def merge_histogram_snapshots(base: dict, other: dict) -> dict:
    """Merge two :meth:`LatencyHistogram.snapshot` dicts bucket-wise.

    Works on the wire form (what a ``STATS`` reply carries), so a router
    can merge shard snapshots without reconstructing histogram objects.
    ``total_seconds`` is recovered from ``mean_seconds * observations``,
    which JSON round-trips exactly for the sums involved.
    """
    if set(base["buckets"]) != set(other["buckets"]):
        raise ServiceError(
            "cannot merge histogram snapshots with different buckets: "
            f"{sorted(base['buckets'])!r} vs {sorted(other['buckets'])!r}"
        )
    observations = base["observations"] + other["observations"]
    total = (
        base["mean_seconds"] * base["observations"]
        + other["mean_seconds"] * other["observations"]
    )
    return {
        "observations": observations,
        "mean_seconds": total / observations if observations else 0.0,
        "max_seconds": max(base["max_seconds"], other["max_seconds"]),
        "buckets": {
            key: base["buckets"][key] + other["buckets"][key]
            for key in base["buckets"]
        },
    }


@dataclass
class ServerStats:
    """Counters for everything the acceptance criteria care about."""

    enrollments: int = 0
    sessions_opened: int = 0
    sessions_accepted: int = 0
    sessions_rejected: int = 0
    sessions_expired: int = 0
    rounds_issued: int = 0
    claims_verified: int = 0
    deadline_misses: int = 0
    replays_rejected: int = 0
    unknown_devices: int = 0
    protocol_errors: int = 0
    # --- fault-containment counters (the resilience layer) -------------
    #: verifications that exceeded the server's ``verify_timeout``
    verify_timeouts: int = 0
    #: connections dropped for idling past ``connection_timeout`` mid-read
    connection_timeouts: int = 0
    #: pool-worker exceptions contained into "infeasible" verdicts
    worker_faults: int = 0
    #: exceptions survived (logged + counted) by the idle-session sweeper
    sweeper_faults: int = 0
    #: connections refused or cut by the connection/message limits
    connections_rejected: int = 0
    #: connections accepted by the listener
    connections_opened: int = 0
    #: client frames carrying a ``retry`` attempt marker (> 0)
    retries_observed: int = 0
    #: unexpected handler exceptions contained into ERROR replies
    internal_errors: int = 0
    # --- claim micro-batching -------------------------------------------
    #: coalesced verification batches dispatched to the pool
    claim_batches: int = 0
    #: claims that went through a coalesced batch (of any size)
    claims_batched: int = 0
    #: batch-size histogram: occupancy (as a string key, JSON-friendly)
    #: -> number of batches dispatched at that size.  Mean occupancy is
    #: ``claims_batched / claim_batches``.
    claim_batch_occupancy: Dict[str, int] = field(default_factory=dict)
    verify_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    solver_latency: Dict[str, LatencyHistogram] = field(default_factory=dict)

    def observe_verify(self, algorithm, seconds: float) -> None:
        """Record one claim verification: count, overall and per-algorithm.

        ``algorithm`` is the solver name the claim carried over the wire;
        anything not in the solver registry is bucketed as
        :data:`UNKNOWN_ALGORITHM` so a hostile client cannot grow the
        snapshot without bound.
        """
        self.claims_verified += 1
        self.verify_latency.observe(seconds)
        name = algorithm if is_registered(algorithm) else UNKNOWN_ALGORITHM
        histogram = self.solver_latency.get(name)
        if histogram is None:
            histogram = self.solver_latency[name] = LatencyHistogram()
        histogram.observe(seconds)

    @classmethod
    def merge_snapshot(cls, snapshots: Iterable[dict]) -> dict:
        """Fold per-shard ``snapshot()`` dicts into one fleet snapshot.

        Counters (any top-level numeric key, including gauges a server
        appends to the wire snapshot such as ``active_sessions``) sum;
        ``verify_latency`` and the per-algorithm ``solver_latency``
        histograms add bucket-wise — the merge is exact, so fleet counters
        equal the sum of what each shard observed.  An empty iterable
        yields a fresh server's snapshot.
        """
        merged = cls().snapshot()
        for snapshot in snapshots:
            for key, value in snapshot.items():
                if key == "verify_latency":
                    merged[key] = merge_histogram_snapshots(merged[key], value)
                elif key == "solver_latency":
                    for name, histogram in value.items():
                        if name in merged[key]:
                            merged[key][name] = merge_histogram_snapshots(
                                merged[key][name], histogram
                            )
                        else:
                            merged[key][name] = dict(histogram)
                elif key == "claim_batch_occupancy":
                    bucket = merged.setdefault(key, {})
                    for size, count in value.items():
                        bucket[size] = bucket.get(size, 0) + count
                elif key == "runtime":
                    # Per-shard WorkerPool telemetry: counters sum, gauges
                    # max — the same exact fold as RuntimeStats.merge.
                    base = merged.get(key)
                    merged[key] = (
                        dict(value)
                        if base is None
                        else merge_runtime_snapshots(base, value)
                    )
                elif isinstance(value, bool) or not isinstance(value, (int, float)):
                    merged.setdefault(key, value)
                else:
                    merged[key] = merged.get(key, 0) + value
        merged["solver_latency"] = dict(sorted(merged["solver_latency"].items()))
        return merged

    def snapshot(self) -> dict:
        return {
            "enrollments": self.enrollments,
            "sessions_opened": self.sessions_opened,
            "sessions_accepted": self.sessions_accepted,
            "sessions_rejected": self.sessions_rejected,
            "sessions_expired": self.sessions_expired,
            "rounds_issued": self.rounds_issued,
            "claims_verified": self.claims_verified,
            "deadline_misses": self.deadline_misses,
            "replays_rejected": self.replays_rejected,
            "unknown_devices": self.unknown_devices,
            "protocol_errors": self.protocol_errors,
            "verify_timeouts": self.verify_timeouts,
            "connection_timeouts": self.connection_timeouts,
            "worker_faults": self.worker_faults,
            "sweeper_faults": self.sweeper_faults,
            "connections_rejected": self.connections_rejected,
            "connections_opened": self.connections_opened,
            "retries_observed": self.retries_observed,
            "internal_errors": self.internal_errors,
            "claim_batches": self.claim_batches,
            "claims_batched": self.claims_batched,
            "claim_batch_occupancy": {
                size: count
                for size, count in sorted(
                    self.claim_batch_occupancy.items(), key=lambda item: int(item[0])
                )
            },
            "verify_latency": self.verify_latency.snapshot(),
            "solver_latency": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.solver_latency.items())
            },
        }
