"""Client-side resilience: per-operation timeouts and retry with backoff.

The ESG argument of the paper bounds what an *honest* exchange costs; it
says nothing about a stalled verifier or a flaky network.  This module is
the client's answer: every network operation gets a finite deadline
(:func:`with_timeout` — no code path may block forever on a dead server),
and transient failures of *idempotent* verbs are retried under a
:class:`RetryPolicy` with exponential backoff and seeded jitter.

Idempotency is decided by wire verb, not by call site:

* ``ENROLL`` — re-enrolling the same public description returns the same
  content-derived device id (the registry is a no-op on duplicates);
* ``HELLO`` — retrying opens a fresh session; an orphaned half-open one
  is swept by the server's idle reaper;
* ``STATS`` — a pure read.

``CLAIM`` is **never** auto-retried: the nonce was consumed the moment the
original claim was admitted, so a blind resend is indistinguishable from a
replay attack and would be rejected as one.  A lost claim ends the attempt
and the caller decides whether to authenticate again from scratch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

import asyncio

from repro.errors import ConnectionLost, ServiceError, ServiceTimeout

#: Default per-operation deadline [s] for every client network call.  Finite
#: by design: acceptance requires that no client path can hang forever.
DEFAULT_TIMEOUT = 30.0

#: Wire verbs that are safe to reconnect-and-retry (see module docstring).
#: ``claim`` is deliberately absent.
IDEMPOTENT_TYPES = frozenset({"enroll", "hello", "stats"})

#: Errors that indicate a transient transport failure worth retrying.
#: Server-reported errors (plain :class:`ServiceError`) are *not* here: the
#: server answered, so resending the same message would fail the same way.
RETRYABLE_ERRORS: Tuple[type, ...] = (
    ServiceTimeout,
    ConnectionLost,
    ConnectionError,
    asyncio.IncompleteReadError,
    TimeoutError,
)


def is_retryable(error: BaseException) -> bool:
    """Whether ``error`` is a transient transport failure (see above)."""
    if isinstance(error, (ServiceTimeout, ConnectionLost)):
        return True
    # A ServiceError that is neither of the above is a server-reported or
    # protocol-level failure; retrying the same bytes cannot help.
    if isinstance(error, ServiceError):
        return False
    return isinstance(error, RETRYABLE_ERRORS)


@dataclass
class RetryPolicy:
    """How many times to retry and how long to back off in between.

    ``attempts`` counts total tries (first try included), so ``attempts=1``
    means no retries.  The delay before retry *k* (1-based) is::

        min(base_delay * multiplier**(k-1), max_delay) * (1 + U(-jitter, +jitter))

    with ``U`` drawn from a private :class:`random.Random` seeded with
    ``seed`` — two policies built with the same seed produce the same
    schedule, which is what the backoff-determinism tests pin.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.attempts < 1:
            raise ServiceError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ServiceError("backoff delays must be non-negative")
        if not 0 <= self.jitter < 1:
            raise ServiceError(f"jitter must be in [0, 1), got {self.jitter}")
        self._rng = random.Random(self.seed)

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """A policy that tries exactly once."""
        return cls(attempts=1)

    # ------------------------------------------------------------------
    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (1-based), jitter applied."""
        if retry_index < 1:
            raise ServiceError(f"retry index must be >= 1, got {retry_index}")
        base = min(
            self.base_delay * self.multiplier ** (retry_index - 1), self.max_delay
        )
        if self.jitter:
            base *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return base

    def schedule(self) -> Tuple[float, ...]:
        """The full backoff schedule: one delay per allowed retry."""
        return tuple(self.delay(k) for k in range(1, self.attempts))

    # ------------------------------------------------------------------
    def is_retryable(self, error: BaseException) -> bool:
        """Instance-level alias of :func:`is_retryable` (overridable)."""
        return is_retryable(error)


async def with_timeout(awaitable, seconds: Optional[float], what: str):
    """Await with a deadline; :class:`ServiceTimeout` names the operation.

    ``seconds=None`` disables the deadline (trusted in-process use only —
    the client never passes ``None``).
    """
    if seconds is None:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout=seconds)
    except asyncio.TimeoutError:
        raise ServiceTimeout(f"{what} timed out after {seconds:g} s") from None
