"""The asyncio authentication server.

``PpufAuthServer`` glues the pieces together: a JSON-lines TCP listener
(:mod:`repro.service.wire`), the :class:`~repro.service.registry.DeviceRegistry`,
the :class:`~repro.service.sessions.SessionManager`, a bounded
verification pool, and :class:`~repro.service.stats.ServerStats`.

The verification pool matters because ``PpufVerifier.verify`` is the
O(n²/p) residual-graph check — microseconds on toy devices but the real
cost center at secure sizes.  Claims are therefore verified off-loop in
a supervised :class:`~repro.runtime.pool.WorkerPool` (process workers
for ``workers > 0``, threads for ``workers == 0``), never on the event
loop, and the pool's admission bound means a claim flood degrades into
backpressure instead of unbounded memory growth.  A worker process dying
mid-claim is contained the same way a worker exception is: the pool
restarts itself and the claim gets an ``infeasible`` verdict
(crash-to-verdict) instead of killing the connection.

Claim micro-batching: concurrent claims coalesce in a
:class:`ClaimMicroBatcher` (bounded batch size plus a small linger) and
are verified as one lockstep pass over ``(B, E)`` edge arrays —
:func:`repro.ppuf.verification.verify_compact_claims` on the shared CSR
topology — before the per-claim verdicts are split back out.  Under load
this turns B pool round trips into one; a lone claim pays at most the
linger (2 ms by default).  Because no arithmetic in the batched verifier
couples claims, a verdict is bit-identical whether the claim rode solo or
coalesced, and one poisoned claim can only reject itself.

Fault containment (the resilience layer): the server treats every remote
input and every internal worker as hostile or broken until proven
otherwise.  Malformed frames and unknown verbs are answered with wire
``ERROR`` replies and counted, worker exceptions become ``infeasible``
verdicts instead of dead connections, the idle-session sweeper logs and
survives its own failures, connection/session limits turn floods into
backpressure, stalled verifications and stalled connections are cut by
timeouts, and :meth:`PpufAuthServer.stop` drains in-flight verifications
before tearing the pool down.  Every containment path increments a
dedicated :class:`ServerStats` counter exported over ``STATS``.
"""

from __future__ import annotations

import asyncio
import logging
from collections import OrderedDict
from typing import Optional

from repro.errors import ServiceError, ServiceTimeout, VerificationError, WorkerCrash
from repro.flow.graph import DEFAULT_RTOL
from repro.ppuf.delay import lin_mead_delay_bound
from repro.ppuf.verification import PpufVerifier, verify_compact_claims
from repro.runtime.microbatch import MicroBatcher
from repro.runtime.pool import WorkerPool
from repro.runtime.provision import provision_device
from repro.service import wire
from repro.service.registry import DeviceRegistry
from repro.service.sessions import ReplayRejected, Session, SessionManager
from repro.service.stats import ServerStats

logger = logging.getLogger(__name__)

#: Deadline slack relayed to clients as ``paper_deadline_seconds`` — the
#: modeled time bound of :class:`repro.ppuf.protocol.AuthenticationSession`.
PAPER_DEADLINE_SLACK = 100.0


def _verify_claim_task(
    device_id: str, payload, network: str, claim_wire: dict, rtol: float
) -> tuple:
    """Verify one wire claim; runs inside a pool worker (or thread).

    ``payload`` is the device transport: a public dict or a compiled
    artifact (see :func:`repro.runtime.provision.provision_device`, the
    worker-side LRU every transport lands behind).  Returns ``(accepted, reason,
    verify_seconds, fault)`` with ``reason`` one of ``"ok"``,
    ``"incorrect"`` (feasible but wrong), ``"infeasible"``
    (conservation/capacity violation or malformed paths).  ``fault`` is
    ``None`` for expected outcomes; for any *unexpected* exception (e.g. an
    ``IndexError`` from out-of-range path vertices) it carries the error
    text and the claim is still rejected as ``"infeasible"`` — a worker
    exception must never escape the pool and kill the connection.
    """
    import time

    start = time.perf_counter()
    try:
        device = provision_device(device_id, payload)
        net = device.network_a if network == "a" else device.network_b
        verifier = PpufVerifier(net)
        claim = wire.claim_from_wire(claim_wire)
        accepted = verifier.verify_compact(claim, rtol=rtol)
        reason = "ok" if accepted else "incorrect"
        fault = None
    except (VerificationError, ServiceError):
        accepted, reason, fault = False, "infeasible", None
    except Exception as error:  # noqa: BLE001 — containment is the point
        accepted, reason = False, "infeasible"
        fault = f"{type(error).__name__}: {error}"
    return accepted, reason, time.perf_counter() - start, fault


def _verify_claims_task(jobs, rtol: float) -> list:
    """Verify one coalesced claim batch; runs inside a pool worker.

    ``jobs`` is a list of ``(device_id, payload, network, claim_wire)``
    tuples.  Claims are grouped per ``(device, network)`` and each group
    runs through :func:`repro.ppuf.verification.verify_compact_claims` —
    one lockstep pass over ``(B, E)`` edge arrays.  Per-claim arithmetic in
    that pass never couples claims, so every verdict is exactly what the
    claim would have received alone, and a poisoned claim (malformed wire
    form, bad paths, device trouble) is contained to its own row.

    Returns one ``(accepted, reason, verify_seconds, fault)`` tuple per
    job, in order — the same shape as :func:`_verify_claim_task`, with
    ``verify_seconds`` the batch wall clock amortised over its claims.
    """
    import time

    start = time.perf_counter()
    results: list = [None] * len(jobs)
    groups: "OrderedDict[tuple, list]" = OrderedDict()
    for index, (device_id, _, network, _) in enumerate(jobs):
        groups.setdefault((device_id, network), []).append(index)
    for (device_id, network), indices in groups.items():
        try:
            device = provision_device(device_id, jobs[indices[0]][1])
            net = device.network_a if network == "a" else device.network_b
        except (VerificationError, ServiceError):
            for index in indices:
                results[index] = (False, "infeasible", None)
            continue
        except Exception as error:  # noqa: BLE001 — containment is the point
            fault = f"{type(error).__name__}: {error}"
            for index in indices:
                results[index] = (False, "infeasible", fault)
            continue
        claims, rows = [], []
        for index in indices:
            try:
                claims.append(wire.claim_from_wire(jobs[index][3]))
                rows.append(index)
            except (VerificationError, ServiceError):
                results[index] = (False, "infeasible", None)
            except Exception as error:  # noqa: BLE001
                results[index] = (
                    False, "infeasible", f"{type(error).__name__}: {error}"
                )
        if not rows:
            continue
        try:
            verdicts = verify_compact_claims(net, claims, rtol=rtol)
        except Exception as error:  # noqa: BLE001 — a verifier bug rejects
            fault = f"{type(error).__name__}: {error}"
            for index in rows:
                results[index] = (False, "infeasible", fault)
            continue
        for index, verdict in zip(rows, verdicts):
            results[index] = (verdict.accepted, verdict.kind, verdict.fault)
    share = (time.perf_counter() - start) / max(len(jobs), 1)
    return [
        (accepted, reason, share, fault)
        for accepted, reason, fault in results
    ]


class VerificationPool:
    """The service face of :class:`~repro.runtime.pool.WorkerPool` for
    :func:`_verify_claim_task` / :func:`_verify_claims_task`.

    ``timeout`` cuts off any single verification: a claim that wedges a
    worker raises :class:`ServiceTimeout` to the caller instead of holding
    its connection (and an admission slot) forever.  ``active`` counts
    in-flight verifications so :meth:`PpufAuthServer.stop` can drain.  A
    worker process dying raises :class:`~repro.errors.WorkerCrash` (the
    runtime pool restarts itself first); the server contains it into a
    rejected verdict.
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        max_pending: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        if timeout is not None and timeout <= 0:
            raise ServiceError(f"verify timeout must be positive, got {timeout}")
        self.workers = workers
        self.runtime = WorkerPool(
            workers,
            max_pending=max_pending,
            task_timeout=timeout,
            task_name="verification",
        )

    @property
    def timeout(self) -> Optional[float]:
        return self.runtime.task_timeout

    @property
    def active(self) -> int:
        return self.runtime.active

    async def verify(
        self, device_id: str, payload, network: str, claim_wire: dict, rtol: float
    ) -> tuple:
        # _verify_claim_task resolves as a module global at call time, so
        # tests (and subclasses) can swap the task function.
        return await self.runtime.run(
            _verify_claim_task, device_id, payload, network, claim_wire, rtol
        )

    async def verify_batch(self, jobs: list, rtol: float) -> list:
        """Run :func:`_verify_claims_task` off-loop for a coalesced batch.

        One admission slot and one executor dispatch cover the whole
        batch — that is the micro-batching win: B claims pay one pool
        round trip.  ``timeout`` bounds the batch as a unit; a blown
        deadline raises :class:`ServiceTimeout` for every claim in it.
        """
        return await self.runtime.run(_verify_claims_task, list(jobs), rtol)

    def shutdown(self) -> None:
        self.runtime.shutdown(wait=False, cancel_futures=True)


class ClaimMicroBatcher(MicroBatcher):
    """Coalesces concurrent claim verifications into pool batches.

    The service face of :class:`~repro.runtime.microbatch.MicroBatcher`:
    every claim that arrives while a batch is forming joins it; the batch
    is dispatched when it reaches ``batch_size`` or when the oldest claim
    has lingered ``linger_seconds`` — whichever comes first.  Under load
    (many concurrent sessions) batches fill instantly and the linger never
    applies; a lone claim pays at most ``linger_seconds`` of extra latency
    (2 ms by default, far below a secure-size verify) in exchange for the
    fleet win: B claims per pool round trip instead of one.

    Verdicts are split back out per claim and are bit-identical to solo
    verification — :func:`repro.ppuf.verification.verify_compact_claims`
    never lets one claim's arithmetic (or failure) touch another's.  A
    dispatch that fails fails only its own batch: :class:`ServiceTimeout`
    and :class:`~repro.errors.WorkerCrash` reach each claim typed (the
    claim handler contains them), anything else as :class:`ServiceError`.
    """

    def __init__(
        self,
        pool: VerificationPool,
        stats: Optional["ServerStats"] = None,
        *,
        rtol: float = DEFAULT_RTOL,
        batch_size: int = 16,
        linger_seconds: float = 0.002,
    ):
        super().__init__(
            self._verify_jobs,
            batch_size=batch_size,
            linger_seconds=linger_seconds,
            on_dispatch=self._record_batch,
        )
        self.pool = pool
        self.stats = stats
        self.rtol = rtol

    async def _verify_jobs(self, jobs: list) -> list:
        return await self.pool.verify_batch(jobs, self.rtol)

    def _record_batch(self, size: int) -> None:
        stats = self.stats
        if stats is not None:
            stats.claim_batches += 1
            stats.claims_batched += size
            occupancy = stats.claim_batch_occupancy
            key = str(size)
            occupancy[key] = occupancy.get(key, 0) + 1

    async def verify(
        self, device_id: str, payload, network: str, claim_wire: dict
    ) -> tuple:
        """Queue one claim; resolves to its ``(accepted, reason, seconds,
        fault)`` tuple once its batch returns."""
        return await self.submit((device_id, payload, network, claim_wire))


class PpufAuthServer:
    """The networked verifier.

    Parameters
    ----------
    registry:
        Devices this verifier will challenge (may start empty when
        ``allow_enroll``).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port` after
        :meth:`start`).
    deadline_seconds, idle_timeout, rounds, seed, max_sessions:
        Session-manager knobs (see :class:`SessionManager`).
    workers:
        Verification processes; ``0`` verifies in the default thread
        executor (cheap devices / tests).
    rtol:
        Claim-value tolerance forwarded to ``PpufVerifier.verify``.
    allow_enroll:
        Accept ``enroll`` messages over the wire (disable for a
        pre-provisioned fleet).
    use_compiled:
        Ship :class:`~repro.ppuf.compiled.CompiledDevice` artifacts to
        verification workers (default) — a cold claim maps precomputed
        capacity tables instead of rebuilding the device and re-deriving
        its caches.  ``False`` restores the legacy public-dict transport.
    claim_batch_size:
        Micro-batching bound: up to this many concurrent claims coalesce
        into one pool dispatch (verified in lockstep by
        :func:`~repro.ppuf.verification.verify_compact_claims`, verdicts
        split back per claim).  ``1`` disables batching — every claim
        takes the solo :func:`_verify_claim_task` path.
    claim_batch_linger:
        How long [s] a forming batch waits for company before dispatching
        anyway.  Bounds the single-claim latency regression: a lone claim
        is delayed by at most this much (default 2 ms).
    verify_timeout:
        Per-claim verification cutoff [s]; blown → ``verify_timeout``
        verdict + ``stats.verify_timeouts``.  ``None`` disables.  With
        micro-batching the cutoff covers the claim's whole batch.
    connection_timeout:
        Per-read idle cutoff [s] on open connections; a peer that stalls
        mid-session is disconnected (``stats.connection_timeouts``).
        ``None`` disables (the session idle sweeper still applies).
    max_connections:
        Cap on concurrently open connections; excess connects get one
        wire ``ERROR`` and a close (``stats.connections_rejected``).
    max_messages_per_connection:
        Per-connection message budget — backpressure against a single
        connection monopolising the server.  ``None`` disables.
    drain_seconds:
        How long :meth:`stop` waits for in-flight verifications to
        complete before shutting the pool down.
    """

    def __init__(
        self,
        registry: Optional[DeviceRegistry] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        deadline_seconds: float = 5.0,
        idle_timeout: float = 60.0,
        rounds: int = 4,
        workers: int = 0,
        rtol: float = DEFAULT_RTOL,
        seed: Optional[int] = None,
        allow_enroll: bool = True,
        use_compiled: bool = True,
        claim_batch_size: int = 16,
        claim_batch_linger: float = 0.002,
        verify_timeout: Optional[float] = 60.0,
        connection_timeout: Optional[float] = 300.0,
        max_connections: int = 256,
        max_messages_per_connection: Optional[int] = 100_000,
        max_sessions: Optional[int] = 4096,
        drain_seconds: float = 5.0,
    ):
        if max_connections < 1:
            raise ServiceError(f"max_connections must be >= 1, got {max_connections}")
        self.registry = registry if registry is not None else DeviceRegistry()
        self.host = host
        self.port = port
        self.rtol = rtol
        self.allow_enroll = allow_enroll
        self.use_compiled = use_compiled
        self.connection_timeout = connection_timeout
        self.max_connections = max_connections
        self.max_messages_per_connection = max_messages_per_connection
        self.drain_seconds = drain_seconds
        self.sessions = SessionManager(
            deadline_seconds=deadline_seconds,
            idle_timeout=idle_timeout,
            rounds=rounds,
            seed=seed,
            max_sessions=max_sessions,
        )
        self.pool = VerificationPool(workers, timeout=verify_timeout)
        self.stats = ServerStats()
        self.batcher: Optional[ClaimMicroBatcher] = (
            ClaimMicroBatcher(
                self.pool,
                self.stats,
                rtol=rtol,
                batch_size=claim_batch_size,
                linger_seconds=claim_batch_linger,
            )
            if claim_batch_size > 1
            else None
        )
        self._connections = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._sweeper: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=wire.MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.create_task(self._sweep_idle_sessions())

    async def stop(self) -> None:
        # Stop accepting first, then drain in-flight verifications so a
        # claim that already paid for its verify still gets its verdict,
        # then tear down the sweeper and the pool.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._drain_verifications()
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        self.pool.shutdown()

    async def _drain_verifications(self) -> None:
        if self.batcher is not None:
            self.batcher.flush()
        deadline = asyncio.get_running_loop().time() + self.drain_seconds

        def _in_flight() -> bool:
            return bool(
                self.pool.active
                or (self.batcher is not None and self.batcher.busy)
            )

        while _in_flight() and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        if self.pool.active:
            logger.warning(
                "stop(): %d verification(s) still in flight after %.1f s drain",
                self.pool.active,
                self.drain_seconds,
            )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "PpufAuthServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _sweep_idle_sessions(self) -> None:
        interval = max(self.sessions.idle_timeout / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            try:
                self.stats.sessions_expired += self.sessions.expire_idle()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 — the sweeper must keep sweeping
                self.stats.sweeper_faults += 1
                logger.exception("idle-session sweep failed; continuing")

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            if self._connections >= self.max_connections:
                self.stats.connections_rejected += 1
                await wire.write_message(
                    writer,
                    {"type": wire.ERROR, "error": "server at connection capacity"},
                    timeout=self.connection_timeout,
                )
                return
            self._connections += 1
            self.stats.connections_opened += 1
            try:
                await self._serve_connection(reader, writer)
            finally:
                self._connections -= 1
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except ServiceTimeout:
            pass  # counted where it was detected
        except Exception:  # noqa: BLE001 — one bad connection must not escape
            self.stats.internal_errors += 1
            logger.exception("connection handler failed")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        served = 0
        while True:
            if (
                self.max_messages_per_connection is not None
                and served >= self.max_messages_per_connection
            ):
                self.stats.connections_rejected += 1
                await wire.write_message(
                    writer,
                    {"type": wire.ERROR, "error": "per-connection message limit"},
                )
                break
            try:
                message = await wire.read_message(
                    reader, timeout=self.connection_timeout
                )
            except ServiceTimeout:
                self.stats.connection_timeouts += 1
                await wire.write_message(
                    writer, {"type": wire.ERROR, "error": "connection idle timeout"}
                )
                break
            except ServiceError as error:
                self.stats.protocol_errors += 1
                await wire.write_message(
                    writer, {"type": wire.ERROR, "error": str(error)}
                )
                break
            if message is None:
                break
            served += 1
            reply = await self._dispatch(message)
            await wire.write_message(writer, reply)

    async def _dispatch(self, message: dict) -> dict:
        handlers = {
            wire.ENROLL: self._on_enroll,
            wire.HELLO: self._on_hello,
            wire.CLAIM: self._on_claim,
            wire.STATS: self._on_stats,
        }
        message_type = message.get("type")
        if not isinstance(message_type, str):
            # Never key ``handlers`` with whatever arrived on the wire: a
            # frame without a "type" string is a protocol error, not a crash.
            self.stats.protocol_errors += 1
            return {
                "type": wire.ERROR,
                "error": "message must carry a 'type' string",
            }
        retry = message.get("retry")
        if isinstance(retry, int) and not isinstance(retry, bool) and retry > 0:
            self.stats.retries_observed += 1
        handler = handlers.get(message_type)
        if handler is None:
            self.stats.protocol_errors += 1
            return {"type": wire.ERROR, "error": f"unknown message type {message_type!r}"}
        try:
            return await handler(message)
        except ReplayRejected as error:
            # counted as replays_rejected by the claim handler, not as a
            # generic protocol error
            return {"type": wire.ERROR, "error": str(error)}
        except ServiceError as error:
            self.stats.protocol_errors += 1
            return {"type": wire.ERROR, "error": str(error)}
        except Exception:  # noqa: BLE001 — a handler bug yields ERROR, not EOF
            self.stats.internal_errors += 1
            logger.exception("handler for %r failed", message_type)
            return {"type": wire.ERROR, "error": "internal server error"}

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    async def _on_enroll(self, message: dict) -> dict:
        if not self.allow_enroll:
            raise ServiceError("this server does not accept wire enrollment")
        public = message.get("device")
        if not isinstance(public, dict):
            raise ServiceError("enroll requires a 'device' object")
        device_id = self.registry.enroll(public)
        self.stats.enrollments += 1
        return {"type": wire.ENROLLED, "device_id": device_id}

    async def _on_hello(self, message: dict) -> dict:
        device_id = message.get("device_id")
        if not isinstance(device_id, str):
            raise ServiceError("hello requires a 'device_id' string")
        network = message.get("network", "a")
        if device_id not in self.registry:
            self.stats.unknown_devices += 1
            raise ServiceError(f"unknown device id {device_id!r}")
        device = self.registry.device(device_id)
        session = self.sessions.open(device_id, device, network, message.get("rounds"))
        self.stats.sessions_opened += 1
        self.stats.rounds_issued += 1
        return self._challenge_message(session, device)

    def _challenge_message(self, session: Session, device) -> dict:
        net = device.network_a if session.network == "a" else device.network_b
        paper_deadline = PAPER_DEADLINE_SLACK * lin_mead_delay_bound(
            device.n, net.tech, net.conditions
        )
        return {
            "type": wire.CHALLENGE,
            "session": session.session_id,
            "nonce": session.nonce,
            "round": session.round_index,
            "rounds": session.rounds_total,
            "challenge": wire.challenge_to_wire(session.challenge),
            "deadline_seconds": session.deadline_seconds,
            "paper_deadline_seconds": paper_deadline,
        }

    async def _on_claim(self, message: dict) -> dict:
        session_id = message.get("session")
        nonce = message.get("nonce")
        if not isinstance(session_id, str) or not isinstance(nonce, str):
            raise ServiceError("claim requires 'session' and 'nonce' strings")
        claim_wire = message.get("claim")
        if not isinstance(claim_wire, dict):
            raise ServiceError("claim requires a 'claim' object")
        try:
            session, elapsed = self.sessions.admit_claim(session_id, nonce)
        except ReplayRejected:
            self.stats.replays_rejected += 1
            raise

        if elapsed > session.deadline_seconds:
            self.stats.deadline_misses += 1
            return self._verdict(session, False, "deadline", elapsed)

        # The claim must answer the outstanding challenge, not one of the
        # prover's choosing.
        challenged = wire.challenge_to_wire(session.challenge)
        if claim_wire.get("challenge") != challenged:
            return self._verdict(session, False, "wrong_challenge", elapsed)

        device = self.registry.device(session.device_id)
        payload = await self._device_payload(session.device_id)
        try:
            if self.batcher is not None:
                accepted, reason, verify_seconds, fault = await self.batcher.verify(
                    session.device_id,
                    payload,
                    session.network,
                    claim_wire,
                )
            else:
                accepted, reason, verify_seconds, fault = await self.pool.verify(
                    session.device_id,
                    payload,
                    session.network,
                    claim_wire,
                    self.rtol,
                )
        except ServiceTimeout:
            self.stats.verify_timeouts += 1
            logger.warning(
                "verification of session %s timed out after %g s",
                session.session_id,
                self.pool.timeout,
            )
            return self._verdict(session, False, "verify_timeout", elapsed)
        except WorkerCrash as error:
            # Crash-to-verdict: the runtime pool already restarted its
            # executor, so the next claim runs on a healthy worker; this
            # claim's work is gone and is rejected like any worker fault.
            accepted, reason, verify_seconds = False, "infeasible", 0.0
            fault = f"{type(error).__name__}: {error}"
        if fault is not None:
            self.stats.worker_faults += 1
            logger.warning(
                "verification worker fault on session %s (rejected as "
                "infeasible): %s",
                session.session_id,
                fault,
            )
        # Claims name their solver; telemetry is per-algorithm (STATS verb).
        self.stats.observe_verify(claim_wire.get("algorithm"), verify_seconds)
        if not accepted:
            return self._verdict(session, False, reason, elapsed)
        if self.sessions.advance(session, device):
            self.stats.rounds_issued += 1
            return self._challenge_message(session, device)
        self.stats.sessions_accepted += 1
        return {
            "type": wire.VERDICT,
            "session": session.session_id,
            "accepted": True,
            "reason": "ok",
            "rounds_run": session.rounds_total,
        }

    async def _device_payload(self, device_id: str):
        """The device transport handed to verification workers.

        A device that lives in the registry's artifact pack ships as a
        ``("pack", path)`` reference — each worker resolves it against its
        own long-lived mapping of the pack, so the claim's verify is an
        index lookup + row slice with no artifact bytes on the wire.
        Otherwise, on the compiled path the first claim per device pays
        one compilation (offloaded to the default executor so the event
        loop keeps serving); every later claim reuses the registry's
        cached artifact.  Legacy path: the enrolled public dict.
        """
        if not self.use_compiled:
            return self.registry.public(device_id)
        pack = getattr(self.registry, "pack", None)
        if pack is not None and device_id in pack:
            return ("pack", pack.path)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.registry.compiled, device_id)

    def _verdict(self, session: Session, accepted: bool, reason: str, elapsed: float) -> dict:
        self.sessions.close(session)
        if not accepted:
            self.stats.sessions_rejected += 1
        return {
            "type": wire.VERDICT,
            "session": session.session_id,
            "accepted": accepted,
            "reason": reason,
            "rounds_run": session.round_index,
            "elapsed_seconds": elapsed,
        }

    async def _on_stats(self, message: dict) -> dict:
        snapshot = self.stats.snapshot()
        snapshot["active_sessions"] = len(self.sessions)
        snapshot["devices"] = len(self.registry)
        snapshot["open_connections"] = self._connections
        # Drain visibility: a supervisor deciding whether this shard has
        # settled needs to see work that is queued but not yet a session
        # counter — claims in the pool plus claims lingering in the
        # micro-batcher.
        snapshot["verifications_in_flight"] = self.pool.active + (
            self.batcher.queued if self.batcher is not None else 0
        )
        # The runtime substrate's own telemetry (task/crash/restart
        # counters) rides the same snapshot; the fleet router folds the
        # per-shard entries exactly (see ServerStats.merge_snapshot).
        snapshot["runtime"] = self.pool.runtime.stats.snapshot()
        return {"type": wire.STATS, "stats": snapshot}
